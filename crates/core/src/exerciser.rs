//! The driver exerciser: DDT's main exploration loop (§3.2, §4.3).
//!
//! The exerciser loads the driver binary into the kernel (fake PnP), drives
//! its entry points with the concrete workload generator, and symbolically
//! executes the driver from each invocation:
//!
//! - branches on symbolic values fork (handled by `ddt-symvm`),
//! - kernel calls cross into native kernel code through [`SymHost`],
//!   concretizing on demand; annotation hooks run around each call,
//! - symbolic interrupts are injected at kernel/driver boundary crossings
//!   once an ISR is registered (§3.3) — each injection is a fork,
//! - allocation calls fork a failed alternative (the NULL-alternative
//!   concrete-to-symbolic hint),
//! - state selection follows the EXE-style minimum-block-hit heuristic
//!   (§4.3) via [`Coverage::priority`].
//!
//! Paths end at faults (classified into bugs), kernel crashes, failed
//! initialization (after leak checks — the paper's termination criterion),
//! or workload exhaustion.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ddt_expr::Expr;
use ddt_isa::image::DxeImage;
use ddt_isa::{analysis, Reg};
use ddt_kernel::loader::{DeviceDescriptor, LoadPlan, StackLayout};
use ddt_kernel::state::DEVICE_MMIO_BASE;
use ddt_kernel::{
    DevicePowerState, EntryInvocation, ExecContext, FaultFamily, Irql, Kernel, KernelEvent,
};
use ddt_solver::{QueryCache, Solver};
use ddt_symvm::{
    step, //
    SymCounter,
    SymOrigin,
    SymState,
    SymStep,
    TraceEvent,
};

use crate::annotations::{apply_resource_grants, post_kernel_call, Annotations};
use crate::checkers::{
    check_lifecycle, //
    classify_crash,
    classify_fault,
    classify_violation,
    on_invocation_return,
    scan_kernel_events,
    PendingBug,
};
use crate::checkpoint::{checkpoint_file, CampaignSeed, CampaignWriter, CheckpointPolicy};
use crate::coverage::Coverage;
use crate::replay::{ReplayCursor, ReplaySteer};
use ddt_trace::{JournalRecord, PathStatus, SiteKind};
use crate::faults::{FaultInjector, FaultPlan};
use crate::hardware::DdtEnv;
use crate::machine::{Frame, Machine, SymHost};
use crate::report::{Bug, BugOrigin, Decision, ExploreStats, LifecycleEvent, Report, RunHealth};
use crate::search::{Frontier, PruneSet, Strategy};
use ddt_drivers::workload::{WorkloadOp, OID_BASE};
use ddt_drivers::DriverClass;

/// Configuration for one DDT run.
#[derive(Clone, Debug)]
pub struct DdtConfig {
    /// Annotation set (§3.4.1); disable for the ablation.
    pub annotations: Annotations,
    /// VM-level memory access verification (§3.1.1).
    pub check_memory: bool,
    /// Symbolic interrupts injected per path (§3.3).
    pub interrupt_budget: u32,
    /// Worklist cap; new forks beyond this are dropped (memory bound,
    /// §6.1's 4 GB analog).
    pub max_states: usize,
    /// Total instruction budget for the exploration.
    pub max_total_insns: u64,
    /// Per-invocation instruction budget (kills polling-loop paths).
    pub max_invocation_insns: u64,
    /// Whole-path step budget: a path that executes this many instructions
    /// across all invocations is terminated as a potential driver hang
    /// (`PathBudgetExceeded` health event) instead of spinning until the
    /// run-level budgets drain. `u64::MAX` disables the watchdog.
    pub max_path_insns: u64,
    /// Wall-clock budget in milliseconds.
    pub time_budget_ms: u64,
    /// Systematic kernel-API fault injection plan. Disabled by default so
    /// baseline bug counts match the paper's Table 2.
    pub fault_plan: FaultPlan,
    /// Counterexample-caching solver layer (on by default). Disabling it
    /// (`--no-query-cache`) makes every worker run the full decision
    /// procedure on every non-trivial query — the exploration is identical,
    /// only slower (the cache is semantically invisible by construction).
    pub use_query_cache: bool,
    /// Independence slicing of verdict-grade solver queries (on by default;
    /// `--no-slicing` escape hatch). Like the cache, semantically invisible:
    /// verdicts are properties of the constraint set, and model-consuming
    /// queries never take the sliced path.
    pub use_slicing: bool,
    /// Persistent incremental solver sessions for verdict-grade queries (on
    /// by default; `--no-incremental` escape hatch). Also semantically
    /// invisible.
    pub use_incremental: bool,
    /// Lazy batched branch feasibility (on by default; `--no-batch` escape
    /// hatch). Branch forks always stage the untaken child optimistically
    /// with a deferred verdict; this flag only chooses *when* the verdict
    /// lands — in a batched flush with the child's frontier siblings
    /// (default) or eagerly at the fork site (`--no-batch`). Both schedules
    /// admit exactly the same states in the same order, so the flag is
    /// excluded from the exploration fingerprint.
    pub use_batch: bool,
    /// Racing solver portfolio for hard verdict queries (on by default;
    /// `--no-portfolio` escape hatch). Semantically invisible: every lane
    /// returns the same verdict.
    pub use_portfolio: bool,
    /// Algebraic pre-blast rewriting of verdict queries (on by default;
    /// `--no-rewrite` escape hatch). Semantically invisible: rewrites are
    /// evaluation-preserving, and model-consuming queries never take the
    /// rewritten path.
    pub use_rewrite: bool,
    /// Pre-built cache to share across runs (warm-cache benchmarking, or
    /// one cache spanning several drivers). `None` means each run builds a
    /// fresh cache shared by all of its workers. Ignored when
    /// `use_query_cache` is false.
    pub shared_cache: Option<Arc<QueryCache>>,
    /// Test-only resilience hook: the counter is decremented once per
    /// scheduled quantum, and the quantum that takes it to zero panics
    /// (one-shot). Used to verify that a panicking state is isolated as a
    /// [`RunHealth`] incident instead of aborting the run.
    pub panic_hook: Option<Arc<AtomicU64>>,
    /// When set, every confirmed bug is persisted to this trace store
    /// directory (binary event log + JSON manifest, §3.5), with its
    /// decision schedule minimized against the concrete replayer first.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Durable-campaign policy: when set, the exploration appends a
    /// write-ahead journal and periodic frontier checkpoints to the
    /// directory, making the run crash-safe and resumable
    /// (`ddt test --checkpoint-dir` / `--resume`).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Cooperative interruption flag (SIGINT): when it flips to true the
    /// explorer drains in-flight quanta, writes a final checkpoint (if a
    /// campaign is active), and returns a partial report.
    pub stop_flag: Option<Arc<AtomicBool>>,
    /// Frontier search strategy (`--strategy`). The default `fifo` is the
    /// report-identity baseline; the guided strategies reorder expansion
    /// only, so all of them find the same bug set (the
    /// `search_differential` harness pins this).
    pub strategy: Strategy,
    /// Opt-in structural-fingerprint pruning (`--prune` / `--no-prune`):
    /// drop a forked state whose [`Machine::fingerprint`] already appeared
    /// at the same pc with no coverage delta since.
    pub prune: bool,
}

impl Default for DdtConfig {
    fn default() -> Self {
        DdtConfig {
            annotations: Annotations::defaults(),
            check_memory: true,
            interrupt_budget: 1,
            max_states: 4096,
            max_total_insns: 3_000_000,
            max_invocation_insns: 20_000,
            max_path_insns: u64::MAX,
            time_budget_ms: 120_000,
            fault_plan: FaultPlan::disabled(),
            use_query_cache: true,
            use_slicing: true,
            use_incremental: true,
            use_batch: true,
            use_portfolio: true,
            use_rewrite: true,
            shared_cache: None,
            panic_hook: None,
            trace_dir: None,
            checkpoint: None,
            stop_flag: None,
            strategy: Strategy::Fifo,
            prune: false,
        }
    }
}

impl DdtConfig {
    /// Resolves the query cache for one run: the configured shared handle, a
    /// fresh per-run cache, or `None` when caching is disabled. All of a
    /// run's workers share the returned handle.
    pub fn run_cache(&self) -> Option<Arc<QueryCache>> {
        if !self.use_query_cache {
            return None;
        }
        Some(self.shared_cache.clone().unwrap_or_default())
    }

    /// Builds one worker's solver over the run's cache handle, applying the
    /// run's optimization switches.
    pub(crate) fn solver_for(&self, run_cache: &Option<Arc<QueryCache>>) -> Solver {
        let mut solver = match run_cache {
            Some(cache) => Solver::with_cache(cache.clone()),
            None => Solver::uncached(),
        };
        solver.set_slicing(self.use_slicing);
        solver.set_incremental(self.use_incremental);
        solver.set_portfolio(self.use_portfolio);
        solver.set_rewrite(self.use_rewrite);
        solver
    }

    /// Fingerprint of everything that steers exploration. A checkpoint
    /// records it and resume refuses a mismatch: a frontier recorded under
    /// one configuration will not replay under another. Cache and
    /// reporting knobs are deliberately excluded — they are semantically
    /// invisible to path selection.
    pub fn fingerprint(&self) -> u64 {
        let desc = format!(
            "v1:ann={:?}:mem={}:irq={}:states={}:insns={}:per_inv={}:path={}:wall={}:faults={:016x}:strat={}:prune={}",
            self.annotations,
            self.check_memory,
            self.interrupt_budget,
            self.max_states,
            self.max_total_insns,
            self.max_invocation_insns,
            self.max_path_insns,
            self.time_budget_ms,
            self.fault_plan.fingerprint(),
            self.strategy.name(),
            self.prune,
        );
        ddt_trace::fnv1a64(desc.as_bytes())
    }

    /// True when the cooperative interruption flag has been raised.
    pub(crate) fn stop_requested(&self) -> bool {
        self.stop_flag.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// What the exerciser needs to know about the driver under test. Only the
/// binary image is driver-specific knowledge — no source, no internals.
#[derive(Clone, Debug)]
pub struct DriverUnderTest {
    /// The closed-source binary.
    pub image: DxeImage,
    /// NIC or audio (selects workload/entry conventions).
    pub class: DriverClass,
    /// Registry parameters present on the machine.
    pub registry: Vec<(String, u32)>,
    /// The fake PnP descriptor (§4.2).
    pub descriptor: DeviceDescriptor,
    /// Entry-point invocation sequence (Device Path Exerciser analog).
    pub workload: Vec<WorkloadOp>,
}

impl DriverUnderTest {
    /// Builds the test input from a bundled driver spec.
    pub fn from_spec(spec: &ddt_drivers::DriverSpec) -> DriverUnderTest {
        let built = spec.build();
        DriverUnderTest {
            image: built.image,
            class: spec.class,
            registry: spec.registry.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            descriptor: spec.descriptor.clone(),
            workload: ddt_drivers::workload::workload_for(spec.class),
        }
    }
}

/// The DDT tool.
#[derive(Default)]
pub struct Ddt {
    /// Run configuration.
    pub config: DdtConfig,
}


/// Steps per scheduling quantum.
const QUANTUM: u64 = 256;

#[derive(Clone, Copy)]
pub(crate) enum PathEnd {
    Completed,
    Faulted,
    Infeasible,
    BudgetKilled,
    StepBudget,
}

impl PathEnd {
    /// The journal encoding of this terminal status.
    pub(crate) fn status(self) -> PathStatus {
        match self {
            PathEnd::Completed => PathStatus::Completed,
            PathEnd::Faulted => PathStatus::Faulted,
            PathEnd::Infeasible => PathStatus::Infeasible,
            PathEnd::BudgetKilled => PathStatus::BudgetKilled,
            PathEnd::StepBudget => PathStatus::StepBudgetExceeded,
        }
    }
}

/// Mutable context threaded through one scheduling quantum: the shared
/// exploration sinks (worklist, id counter, stats, bug map, coverage pcs),
/// the per-quantum outputs consumed by the campaign journal, and — during
/// frontier reconstruction — the cursor that steers every fork site down
/// the recorded choice log instead of spawning children.
pub(crate) struct QuantumSinks<'a> {
    pub worklist: &'a mut Vec<Machine>,
    pub next_id: &'a mut u64,
    pub stats: &'a mut ExploreStats,
    pub bugs: &'a mut HashMap<String, Bug>,
    pub exec_pcs: &'a mut Vec<u32>,
    /// Keys first recorded during this quantum (journaled with the path).
    pub new_bug_keys: &'a mut Vec<String>,
    /// Fork events `(parent, child, site)` from this quantum (journaled).
    pub fork_events: &'a mut Vec<(u64, u64, SiteKind)>,
    /// `Some` puts the quantum in replay mode: no children are spawned, the
    /// cursor decides at every site whether this machine stays the parent
    /// or becomes the recorded child.
    pub replay: Option<&'a mut ReplayCursor>,
}

impl QuantumSinks<'_> {
    /// Asks the replay cursor (if any) how to treat a fork site;
    /// exploration always stays the parent and spawns the child.
    fn steer(&mut self, kind: SiteKind) -> ReplaySteer {
        match self.replay.as_deref_mut() {
            Some(cur) => cur.take(kind),
            None => ReplaySteer::Stay,
        }
    }

    fn replaying(&self) -> bool {
        self.replay.is_some()
    }
}

/// How a kernel-call trap resolved.
pub(crate) enum CallFlow {
    /// The call ran; execution resumes at the saved return address.
    Done,
    /// Replay steering replaced the machine with a pre-call alternative
    /// (armed fault or concretization backtrack); the caller must restart
    /// the loop iteration so the unchanged trap pc re-dispatches.
    Restarted,
}

impl Ddt {
    /// Creates DDT with a configuration.
    pub fn new(config: DdtConfig) -> Ddt {
        Ddt { config }
    }

    /// Tests one driver binary and produces the bug report (§2).
    pub fn test(&self, dut: &DriverUnderTest) -> Report {
        self.explore_serial(dut, None)
    }

    /// The serial exploration loop, optionally seeded with the restored
    /// frontier and aggregates of an interrupted campaign (§4.7).
    pub(crate) fn explore_serial(
        &self,
        dut: &DriverUnderTest,
        seed: Option<CampaignSeed>,
    ) -> Report {
        let run_cache = self.config.run_cache();
        let mut solver = self.config.solver_for(&run_cache);
        let analysis = analysis::analyze(&dut.image);
        // Built before `analysis` moves into the coverage tracker:
        // bug-directed precomputes its CFG distance map here.
        let strategy_rt = self.config.strategy.runtime(&analysis);
        let stack = StackLayout::default();
        let mut env = DdtEnv::new(
            DEVICE_MMIO_BASE,
            dut.descriptor.mmio_len,
            stack.base,
            stack.initial_sp(),
        );
        env.check_memory = self.config.check_memory;

        let (mut coverage, mut stats, mut bugs, mut next_id, worklist, first_seq, replays, seen) =
            match seed {
                Some(s) => (
                    Coverage::seeded(
                        analysis,
                        s.coverage_hits,
                        s.coverage_covered,
                        s.coverage_timeline,
                        s.base_wall_ms,
                    ),
                    s.stats,
                    s.bugs,
                    s.next_id,
                    s.frontier,
                    s.next_checkpoint_seq,
                    (s.replayed_ok, s.replay_failed),
                    s.prune_seen,
                ),
                None => {
                    // Root machine: image + stack mapped, kernel configured,
                    // DriverEntry invoked (the PnP load of §4.2).
                    let root = self.make_root(dut, &stack);
                    let stats = ExploreStats {
                        symbols: root.st.counter.allocated(),
                        paths_started: 1,
                        ..Default::default()
                    };
                    (
                        Coverage::new(analysis),
                        stats,
                        HashMap::new(),
                        1,
                        vec![root],
                        0,
                        (0, 0),
                        Vec::new(),
                    )
                }
            };
        let mut frontier = Frontier::new(strategy_rt, worklist);
        let mut prune = self.config.prune.then(|| PruneSet::seeded(seen));
        // Solver counters restored from a checkpoint are this campaign's
        // prefix; this process's solver starts at zero, so fold additively.
        let solver_base = (
            stats.solver_queries,
            stats.solver_fast_hits,
            stats.solver_full,
            stats.solver_cache_hits,
            stats.solver_model_reuse,
            stats.solver_unsat_subset,
            stats.solver_sliced,
            stats.solver_slice_components,
            stats.solver_session_probes,
            stats.solver_session_resets,
            stats.solver_batch_flushes,
            stats.solver_batched_verdicts,
            stats.solver_batch_witness_hits,
            stats.solver_portfolio_races,
            stats.solver_portfolio_session_wins,
            stats.solver_portfolio_fresh_wins,
            stats.solver_portfolio_probe_wins,
            stats.solver_rewrite_reductions,
        );
        let fold_solver = |stats: &mut ExploreStats, solver: &Solver| {
            stats.solver_queries = solver_base.0 + solver.stats().queries;
            stats.solver_fast_hits = solver_base.1 + solver.stats().fast_path_hits;
            stats.solver_full = solver_base.2 + solver.stats().full_solves;
            stats.solver_cache_hits = solver_base.3 + solver.stats().cache_hits;
            stats.solver_model_reuse = solver_base.4 + solver.stats().cache_model_reuse;
            stats.solver_unsat_subset = solver_base.5 + solver.stats().cache_unsat_subset;
            stats.solver_sliced = solver_base.6 + solver.stats().sliced_queries;
            stats.solver_slice_components = solver_base.7 + solver.stats().slice_components;
            stats.solver_session_probes = solver_base.8 + solver.stats().session_probes;
            stats.solver_session_resets = solver_base.9 + solver.stats().session_resets;
            stats.solver_batch_flushes = solver_base.10 + solver.stats().batch_flushes;
            stats.solver_batched_verdicts = solver_base.11 + solver.stats().batched_verdicts;
            stats.solver_batch_witness_hits = solver_base.12 + solver.stats().batch_witness_hits;
            stats.solver_portfolio_races = solver_base.13 + solver.stats().portfolio_races;
            stats.solver_portfolio_session_wins =
                solver_base.14 + solver.stats().portfolio_session_wins;
            stats.solver_portfolio_fresh_wins =
                solver_base.15 + solver.stats().portfolio_fresh_wins;
            stats.solver_portfolio_probe_wins =
                solver_base.16 + solver.stats().portfolio_probe_wins;
            stats.solver_rewrite_reductions = solver_base.17 + solver.stats().rewrite_reductions;
        };

        let mut campaign = self.config.checkpoint.as_ref().map(|policy| {
            CampaignWriter::start(policy, &dut.image.name, self.config.fingerprint(), first_seq)
        });
        let mut quanta_since_checkpoint: u64 = 0;
        let mut interrupted = false;

        while !frontier.is_empty() {
            if self.config.stop_requested() {
                interrupted = true;
                break;
            }
            if stats.insns > self.config.max_total_insns
                || coverage.elapsed_ms() > self.config.time_budget_ms
            {
                break;
            }
            // Settle deferred branch-feasibility obligations (one batched
            // solver pass over all pending siblings) before the strategy
            // ranks the frontier: a pending machine must never be selected,
            // and a restored frontier may carry obligations from the
            // checkpointed run. Under `--no-batch` nothing is ever pending
            // and this is a frontier scan.
            Self::flush_pending(frontier.storage_mut(), &mut solver, &mut stats);
            // Pick the state the strategy ranks first (the default `fifo`
            // reproduces the historic EXE-style min-block-hit scan, §4.3).
            let Some(mut m) = frontier.pop(&coverage) else {
                break; // The flush retired the whole frontier.
            };
            let n_before = frontier.len();
            let covered_before = coverage.covered_blocks();
            let mut exec_pcs = Vec::with_capacity(QUANTUM as usize);
            let mut new_bug_keys = Vec::new();
            let mut fork_events = Vec::new();
            // Panic isolation: a bug in the harness (or a deliberately
            // induced one, via the test hook) kills only this state, not
            // the run. The incident is counted in the run health section.
            let survived = catch_unwind(AssertUnwindSafe(|| {
                let mut sinks = QuantumSinks {
                    worklist: frontier.storage_mut(),
                    next_id: &mut next_id,
                    stats: &mut stats,
                    bugs: &mut bugs,
                    exec_pcs: &mut exec_pcs,
                    new_bug_keys: &mut new_bug_keys,
                    fork_events: &mut fork_events,
                    replay: None,
                };
                self.run_quantum(dut, &mut m, &mut env, &mut solver, &mut sinks)
            }));
            let (alive, status) = match survived {
                Ok(None) => (true, None),
                Ok(Some(end)) => (false, Some(end.status())),
                Err(_) => {
                    stats.panics_caught += 1;
                    // The machine's state is suspect; drop it.
                    (false, Some(PathStatus::Panicked))
                }
            };
            for pc in exec_pcs {
                coverage.on_exec(pc);
            }
            // Search bookkeeping: quantum ordinal, coverage delta, and the
            // per-state metadata the guided strategies rank by.
            stats.quanta_executed += 1;
            let stamp = stats.quanta_executed;
            let covered_now = coverage.covered_blocks();
            let fresh = (covered_now - covered_before) as u64;
            if fresh > 0 {
                stats.quanta_to_last_cover = stamp;
            }
            if stats.quanta_to_first_bug == 0 && !bugs.is_empty() {
                stats.quanta_to_first_bug = stamp;
            }
            m.cov_fresh = fresh;
            m.cov_stamp = stamp;
            {
                let storage = frontier.storage_mut();
                for child in storage[n_before..].iter_mut() {
                    child.cov_fresh = fresh;
                    child.cov_stamp = stamp;
                }
                // Opt-in pruning: drop children whose structural fingerprint
                // already appeared with no coverage delta since. Only this
                // quantum's forks are candidates — never the parent, never
                // states restored from a checkpoint. Deferred-verdict
                // children are settled first: an infeasible zombie must not
                // deposit its fingerprint in the seen-set (`PruneSet::check`
                // records as it tests), or it would shadow a feasible twin.
                if prune.is_some() {
                    Self::flush_pending(&mut *storage, &mut solver, &mut stats);
                }
                if let Some(p) = prune.as_mut() {
                    let mut i = n_before;
                    while i < storage.len() {
                        let h = PruneSet::fp_hash(&storage[i].fingerprint());
                        if p.check(h, covered_now as u64) {
                            storage.swap_remove(i);
                            stats.states_pruned += 1;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            if let Some(c) = campaign.as_mut() {
                for (parent, child, kind) in fork_events.drain(..) {
                    c.record(&JournalRecord::Forked { parent, child, kind });
                }
                if let Some(status) = status {
                    c.record(&JournalRecord::PathDone {
                        machine: m.id,
                        status,
                        steps: m.steps_total,
                        new_bugs: std::mem::take(&mut new_bug_keys),
                    });
                }
            }
            if alive {
                frontier.push(m);
            }
            stats.peak_states = stats.peak_states.max(frontier.len() + 1);
            quanta_since_checkpoint += 1;
            if let Some(c) = campaign.as_mut() {
                if quanta_since_checkpoint >= c.every_quanta() {
                    quanta_since_checkpoint = 0;
                    stats.wall_ms = coverage.elapsed_ms();
                    fold_solver(&mut stats, &solver);
                    let seen = prune.as_ref().map(|p| p.snapshot()).unwrap_or_default();
                    let ck = checkpoint_file(dut, self, &coverage, &stats, &bugs, next_id, frontier.as_slice(), seen, false, false);
                    c.write_checkpoint(ck);
                }
            }
        }

        stats.wall_ms = coverage.elapsed_ms();
        fold_solver(&mut stats, &solver);
        stats.cache_evictions = run_cache.as_ref().map_or(0, |c| c.stats().evictions);
        stats.sample_interner();
        stats.lifecycle_bugs = bugs
            .values()
            .filter(|b| b.class == crate::report::BugClass::LifecycleViolation)
            .count() as u64;
        let insn_exhausted = stats.insns > self.config.max_total_insns;
        let wall_exhausted = stats.wall_ms > self.config.time_budget_ms;
        let mut health = RunHealth::from_stats(&stats, insn_exhausted, wall_exhausted);
        health.resume_replayed_paths = replays.0;
        health.resume_replay_failures = replays.1;
        if let Some(c) = campaign.as_mut() {
            if interrupted {
                c.record(&JournalRecord::Interrupted);
            }
            let finished = frontier.is_empty();
            if finished {
                c.record(&JournalRecord::Finished { distinct_bugs: bugs.len() as u64 });
            }
            let seen = prune.as_ref().map(|p| p.snapshot()).unwrap_or_default();
            let ck = checkpoint_file(dut, self, &coverage, &stats, &bugs, next_id, frontier.as_slice(), seen, finished, interrupted);
            c.write_checkpoint(ck);
            c.finish();
            health.checkpoints_written = c.checkpoints_written;
            health.journal_records = c.journal_records;
        }
        let bug_list = self.finalize_bugs(bugs, &mut health, dut);
        Report {
            driver: dut.image.name.clone(),
            bugs: bug_list,
            total_blocks: coverage.total_blocks(),
            covered_blocks: coverage.covered_blocks(),
            coverage_timeline: coverage.timeline().to_vec(),
            health,
            stats,
        }
    }

    /// Builds the root machine (public to the crate for the parallel
    /// explorer).
    pub(crate) fn make_root_machine(&self, dut: &DriverUnderTest) -> Machine {
        self.make_root(dut, &StackLayout::default())
    }

    /// Resolves every deferred-verdict machine in `storage` with one batched
    /// solver pass ([`Solver::solve_obligations`]). Feasible machines clear
    /// their flag and count as started paths; infeasible ones are removed,
    /// order-preserving — leaving exactly the worklist an eager (`--no-batch`)
    /// run would have built, which is what keeps the two modes
    /// report-identical. No-op when nothing is pending.
    pub(crate) fn flush_pending(
        storage: &mut Vec<Machine>,
        solver: &mut Solver,
        stats: &mut ExploreStats,
    ) {
        if !storage.iter().any(|m| m.st.verdict_pending) {
            return;
        }
        let keys: Vec<Vec<Expr>> = storage
            .iter()
            .filter(|m| m.st.verdict_pending)
            .map(|m| m.st.constraints.clone())
            .collect();
        let verdicts = solver.solve_obligations(&keys);
        let mut v = verdicts.iter();
        storage.retain_mut(|m| {
            if !m.st.verdict_pending {
                return true;
            }
            if *v.next().expect("one verdict per obligation") {
                m.st.verdict_pending = false;
                stats.paths_started += 1;
                true
            } else {
                false
            }
        });
    }

    /// Finalizes the keyed bug map into the report: fills the dedup
    /// counters and persists trace artifacts when a store is configured.
    /// Shared with the parallel explorer so both paths report identically.
    ///
    /// The report itself stays key-level (keys are deterministic across
    /// exploration schedules; a bug's signature depends on which path
    /// recorded it first, which is not). Keys sharing a signature collapse
    /// in the store — `TraceStore::persist` merges occurrences under one
    /// artifact — and in the `bugs_deduped` counter here.
    pub(crate) fn finalize_bugs(
        &self,
        bugs: HashMap<String, Bug>,
        health: &mut RunHealth,
        dut: &DriverUnderTest,
    ) -> Vec<Bug> {
        let mut bug_list: Vec<Bug> = bugs.into_values().collect();
        // The key tie-breaks bugs sharing an (entry, pc): without it the
        // order falls back to hash-map iteration, which differs across
        // processes — and fleet reports must diff clean against serial.
        bug_list.sort_by_key(|a| (a.entry.clone(), a.pc, a.key.clone()));
        health.bug_occurrences = bug_list.iter().map(|b| b.occurrences).sum();
        let signatures: std::collections::HashSet<&str> =
            bug_list.iter().map(|b| b.signature.as_str()).collect();
        health.bugs_deduped = signatures.len() as u64;
        health.lifecycle_bugs = bug_list
            .iter()
            .filter(|b| b.class == crate::report::BugClass::LifecycleViolation)
            .count() as u64;
        if let Some(dir) = &self.config.trace_dir {
            match crate::tracestore::persist_bugs(dir, &bug_list, dut) {
                Ok(n) => health.traces_persisted = n,
                // A store failure must not lose the in-memory report; the
                // zero counter plus the message is the health signal.
                Err(e) => eprintln!("ddt: trace store write failed: {e}"),
            }
        }
        bug_list
    }

    /// Runs one scheduling quantum of a machine: up to [`QUANTUM`] symbolic
    /// steps with full kernel-call / return / fork handling. Forked states
    /// are appended to the sink worklist; executed pcs are appended for
    /// coverage accounting. Returns `None` while the machine is still alive
    /// (reschedule it) or the terminal status that ended the path.
    ///
    /// Every fork *site* — a point where exploration may spawn an
    /// alternative — fires on conditions that depend only on the machine's
    /// own state, never on worklist pressure (capacity gates only the
    /// push). That invariant is what makes a recorded choice log replayable
    /// under any later worklist population: in replay mode the sites fire
    /// in the identical order and the cursor steers through them.
    pub(crate) fn run_quantum(
        &self,
        dut: &DriverUnderTest,
        m: &mut Machine,
        env: &mut DdtEnv,
        solver: &mut Solver,
        sinks: &mut QuantumSinks,
    ) -> Option<PathEnd> {
        if sinks.replay.is_none() {
            if let Some(hook) = &self.config.panic_hook {
                let fired = hook
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .ok();
                if fired == Some(1) {
                    panic!("induced quantum panic (test hook)");
                }
            }
        }
        let syms_before = m.st.counter.allocated();
        let mut end: Option<PathEnd> = None;
        for _ in 0..QUANTUM {
            if let Some(cur) = sinks.replay.as_deref() {
                // Prefix reconstruction stops exactly at the checkpointed
                // step count; divergence is checked by the caller.
                if cur.diverged.is_some() || m.steps_total >= cur.target_steps {
                    break;
                }
            }
            // Whole-path step watchdog: a path that has executed this many
            // instructions without terminating is a potential driver hang
            // (e.g. a polling loop the per-invocation budget keeps resetting
            // across entry points). Not checked during prefix replay — a
            // path over budget can never have entered a frontier.
            if sinks.replay.is_none() && m.steps_total >= self.config.max_path_insns {
                end = Some(PathEnd::StepBudget);
                break;
            }
            m.steps_total += 1;
            sinks.exec_pcs.push(m.st.cpu.pc);
            let outcome = step(&mut m.st, env, solver);
            sinks.stats.insns += 1;
            m.steps_in_entry += 1;
            // Multi-way address resolution parks alternatives on the state.
            // The whole drain is ONE fork site: the parent (pick 0) keeps
            // its resolution, alternative `i` is pick `i + 1`.
            let alts = std::mem::take(&mut m.st.pending_forks);
            if !alts.is_empty() {
                match sinks.steer(SiteKind::PendingFork) {
                    ReplaySteer::Stay => {
                        if !sinks.replaying() {
                            for (i, alt) in alts.into_iter().enumerate() {
                                if sinks.worklist.len() < self.config.max_states {
                                    let mut child = m.adopt(alt, *sinks.next_id);
                                    *sinks.next_id += 1;
                                    child.log_pick(SiteKind::PendingFork, (i + 1) as u32);
                                    sinks.fork_events.push((m.id, child.id, SiteKind::PendingFork));
                                    sinks.stats.paths_started += 1;
                                    sinks.worklist.push(child);
                                } else {
                                    sinks.stats.states_dropped += 1;
                                }
                            }
                        }
                        m.note_site();
                    }
                    ReplaySteer::Child(pick) => {
                        let idx = (pick as usize).saturating_sub(1);
                        match alts.into_iter().nth(idx) {
                            Some(alt) => {
                                let mut child = m.adopt(alt, m.id);
                                child.log_pick(SiteKind::PendingFork, pick);
                                *m = child;
                                // The parent's step aftermath (violations,
                                // outcome) belongs to the path we just left.
                                let _ = env.drain_violations();
                                continue;
                            }
                            None => {
                                if let Some(cur) = sinks.replay.as_deref_mut() {
                                    cur.mark_diverged("pending-fork pick out of range");
                                }
                                break;
                            }
                        }
                    }
                }
            }
            // Survivable memory-checker violations: report, continue.
            for v in env.drain_violations() {
                let pending = classify_violation(m, &v);
                self.record_bug(sinks.bugs, sinks.new_bug_keys, m, pending, solver, dut);
            }
            match outcome {
                SymStep::Continue => {
                    if m.steps_in_entry > self.config.max_invocation_insns {
                        if let Some(pending) = crate::checkers::check_infinite_loop(m, 64) {
                            self.record_bug(sinks.bugs, sinks.new_bug_keys, m, pending, solver, dut);
                        }
                        end = Some(PathEnd::BudgetKilled);
                        break;
                    }
                }
                SymStep::Forked { other } => {
                    match sinks.steer(SiteKind::BranchFork) {
                        ReplaySteer::Stay => {
                            if !sinks.replaying() {
                                // Staged deferred-verdict children occupy
                                // capacity only until the next flush; before
                                // declaring the worklist full, settle them so
                                // the drop decision matches what an eager
                                // (`--no-batch`) run would see.
                                if sinks.worklist.len() >= self.config.max_states {
                                    Self::flush_pending(sinks.worklist, solver, sinks.stats);
                                }
                                if sinks.worklist.len() < self.config.max_states {
                                    let mut child = m.adopt(*other, *sinks.next_id);
                                    *sinks.next_id += 1;
                                    child.log_pick(SiteKind::BranchFork, 1);
                                    sinks.fork_events.push((m.id, child.id, SiteKind::BranchFork));
                                    // Lazy feasibility: a deferred-verdict
                                    // child is staged now and decided at the
                                    // next batched flush; `--no-batch` asks
                                    // the solver for the same verdict here.
                                    let mut admit = true;
                                    if child.st.verdict_pending && !self.config.use_batch {
                                        if solver.is_feasible_obligation(&child.st.constraints) {
                                            child.st.verdict_pending = false;
                                        } else {
                                            admit = false;
                                        }
                                    }
                                    if admit {
                                        if !child.st.verdict_pending {
                                            sinks.stats.paths_started += 1;
                                        }
                                        sinks.worklist.push(child);
                                    }
                                } else {
                                    sinks.stats.states_dropped += 1;
                                }
                            }
                            m.note_site();
                        }
                        ReplaySteer::Child(_) => {
                            let mut child = m.adopt(*other, m.id);
                            child.log_pick(SiteKind::BranchFork, 1);
                            *m = child;
                        }
                    }
                }
                SymStep::KernelCall { export_id } => {
                    match self.handle_kernel_call(m, export_id, solver, sinks, dut) {
                        Ok(CallFlow::Done) => {}
                        Ok(CallFlow::Restarted) => continue,
                        Err(pending) => {
                            self.record_bug(sinks.bugs, sinks.new_bug_keys, m, pending, solver, dut);
                            end = Some(PathEnd::Faulted);
                            break;
                        }
                    }
                }
                SymStep::ReturnToKernel => {
                    match self.handle_return(m, solver, sinks, dut) {
                        ReturnFlow::Continue => {}
                        ReturnFlow::PathDone => {
                            end = Some(PathEnd::Completed);
                            break;
                        }
                    }
                }
                SymStep::Halted => {
                    end = Some(PathEnd::Completed);
                    break;
                }
                SymStep::Fault(f) => {
                    let classified = classify_fault(m, &f);
                    match classified {
                        Some(pending) => {
                            self.record_bug(sinks.bugs, sinks.new_bug_keys, m, pending, solver, dut);
                            end = Some(PathEnd::Faulted);
                        }
                        None => end = Some(PathEnd::Infeasible),
                    }
                    break;
                }
            }
        }
        sinks.stats.max_cow_depth = sinks.stats.max_cow_depth.max(m.st.mem.chain_depth());
        // Symbol accounting is a per-quantum delta so it sums correctly
        // across any quantum partition (and across checkpoint/resume).
        sinks.stats.symbols += m.st.counter.allocated().wrapping_sub(syms_before);
        match end {
            None => None, // Quantum expired; reschedule.
            Some(e) => {
                match e {
                    PathEnd::Completed => sinks.stats.paths_completed += 1,
                    PathEnd::Faulted => sinks.stats.paths_faulted += 1,
                    PathEnd::Infeasible => sinks.stats.paths_infeasible += 1,
                    PathEnd::BudgetKilled => sinks.stats.paths_budget_killed += 1,
                    PathEnd::StepBudget => sinks.stats.paths_step_budget_killed += 1,
                }
                Some(e)
            }
        }
    }

    /// One single-alternative fork site. In exploration the child is
    /// forked, mutated, logged, and pushed (capacity gates only the push —
    /// the site itself fires unconditionally, keeping choice logs
    /// replayable under any worklist pressure). During replay the cursor
    /// steers: `Stay` skips the site; `Child` applies the mutation to the
    /// machine itself and returns `true` so the caller can re-dispatch.
    fn fork_site(
        &self,
        m: &mut Machine,
        sinks: &mut QuantumSinks,
        kind: SiteKind,
        mutate: impl FnOnce(&mut Machine),
    ) -> bool {
        match sinks.steer(kind) {
            ReplaySteer::Stay => {
                if !sinks.replaying() {
                    if sinks.worklist.len() < self.config.max_states {
                        let mut child = m.fork(*sinks.next_id);
                        *sinks.next_id += 1;
                        mutate(&mut child);
                        child.log_pick(kind, 1);
                        sinks.fork_events.push((m.id, child.id, kind));
                        sinks.stats.paths_started += 1;
                        sinks.worklist.push(child);
                    } else {
                        sinks.stats.states_dropped += 1;
                    }
                }
                m.note_site();
                false
            }
            ReplaySteer::Child(_) => {
                mutate(m);
                m.log_pick(kind, 1);
                true
            }
        }
    }

    fn make_root(&self, dut: &DriverUnderTest, stack: &StackLayout) -> Machine {
        let mut st = SymState::new(SymCounter::new());
        let plan = LoadPlan::new(dut.image.clone());
        for (start, len) in plan.regions() {
            st.mem.map(start, len);
        }
        st.mem.seed_bytes(dut.image.load_base, &dut.image.text);
        st.mem.seed_bytes(dut.image.data_base(), &dut.image.data);
        st.mem.set_code_region(dut.image.load_base, dut.image.text.len() as u32);
        st.grants.grant(
            dut.image.load_base,
            dut.image.image_end() - dut.image.load_base,
            "driver image",
        );
        let _ = stack; // Stack access is granted dynamically (above sp).
        let mut kernel = Kernel::new();
        for (k, v) in &dut.registry {
            kernel.state.registry.insert(k.clone(), *v);
        }
        kernel.state.device = dut.descriptor.clone();
        let mut m = Machine::new(st, kernel);
        m.interrupt_budget = self.config.interrupt_budget;
        let entry = plan.driver_entry();
        m.frames.push(Frame::Entry { name: entry.name.clone(), held_at_entry: vec![] });
        m.apply_invocation(&entry, false);
        m.st.trace.push(TraceEvent::EntryInvoke { name: entry.name, addr: entry.addr });
        m
    }

    /// Converts a pending bug into a full report entry (trace + solved
    /// inputs + decision schedule, §3.5) and dedups it.
    ///
    /// Deduplication is two-level: the checker key collapses repeat
    /// sightings within this run (counted via [`Bug::occurrences`]), and the
    /// trace signature (crash pc + frame stack + checker id + provenance
    /// roots, §3.6) identifies the bug across states and runs once
    /// persisted.
    fn record_bug(
        &self,
        bugs: &mut HashMap<String, Bug>,
        new_keys: &mut Vec<String>,
        m: &Machine,
        pending: PendingBug,
        solver: &mut Solver,
        dut: &DriverUnderTest,
    ) {
        if let Some(existing) = bugs.get_mut(&pending.key) {
            existing.occurrences += 1;
            return;
        }
        let inputs = match pending.model.clone() {
            Some(model) => model,
            None => match m.st.last_model.clone() {
                // The cached model satisfies the path condition by invariant.
                Some(model) => model,
                None => match solver.check(&m.st.constraints) {
                    ddt_solver::SatResult::Sat(model) => model,
                    ddt_solver::SatResult::Unsat => return, // Dead path; not a bug.
                },
            },
        };
        // The symbols implicated at the bug site: those the checker named,
        // or — when the checker has none (crashes, hangs) — the symbols of
        // the last path constraint, which is the decision that steered
        // execution here.
        let mut site_syms = pending.syms.clone();
        if site_syms.is_empty() {
            if let Some(constraint) = m.st.trace.rfind_map(|ev| match ev {
                TraceEvent::Branch { constraint, .. } => Some(constraint.clone()),
                _ => None,
            }) {
                let mut set = std::collections::BTreeSet::new();
                ddt_expr::collect_syms(&constraint, &mut set);
                site_syms = set.into_iter().collect();
            }
        }
        let trace = m.st.trace.events();
        let provenance = ddt_trace::provenance_chains(&trace, &site_syms, &inputs);
        let roots: Vec<String> = provenance.iter().map(|c| c.root()).collect();
        let stack: Vec<String> =
            m.frames.iter().map(|f| f.running().to_string()).collect();
        let signature = ddt_trace::signature(
            pending.pc,
            &stack,
            ddt_trace::checker_id(&pending.key),
            &roots,
        );
        let bug = Bug {
            driver: dut.image.name.clone(),
            class: pending.class,
            origin: BugOrigin::Symbolic,
            description: pending.description,
            pc: pending.pc,
            entry: m.current_entry().to_string(),
            interrupted_entry: m.interrupted_entry(),
            trace,
            inputs,
            decisions: m.decisions.clone(),
            key: pending.key.clone(),
            signature,
            occurrences: 1,
            stack,
            provenance,
        };
        new_keys.push(pending.key.clone());
        bugs.insert(pending.key, bug);
    }

    /// One kernel API call: annotations around a native kernel invocation,
    /// plus symbolic-interrupt injection at the boundary (§3.3).
    // The Err variant is the rare bug path; boxing it would tax the hot
    // Ok path's callers for nothing.
    #[allow(clippy::result_large_err)]
    fn handle_kernel_call(
        &self,
        m: &mut Machine,
        export: u16,
        solver: &mut Solver,
        sinks: &mut QuantumSinks,
        dut: &DriverUnderTest,
    ) -> Result<CallFlow, PendingBug> {
        // Concrete-to-symbolic hint: fork the failed-allocation alternative.
        // One failed acquisition per path, whichever mechanism injects it.
        let has_fault = m
            .decisions
            .iter()
            .any(|d| matches!(d, Decision::ForceAllocFail { .. } | Decision::InjectFault { .. }));
        if self.config.annotations.wants_failure_fork(export) && !has_fault {
            let kernel_call = m.kernel_calls;
            if self.fork_site(m, sinks, SiteKind::AllocFail, |c| {
                c.kernel.state.force_alloc_failures = 1;
                c.decisions.push(Decision::ForceAllocFail { kernel_call });
            }) {
                // Became the failed-allocation alternative: the trap pc is
                // unchanged, so re-dispatch consumes the armed fault.
                return Ok(CallFlow::Restarted);
            }
        }
        // Systematic fault injection (the fault plan's generalization of the
        // same hint): fork an alternative in which this acquisition fails.
        // The fork resumes at the call instruction with the one-shot fault
        // armed, so re-dispatch consumes it.
        let injector = FaultInjector::new(self.config.fault_plan.clone());
        if let Some(kind) = injector.should_fork(export, &self.config.annotations, &m.decisions) {
            let site = m.kernel_calls;
            if self.fork_site(m, sinks, SiteKind::FaultInject, |c| {
                c.kernel.state.inject_fault = Some(kind);
                c.decisions.push(Decision::InjectFault { site, kind });
            }) {
                return Ok(CallFlow::Restarted);
            }
        }
        let name = ddt_kernel::export_name(export).unwrap_or("?").to_string();
        m.st.trace.push(TraceEvent::KernelCall { export_id: export, name });
        m.kernel_calls += 1;
        let events_before = m.kernel.state.events.len();
        let ret_to = {
            let lr = m.st.cpu.get(Reg::LR);
            lr.as_const().map(|v| v as u32)
        };
        // Concretization backtracking (§3.2): if an argument register is
        // symbolic, snapshot the pre-call state so the call can be repeated
        // with a different feasible concrete value. One backtrack per path
        // keeps the fan-out linear. The condition is deliberately
        // independent of worklist capacity (see `run_quantum`).
        let may_backtrack = !m
            .decisions
            .iter()
            .any(|d| matches!(d, Decision::ConcretizationBacktrack { .. }))
            && (0..4).any(|i| !m.st.cpu.regs[i].is_const());
        let arg_exprs: [Expr; 4] = std::array::from_fn(|i| m.st.cpu.regs[i].clone());
        let snapshot = if may_backtrack { Some(m.fork(u64::MAX)) } else { None };
        let mut host = SymHost::new(&mut m.st, solver);
        let call_result = m.kernel.invoke(export, &mut host);
        let args = host.args_seen;
        if let Some(mut snap) = snapshot {
            // For the first argument the kernel actually concretized,
            // re-enable the other feasible values on a fork that re-issues
            // the call from the snapshot.
            for i in 0..4 {
                let (Some(v), e) = (args[i], &arg_exprs[i]) else { continue };
                if e.is_const() {
                    continue;
                }
                let exclude = e.ne(&Expr::constant(v as u64, 32));
                let mut cs = snap.st.constraints.clone();
                cs.push(exclude.clone());
                if let ddt_solver::SatResult::Sat(model) = solver.check(&cs) {
                    // A feasible alternative exists: this is a fork site.
                    let call_idx = m.kernel_calls - 1;
                    let arm = move |s: &mut Machine| {
                        s.st.add_constraint(exclude);
                        s.st.set_model(model);
                        s.decisions.push(Decision::ConcretizationBacktrack {
                            kernel_call: call_idx,
                        });
                        s.log_pick(SiteKind::Backtrack, 1);
                    };
                    match sinks.steer(SiteKind::Backtrack) {
                        ReplaySteer::Stay => {
                            if !sinks.replaying() {
                                if sinks.worklist.len() < self.config.max_states {
                                    snap.id = *sinks.next_id;
                                    *sinks.next_id += 1;
                                    arm(&mut snap);
                                    sinks.fork_events.push((m.id, snap.id, SiteKind::Backtrack));
                                    sinks.stats.paths_started += 1;
                                    sinks.worklist.push(snap);
                                } else {
                                    sinks.stats.states_dropped += 1;
                                }
                            }
                            m.note_site();
                        }
                        ReplaySteer::Child(_) => {
                            snap.id = m.id;
                            arm(&mut snap);
                            *m = snap;
                            // The machine is now the pre-call snapshot with
                            // the exclusion armed; re-dispatch the call.
                            return Ok(CallFlow::Restarted);
                        }
                    }
                }
                break;
            }
        }
        if let Err(crash) = call_result {
            return Err(classify_crash(m, &crash));
        }
        post_kernel_call(&self.config.annotations, &mut m.st, &m.kernel, solver, export, &args);
        let new_events = m.kernel.state.events[events_before..].to_vec();
        for ev in &new_events {
            if let KernelEvent::FaultInjected { family } = ev {
                sinks.stats.count_fault(*family);
                m.injected_faults.push(*family);
            }
        }
        apply_resource_grants(&mut m.st, &new_events);
        for pending in scan_kernel_events(m) {
            self.record_bug(sinks.bugs, sinks.new_bug_keys, m, pending, solver, dut);
        }
        // Resume the driver at the saved link register.
        let ret = m.st.cpu.get(Reg(0)).as_const().unwrap_or(0) as u32;
        m.st.trace.push(TraceEvent::KernelReturn { export_id: export, ret });
        match ret_to {
            Some(pc) => m.st.cpu.pc = pc,
            None => {
                // A symbolic return address would mean stack corruption.
                return Err(PendingBug {
                    class: crate::report::BugClass::SegFault,
                    description: "symbolic return address after kernel call".into(),
                    pc: m.st.cpu.pc,
                    key: format!("symlr:{}", m.kernel_calls),
                    model: None,
                    syms: Vec::new(),
                });
            }
        }
        // Boundary crossing: symbolic interrupt injection point.
        m.boundaries += 1;
        // If replay turns the machine into the interrupted alternative, the
        // next loop iteration simply steps into the ISR — no restart needed.
        if !self.maybe_inject_interrupt(m, sinks) {
            // Same for the lifecycle alternatives: the next iteration steps
            // into the PnP handler.
            let _ = self.maybe_inject_lifecycle(m, sinks);
        }
        Ok(CallFlow::Done)
    }

    /// The symbolic-interrupt fork site: an alternative in which the device
    /// interrupt fires at this boundary. Returns `true` when replay
    /// steering turned the machine itself into that alternative.
    fn maybe_inject_interrupt(&self, m: &mut Machine, sinks: &mut QuantumSinks) -> bool {
        if m.interrupt_budget == 0 || m.in_nested_frame() {
            return false;
        }
        // A removed or powered-down device raises no interrupts.
        if !m.kernel.state.device_present || m.kernel.state.power != DevicePowerState::D0 {
            return false;
        }
        let Some(table) = m.kernel.state.miniport.clone() else { return false };
        if m.kernel.state.interrupt.is_none() || table.isr == 0 {
            return false;
        }
        let boundary = m.boundaries;
        self.fork_site(m, sinks, SiteKind::Interrupt, |c| {
            c.interrupt_budget -= 1;
            c.decisions.push(Decision::InjectInterrupt { boundary });
            let at_entry = c.running().to_string();
            let line = c.kernel.state.interrupt.as_ref().map(|i| i.line).unwrap_or(0);
            c.st.trace.push(TraceEvent::Interrupt { line, at_pc: c.st.cpu.pc });
            let saved = c.save_ctx();
            let held_at_entry = c.held_locks();
            c.frames.push(Frame::Isr { saved, at_entry, held_at_entry });
            c.kernel.state.context = ExecContext::Isr;
            c.kernel.state.irql = Irql::Device;
            let inv = EntryInvocation::new("Isr", table.isr, [0, 0, 0, 0]);
            c.apply_invocation(&inv, true);
            c.st.trace.push(TraceEvent::EntryInvoke { name: "Isr".into(), addr: table.isr });
        })
    }

    /// The device-lifecycle fork sites: up to two alternatives per boundary
    /// in which a power transition (suspend from D0, resume from D3) or a
    /// surprise removal hits the device and the driver's PnP handler runs.
    /// Returns `true` when replay steering turned the machine itself into
    /// one of those alternatives.
    fn maybe_inject_lifecycle(&self, m: &mut Machine, sinks: &mut QuantumSinks) -> bool {
        if !self.config.fault_plan.wants(FaultFamily::Lifecycle) {
            return false;
        }
        if m.lifecycle_budget == 0 || m.in_nested_frame() {
            return false;
        }
        let s = &m.kernel.state;
        // No handler, no events; a removed device emits nothing further;
        // PnP notifications arrive at passive level only.
        if s.pnp_handler == 0 || !s.device_present || s.irql != Irql::Passive {
            return false;
        }
        let boundary = m.boundaries;
        // Power site: the direction depends on the current power state, so
        // a suspend alternative can later fork its own resume alternative.
        let power_event = match s.power {
            DevicePowerState::D0 => LifecycleEvent::Suspend,
            DevicePowerState::D3 => LifecycleEvent::Resume,
        };
        if !sinks.replaying() {
            sinks.stats.count_fault(FaultFamily::Lifecycle);
        }
        if self.fork_site(m, sinks, SiteKind::Lifecycle, |c| {
            c.lifecycle_budget -= 1;
            c.decisions.push(Decision::LifecycleEvent { boundary, event: power_event });
            deliver_lifecycle(c, power_event, true);
        }) {
            return true;
        }
        // Removal site: only a powered-up device can be surprise-removed
        // (a D3 device's removal surfaces at the resume that never works —
        // a different path family, explored from the resume alternative).
        if m.kernel.state.power == DevicePowerState::D0 {
            if !sinks.replaying() {
                sinks.stats.count_fault(FaultFamily::Lifecycle);
            }
            if self.fork_site(m, sinks, SiteKind::Lifecycle, |c| {
                c.lifecycle_budget -= 1;
                c.decisions.push(Decision::LifecycleEvent {
                    boundary,
                    event: LifecycleEvent::SurpriseRemove,
                });
                deliver_lifecycle(c, LifecycleEvent::SurpriseRemove, true);
            }) {
                return true;
            }
        }
        false
    }

    /// Handles a return to the kernel: frame pops, checkers, next workload
    /// operation.
    fn handle_return(
        &self,
        m: &mut Machine,
        solver: &mut Solver,
        sinks: &mut QuantumSinks,
        dut: &DriverUnderTest,
    ) -> ReturnFlow {
        let ret_e = m.st.cpu.get(Reg(0));
        let status = match ret_e.as_const() {
            Some(v) => v as u32,
            None => {
                let v = m
                    .st
                    .model_eval(&ret_e)
                    .or_else(|| solver.concretize(&m.st.constraints, &ret_e))
                    .unwrap_or(0) as u32;
                m.st.record_concretization(ret_e, v);
                v
            }
        };
        if m.frames.is_empty() {
            return ReturnFlow::PathDone;
        }
        // Run the return checkers *before* popping so bug reports carry the
        // correct entry attribution.
        let returned = m.frames.last().expect("checked").running().to_string();
        let held_at_entry = m.frames.last().expect("checked").held_at_entry().to_vec();
        for pending in on_invocation_return(m, &returned, status, &held_at_entry) {
            self.record_bug(sinks.bugs, sinks.new_bug_keys, m, pending, solver, dut);
        }
        // Lifecycle checkers need the returning frame still on the stack
        // (the resume-without-restore rule reads its trace mark).
        for pending in check_lifecycle(m) {
            self.record_bug(sinks.bugs, sinks.new_bug_keys, m, pending, solver, dut);
        }
        let frame = m.frames.pop().expect("checked");
        match frame {
            Frame::Entry { name, .. } => {
                if name == "Initialize" && status != 0 {
                    // Paper: "DDT terminates paths based on user-configurable
                    // criteria (e.g., if the entry point returns with a
                    // failure)".
                    return ReturnFlow::PathDone;
                }
                if name == "DriverEntry" && m.kernel.state.miniport.is_none() {
                    return ReturnFlow::PathDone;
                }
                self.schedule_next_op(m, &dut.workload, sinks)
            }
            Frame::Isr { saved, at_entry, .. } => {
                let table = m.kernel.state.miniport.clone().unwrap_or_default();
                // A DPC only runs once the interrupted IRQL drops below
                // DISPATCH; if the interrupt preempted dispatch-level code
                // (e.g. a spinlocked section), Windows defers the DPC. We
                // model the deferral by dropping it (the non-deferred
                // interleaving is explored from other boundaries).
                if status != 0 && table.handle_interrupt != 0 && saved.irql < Irql::Dispatch {
                    // The ISR recognized the interrupt: run the DPC.
                    let held_at_entry = m.held_locks();
                    m.frames.push(Frame::Dpc { saved, at_entry, held_at_entry });
                    m.kernel.state.context = ExecContext::Dpc;
                    m.kernel.state.irql = Irql::Dispatch;
                    let inv =
                        EntryInvocation::new("HandleInterrupt", table.handle_interrupt, [0; 4]);
                    m.apply_invocation(&inv, true);
                    m.st.trace.push(TraceEvent::EntryInvoke {
                        name: "HandleInterrupt".into(),
                        addr: table.handle_interrupt,
                    });
                } else {
                    m.restore_ctx(&saved);
                }
                ReturnFlow::Continue
            }
            Frame::Dpc { saved, .. } | Frame::Timer { saved, .. } => {
                m.restore_ctx(&saved);
                ReturnFlow::Continue
            }
            Frame::Pnp { saved, .. } => {
                if m.frames.is_empty() {
                    // Workload-level delivery: the handler ran between entry
                    // points, so resume the workload, not a saved context.
                    self.schedule_next_op(m, &dut.workload, sinks)
                } else {
                    // Mid-quantum injection: resume the interrupted entry.
                    m.restore_ctx(&saved);
                    ReturnFlow::Continue
                }
            }
        }
    }

    /// Sets up the next workload operation (Device Path Exerciser analog)
    /// with the entry-argument annotations of §3.4.1.
    fn schedule_next_op(
        &self,
        m: &mut Machine,
        workload: &[WorkloadOp],
        sinks: &mut QuantumSinks,
    ) -> ReturnFlow {
        // Boundary between entry points: another injection point.
        m.boundaries += 1;
        if self.maybe_inject_interrupt(m, sinks) {
            // Replay turned the machine into the interrupted alternative:
            // run the ISR instead of scheduling the next operation.
            return ReturnFlow::Continue;
        }
        if self.maybe_inject_lifecycle(m, sinks) {
            // Same: run the PnP handler instead of the next operation.
            return ReturnFlow::Continue;
        }
        loop {
            let Some(op) = workload.get(m.workload_pos).cloned() else {
                return ReturnFlow::PathDone;
            };
            m.workload_pos += 1;
            let handle = m.kernel.state.adapter_handle;
            let table = m.kernel.state.miniport.clone().unwrap_or_default();
            m.kernel.state.context = ExecContext::Passive;
            m.kernel.state.irql = Irql::Passive;
            let ann = &self.config.annotations;
            let inv = match &op {
                WorkloadOp::Initialize => {
                    EntryInvocation::new("Initialize", table.initialize, [handle, 0, 0, 0])
                }
                WorkloadOp::Send { len, fill } => {
                    if table.send == 0 {
                        continue;
                    }
                    let data = m.alloc_scratch((*len).max(4), "packet data");
                    for i in 0..*len {
                        m.st.mem.write_byte(data + i, Expr::constant(*fill as u64, 8));
                    }
                    let desc = m.alloc_scratch(16, "packet descriptor");
                    m.st.mem.write(desc, 4, &Expr::constant(data as u64, 32));
                    if ann.enabled && ann.entry_args_symbolic && *len > 0 {
                        // Symbolic payload; symbolic length constrained not
                        // to exceed the concrete original (§7 soundness).
                        for i in 0..(*len).min(16) {
                            let b = m.st.new_symbol(
                                format!("packet[{i}]"),
                                SymOrigin::EntryArg { entry: "Send".into(), index: i as usize },
                                8,
                            );
                            m.st.mem.write_byte(data + i, b);
                        }
                        let slen = m.st.new_symbol(
                            "packet_len",
                            SymOrigin::EntryArg { entry: "Send".into(), index: 1 },
                            32,
                        );
                        m.st.add_constraint(Expr::constant(1, 32).ule(&slen));
                        m.st.add_constraint(slen.ule(&Expr::constant(*len as u64, 32)));
                        m.st.mem.write(desc + 4, 4, &slen);
                    } else {
                        m.st.mem.write(desc + 4, 4, &Expr::constant(*len as u64, 32));
                    }
                    EntryInvocation::new("Send", table.send, [handle, desc, 0, 0])
                }
                WorkloadOp::Query { oid, len } => {
                    if table.query_information == 0 {
                        continue;
                    }
                    let buf = m.alloc_scratch(*len, "oid buffer");
                    let mut inv = EntryInvocation::new(
                        "QueryInformation",
                        table.query_information,
                        [handle, *oid, buf, *len],
                    );
                    inv.name = "QueryInformation".into();
                    inv
                }
                WorkloadOp::Set { oid, len, value } => {
                    if table.set_information == 0 {
                        continue;
                    }
                    let buf = m.alloc_scratch(*len, "oid buffer");
                    m.st.mem.write(buf, 4, &Expr::constant(*value as u64, 32));
                    EntryInvocation::new(
                        "SetInformation",
                        table.set_information,
                        [handle, *oid, buf, *len],
                    )
                }
                WorkloadOp::FireTimers => {
                    // Advance virtual time, then deliver one due timer.
                    m.kernel.state.now_us += 200_000;
                    let now_ms = m.kernel.state.now_us / 1000;
                    let due: Option<(u32, u32, u32)> = m
                        .kernel
                        .state
                        .timers
                        .iter()
                        .filter(|(_, t)| t.initialized && t.due.is_some_and(|d| d <= now_ms))
                        .map(|(&a, t)| (a, t.callback, t.context))
                        .next();
                    match due {
                        None => continue,
                        Some((timer, callback, context)) => {
                            if let Some(t) = m.kernel.state.timers.get_mut(&timer) {
                                t.due = None;
                            }
                            if callback == 0 {
                                continue;
                            }
                            // Timers run at dispatch level, like DPCs.
                            m.workload_pos -= 1; // Re-run to drain others.
                            let saved = m.save_ctx();
                            let at_entry = "TimerCallback".to_string();
                            let held_at_entry = m.held_locks();
                            m.frames.push(Frame::Timer { saved, at_entry, held_at_entry });
                            m.kernel.state.context = ExecContext::Dpc;
                            m.kernel.state.irql = Irql::Dispatch;
                            let inv = EntryInvocation::new(
                                "TimerCallback",
                                callback,
                                [context, 0, 0, 0],
                            );
                            m.apply_invocation(&inv, false);
                            m.st.trace.push(TraceEvent::EntryInvoke {
                                name: "TimerCallback".into(),
                                addr: callback,
                            });
                            return ReturnFlow::Continue;
                        }
                    }
                }
                WorkloadOp::Reset => {
                    if table.reset == 0 {
                        continue;
                    }
                    EntryInvocation::new("Reset", table.reset, [handle, 0, 0, 0])
                }
                WorkloadOp::CheckForHang => {
                    if table.check_for_hang == 0 {
                        continue;
                    }
                    EntryInvocation::new("CheckForHang", table.check_for_hang, [handle, 0, 0, 0])
                }
                WorkloadOp::Aux => {
                    if table.aux == 0 {
                        continue;
                    }
                    EntryInvocation::new("Aux", table.aux, [handle, 0, 0, 0])
                }
                WorkloadOp::Halt => {
                    if table.halt == 0 {
                        continue;
                    }
                    EntryInvocation::new("Halt", table.halt, [handle, 0, 0, 0])
                }
                WorkloadOp::SurpriseRemove | WorkloadOp::Suspend | WorkloadOp::Resume => {
                    // Deterministic workload-level delivery (no fork, no
                    // decision): drivers without a PnP handler skip these,
                    // and a removed device sees no further events.
                    if m.kernel.state.pnp_handler == 0 || !m.kernel.state.device_present {
                        continue;
                    }
                    let event = match op {
                        WorkloadOp::SurpriseRemove => LifecycleEvent::SurpriseRemove,
                        WorkloadOp::Suspend => LifecycleEvent::Suspend,
                        _ => LifecycleEvent::Resume,
                    };
                    if !sinks.replaying() {
                        sinks.stats.count_fault(FaultFamily::Lifecycle);
                    }
                    deliver_lifecycle(m, event, false);
                    return ReturnFlow::Continue;
                }
            };
            m.frames.push(Frame::Entry { name: inv.name.clone(), held_at_entry: m.held_locks() });
            m.apply_invocation(&inv, false);
            m.st.trace.push(TraceEvent::EntryInvoke { name: inv.name.clone(), addr: inv.addr });
            // Entry-argument annotation: symbolic OID within the window.
            if self.config.annotations.enabled
                && self.config.annotations.entry_args_symbolic
                && matches!(op, WorkloadOp::Query { .. } | WorkloadOp::Set { .. })
            {
                let entry = inv.name.clone();
                let oid_sym = m.st.new_symbol(
                    format!("{entry}:oid"),
                    SymOrigin::EntryArg { entry, index: 1 },
                    32,
                );
                let window = self.config.annotations.oid_window.max(1);
                let base = if matches!(m_class_of(&op), DriverClass::Audio) { 0 } else { OID_BASE };
                m.st.add_constraint(
                    Expr::constant(base as u64, 32).ule(&oid_sym),
                );
                m.st.add_constraint(
                    oid_sym.ult(&Expr::constant(base as u64 + window as u64, 32)),
                );
                m.st.cpu.set(Reg(1), oid_sym);
            }
            return ReturnFlow::Continue;
        }
    }

}

/// Delivers one device-lifecycle event: advances the presence/power state
/// machine *before* the handler runs (a surprise-removed device is gone the
/// moment the notification fires), then invokes the driver's registered PnP
/// callback as `handler(context, event_code, 0, 0)` on a [`Frame::Pnp`].
/// `keep_sp` follows the ISR/timer convention: mid-quantum injections run
/// on the interrupted stack, workload-level deliveries on a fresh one.
fn deliver_lifecycle(m: &mut Machine, event: LifecycleEvent, keep_sp: bool) {
    match event {
        LifecycleEvent::SurpriseRemove => {
            m.kernel.state.surprise_remove();
            if m.removed_trace_mark.is_none() {
                m.removed_trace_mark = Some(m.st.trace.len());
            }
        }
        LifecycleEvent::Suspend => m.kernel.state.set_power(DevicePowerState::D3),
        LifecycleEvent::Resume => m.kernel.state.set_power(DevicePowerState::D0),
    }
    let at_entry = m.running().to_string();
    let saved = m.save_ctx();
    let held_at_entry = m.held_locks();
    let trace_mark = m.st.trace.len();
    m.frames.push(Frame::Pnp { event, saved, at_entry, held_at_entry, trace_mark });
    m.kernel.state.context = ExecContext::Passive;
    m.kernel.state.irql = Irql::Passive;
    let handler = m.kernel.state.pnp_handler;
    let context = m.kernel.state.pnp_context;
    let name = event.invocation_name();
    let inv = EntryInvocation::new(name, handler, [context, event.code(), 0, 0]);
    m.apply_invocation(&inv, keep_sp);
    m.st.trace.push(TraceEvent::EntryInvoke { name: name.into(), addr: handler });
}

/// Crude class recovery from the op shape (audio uses property ids near 0).
fn m_class_of(op: &WorkloadOp) -> DriverClass {
    match op {
        WorkloadOp::Query { oid, .. } | WorkloadOp::Set { oid, .. } if *oid < 0x100 => {
            DriverClass::Audio
        }
        _ => DriverClass::Net,
    }
}

enum ReturnFlow {
    Continue,
    PathDone,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The per-path step budget is the hang watchdog: a driver spinning in
    /// a polling loop forever must be killed, counted as a *potential hang*
    /// in RunHealth, and must not take the campaign down with it.
    #[test]
    fn step_budget_watchdog_kills_and_counts_runaway_paths() {
        let spec = ddt_drivers::driver_by_name("pcnet").expect("bundled driver");
        let dut = DriverUnderTest::from_spec(&spec);

        let baseline = Ddt::default().test(&dut);
        assert_eq!(
            baseline.stats.paths_step_budget_killed, 0,
            "an unlimited budget kills nothing"
        );

        let mut ddt = Ddt::default();
        ddt.config.max_path_insns = 60;
        let report = ddt.test(&dut);
        assert!(
            report.stats.paths_step_budget_killed > 0,
            "a 60-instruction path budget must trip on real paths"
        );
        assert_eq!(
            report.health.path_step_budget_kills,
            report.stats.paths_step_budget_killed
        );
        assert!(!report.health.pristine(), "step-budget kills degrade health");
        assert!(
            report.health.render().contains("step-budget kills"),
            "the health report names the watchdog: {}",
            report.health.render()
        );
        // The campaign itself still completes and reports.
        assert!(report.stats.paths_started > 0);
    }

    /// The step budget is part of the config fingerprint: a checkpoint
    /// taken under one budget must not resume under another.
    #[test]
    fn step_budget_is_fingerprinted() {
        let a = DdtConfig::default();
        let mut b = DdtConfig::default();
        b.max_path_insns = 1000;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
