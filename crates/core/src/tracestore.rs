//! Glue between in-memory [`Bug`] report entries and the persistent
//! `ddt-trace` store (§3.5).
//!
//! The exerciser hands finished bugs here; each becomes a
//! [`TraceArtifact`] — JSON manifest plus binary event log — persisted
//! under its trace signature. Before persisting, the decision schedule is
//! minimized against the concrete replayer: any injected interrupt or
//! forced failure that the verdict does not actually depend on is dropped
//! from the replay recipe (the full schedule is kept in the manifest for
//! diagnostics).

use std::io;
use std::path::Path;

use ddt_trace::{
    checker_id, //
    minimize_decisions,
    BugRecord,
    TraceArtifact,
    TraceStore,
    MANIFEST_VERSION,
};

use crate::exerciser::DriverUnderTest;
use crate::replay::{replay_bug, ReplayOutcome};
use crate::report::Bug;

/// Converts a report bug into a storable artifact (no minimization).
pub fn artifact_from_bug(bug: &Bug) -> TraceArtifact {
    TraceArtifact {
        manifest: BugRecord {
            version: MANIFEST_VERSION,
            signature: bug.signature.clone(),
            driver: bug.driver.clone(),
            class: bug.class,
            origin: bug.origin,
            description: bug.description.clone(),
            pc: bug.pc,
            entry: bug.entry.clone(),
            interrupted_entry: bug.interrupted_entry.clone(),
            checker: checker_id(&bug.key).to_string(),
            key: bug.key.clone(),
            occurrences: bug.occurrences,
            stack: bug.stack.clone(),
            inputs: bug.inputs.clone(),
            decisions: bug.decisions.clone(),
            minimized_decisions: None,
            provenance: bug.provenance.clone(),
            event_count: bug.trace.len(),
        },
        events: bug.trace.clone(),
    }
}

/// Reconstructs a report [`Bug`] from a stored artifact. The decision
/// schedule is the artifact's replay schedule (minimized when available),
/// so the result feeds straight into [`replay_bug`].
pub fn bug_from_artifact(artifact: &TraceArtifact) -> Bug {
    let m = &artifact.manifest;
    Bug {
        driver: m.driver.clone(),
        class: m.class,
        origin: m.origin,
        description: m.description.clone(),
        pc: m.pc,
        entry: m.entry.clone(),
        interrupted_entry: m.interrupted_entry.clone(),
        trace: artifact.events.clone(),
        inputs: m.inputs.clone(),
        decisions: m.replay_decisions().to_vec(),
        key: m.key.clone(),
        signature: m.signature.clone(),
        occurrences: m.occurrences,
        stack: m.stack.clone(),
        provenance: m.provenance.clone(),
    }
}

/// Replays a stored artifact concretely — no exploration, no solver; just
/// the recorded inputs and (minimized) decision schedule against the
/// driver binary.
pub fn replay_artifact(dut: &DriverUnderTest, artifact: &TraceArtifact) -> ReplayOutcome {
    replay_bug(dut, &bug_from_artifact(artifact))
}

/// Persists every bug to the store at `dir`, minimizing each decision
/// schedule against the concrete replayer first. Returns the number of
/// artifacts written or merged.
pub fn persist_bugs(dir: &Path, bugs: &[Bug], dut: &DriverUnderTest) -> io::Result<u64> {
    let store = TraceStore::open(dir)?;
    let mut persisted = 0;
    for bug in bugs {
        let mut artifact = artifact_from_bug(bug);
        if !bug.decisions.is_empty() {
            let result = minimize_decisions(&bug.decisions, |candidate| {
                let mut probe = bug.clone();
                probe.decisions = candidate.to_vec();
                matches!(replay_bug(dut, &probe), ReplayOutcome::Reproduced { .. })
            });
            // Only a strict trim is worth recording; `minimized` alone just
            // means the oracle confirmed the full schedule.
            if result.minimized && result.decisions.len() < bug.decisions.len() {
                artifact.manifest.minimized_decisions = Some(result.decisions);
            }
        }
        store.persist(&artifact)?;
        persisted += 1;
    }
    Ok(persisted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_expr::Assignment;
    use ddt_trace::{BugClass, BugOrigin, Decision};

    fn sample_bug() -> Bug {
        Bug {
            driver: "rtl8029".into(),
            class: BugClass::SegFault,
            origin: BugOrigin::Concrete,
            description: "wild store".into(),
            pc: 0x40_0010,
            entry: "Initialize".into(),
            interrupted_entry: None,
            trace: vec![ddt_symvm::TraceEvent::Exec { pc: 0x40_0010 }],
            inputs: Assignment::new(),
            decisions: vec![Decision::InjectInterrupt { boundary: 3 }],
            key: "viol:0x400010:write".into(),
            signature: "00deadbeef00cafe".into(),
            occurrences: 2,
            stack: vec!["Initialize".into()],
            provenance: vec![],
        }
    }

    #[test]
    fn bug_artifact_conversion_roundtrips() {
        let bug = sample_bug();
        let artifact = artifact_from_bug(&bug);
        assert_eq!(artifact.manifest.checker, "viol");
        assert_eq!(artifact.manifest.event_count, 1);
        let back = bug_from_artifact(&artifact);
        assert_eq!(back.signature, bug.signature);
        assert_eq!(back.decisions, bug.decisions);
        assert_eq!(back.trace, bug.trace);
        assert_eq!(back.origin, BugOrigin::Concrete, "origin survives the round trip");
    }

    #[test]
    fn minimized_schedule_wins_on_reconstruction() {
        let bug = sample_bug();
        let mut artifact = artifact_from_bug(&bug);
        artifact.manifest.minimized_decisions = Some(vec![]);
        let back = bug_from_artifact(&artifact);
        assert!(back.decisions.is_empty());
    }
}
