//! The fault-tolerant multi-process campaign fleet (§6.1 as a service).
//!
//! DDT-as-a-service means many campaigns against submitted binaries, which
//! only works if the harness survives its own workers dying. This module is
//! the supervisor/worker engine behind `ddt serve`:
//!
//! - the supervisor **bootstraps** the frontier in-process (a short serial
//!   exploration) until there are enough pending states to shard,
//! - each frontier state becomes a **lease**: a [`FrontierRecord`] decision
//!   prefix granted to a worker, tracked with an attempt count and a
//!   progress deadline,
//! - workers replay their leased prefix (the checkpoint-resume machinery)
//!   and explore the subtree to exhaustion, heartbeating progress counters,
//! - the **watchdog** detects crashed workers (closed pipe) and hung
//!   workers (heartbeats stop, or arrive with frozen counters) and kills
//!   them; their active lease is reassigned with exponential backoff, and
//!   innocent queued leases re-enter the pending pool unpenalized,
//! - a lease that keeps killing workers is **quarantined** — written to the
//!   trace store as a `DDTQ` record for offline reproduction — rather than
//!   retried forever or allowed to abort the campaign,
//! - results merge additively ([`ExploreStats::merge_add`],
//!   [`Coverage::absorb`], keyed bug-map union) in ascending shard order,
//!   so the final report matches a single-process run of the same seed
//!   regardless of which workers died when. Fork sites fire on
//!   machine-local state only (the replay invariant), so the explored path
//!   census is schedule-independent — that is the property the chaos
//!   harness checks end to end.
//!
//! The engine is transport-agnostic: the CLI launches `ddt worker`
//! subprocesses over stdin/stdout pipes, unit tests launch worker threads
//! over in-memory pipes. Both speak [`FleetFrame`]s.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ddt_isa::analysis::{self, CodeAnalysis};
use ddt_kernel::loader::StackLayout;
use ddt_kernel::state::DEVICE_MMIO_BASE;
use ddt_solver::Solver;
use ddt_trace::{
    encode_frame, encode_quarantine, read_frame, CoverageRecord, FleetFrame, FrontierRecord,
    QuarantineRecord, FLEET_VERSION,
};
use serde::Serialize;

use crate::checkpoint::frontier_record;
use crate::coverage::Coverage;
use crate::exerciser::{Ddt, DriverUnderTest, QuantumSinks};
use crate::hardware::DdtEnv;
use crate::report::{Bug, BugClass, ExploreStats, Report, RunHealth};
use crate::search::{PruneSet, Strategy};

/// Fleet supervisor configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker processes to keep running.
    pub workers: usize,
    /// Progress deadline per lease: a worker whose heartbeats stop — or
    /// keep arriving with frozen instruction/quantum counters — for this
    /// long is declared hung and killed. This is a *progress* timeout, not
    /// a completion deadline: legitimate shards may run arbitrarily long
    /// as long as they keep executing.
    pub lease_timeout_ms: u64,
    /// Lease attempts before a shard is quarantined instead of retried.
    pub max_retries: u32,
    /// Worker heartbeat cadence.
    pub heartbeat_ms: u64,
    /// Live status JSON, refreshed atomically (tmp → rename) for
    /// dashboards.
    pub status_file: Option<PathBuf>,
    /// Chaos harness: the supervisor itself SIGKILLs this many workers
    /// mid-campaign (after at least one shard has completed, with at least
    /// two workers alive). Used by the chaos CI job; 0 in production.
    pub chaos_kills: u32,
    /// Bootstrap until the frontier holds `workers * shard_factor` states.
    pub shard_factor: usize,
    /// Replacement workers spawned over the campaign before the fleet is
    /// allowed to just shrink.
    pub max_respawns: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            lease_timeout_ms: 10_000,
            max_retries: 3,
            heartbeat_ms: 250,
            status_file: None,
            chaos_kills: 0,
            shard_factor: 4,
            max_respawns: 8,
        }
    }
}

/// Base reassignment backoff; doubles per failed attempt, capped at 5 s.
const BACKOFF_BASE_MS: u64 = 100;
/// Shards granted to a worker ahead of need (pipeline depth).
const TARGET_QUEUE: usize = 2;
/// Control frames are drained and heartbeats considered every this many
/// quanta inside a worker's shard loop.
const WORKER_CONTROL_STRIDE: u64 = 8;

/// What a launcher delivers to the supervisor's event loop.
#[derive(Debug)]
pub enum FleetEvent {
    /// A protocol frame from a worker.
    Frame(u64, FleetFrame),
    /// The worker's output closed: clean EOF (`None`) or an error
    /// description (torn frame, checksum mismatch, read failure).
    Closed(u64, Option<String>),
}

/// A live worker the supervisor can talk to and kill.
pub trait WorkerHandle {
    /// Sends one frame to the worker (its control input).
    fn send(&mut self, frame: &FleetFrame) -> io::Result<()>;
    /// Hard-kills the worker (SIGKILL for processes). Must be safe to call
    /// more than once and on already-dead workers.
    fn kill(&mut self);
}

/// Spawns workers. The launcher owns transport: it must arrange for every
/// frame the worker writes to arrive on `events` (see [`pump_frames`]),
/// followed by exactly one [`FleetEvent::Closed`].
pub trait WorkerLauncher {
    /// Spawns worker `worker` and wires its output into `events`.
    fn spawn(
        &mut self,
        worker: u64,
        events: mpsc::Sender<FleetEvent>,
    ) -> io::Result<Box<dyn WorkerHandle>>;
}

/// Reads frames from a worker's output stream and forwards them to the
/// supervisor's event channel until EOF or a framing error; emits the final
/// [`FleetEvent::Closed`]. Launchers run this on a dedicated thread per
/// worker.
pub fn pump_frames(worker: u64, mut output: impl Read, events: mpsc::Sender<FleetEvent>) {
    loop {
        match read_frame(&mut output) {
            Ok(Some(frame)) => {
                if events.send(FleetEvent::Frame(worker, frame)).is_err() {
                    return; // Supervisor gone; nothing left to report to.
                }
            }
            Ok(None) => {
                let _ = events.send(FleetEvent::Closed(worker, None));
                return;
            }
            Err(e) => {
                let _ = events.send(FleetEvent::Closed(worker, Some(e.to_string())));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker engine
// ---------------------------------------------------------------------------

/// Worker-side options. The test hooks simulate the failure modes the
/// supervisor must survive without needing a cooperating OS: an abrupt
/// crash (process death), a hang (silent worker), and a deterministic
/// per-shard failure (poisoned lease).
#[derive(Clone, Default)]
pub struct WorkerOpts {
    /// This worker's id (echoed in `Hello`).
    pub worker_id: u64,
    /// Heartbeat cadence in milliseconds (0 → 250).
    pub heartbeat_ms: u64,
    /// Test hook: exit abruptly (no `Shutdown`, simulating SIGKILL) after
    /// completing this many shards.
    pub die_after_shards: Option<u64>,
    /// Test hook: report every attempt of this shard as failed.
    pub fail_shard: Option<u64>,
    /// Test hook: go silent (no heartbeats, no progress) as soon as any
    /// shard is granted — a hung worker for the watchdog to catch.
    pub hang_on_first_shard: bool,
}

/// Snapshot of the cumulative solver counters, used to compute exact
/// per-shard deltas from a worker's long-lived solver.
fn solver_tuple(solver: &Solver) -> [u64; 18] {
    let s = solver.stats();
    [
        s.queries,
        s.fast_path_hits,
        s.full_solves,
        s.cache_hits,
        s.cache_model_reuse,
        s.cache_unsat_subset,
        s.sliced_queries,
        s.slice_components,
        s.session_probes,
        s.session_resets,
        s.batch_flushes,
        s.batched_verdicts,
        s.batch_witness_hits,
        s.portfolio_races,
        s.portfolio_session_wins,
        s.portfolio_fresh_wins,
        s.portfolio_probe_wins,
        s.rewrite_reductions,
    ]
}

fn apply_solver_delta(stats: &mut ExploreStats, before: [u64; 18], after: [u64; 18]) {
    stats.solver_queries += after[0] - before[0];
    stats.solver_fast_hits += after[1] - before[1];
    stats.solver_full += after[2] - before[2];
    stats.solver_cache_hits += after[3] - before[3];
    stats.solver_model_reuse += after[4] - before[4];
    stats.solver_unsat_subset += after[5] - before[5];
    stats.solver_sliced += after[6] - before[6];
    stats.solver_slice_components += after[7] - before[7];
    stats.solver_session_probes += after[8] - before[8];
    stats.solver_session_resets += after[9] - before[9];
    stats.solver_batch_flushes += after[10] - before[10];
    stats.solver_batched_verdicts += after[11] - before[11];
    stats.solver_batch_witness_hits += after[12] - before[12];
    stats.solver_portfolio_races += after[13] - before[13];
    stats.solver_portfolio_session_wins += after[14] - before[14];
    stats.solver_portfolio_fresh_wins += after[15] - before[15];
    stats.solver_portfolio_probe_wins += after[16] - before[16];
    stats.solver_rewrite_reductions += after[17] - before[17];
}

/// Runs the worker side of the fleet protocol: `Hello`, then a loop of
/// lease grants — replay the prefix, explore the subtree to exhaustion,
/// report the shard's additive deltas — with heartbeats in between.
/// Returns when the supervisor sends `Shutdown` or closes the pipe.
pub fn run_worker<R, W>(
    ddt: &Ddt,
    dut: &DriverUnderTest,
    input: R,
    mut output: W,
    opts: WorkerOpts,
) -> io::Result<()>
where
    R: Read + Send + 'static,
    W: Write,
{
    let heartbeat = Duration::from_millis(if opts.heartbeat_ms == 0 { 250 } else { opts.heartbeat_ms });
    let send = |w: &mut W, f: &FleetFrame| -> io::Result<()> {
        w.write_all(&encode_frame(f))?;
        w.flush()
    };
    send(
        &mut output,
        &FleetFrame::Hello {
            worker: opts.worker_id,
            pid: std::process::id() as u64,
            version: FLEET_VERSION,
            config_fp: ddt.config.fingerprint(),
            driver: dut.image.name.clone(),
        },
    )?;

    // Control frames arrive on a reader thread so the explore loop only
    // ever does non-blocking drains.
    let (ctl_tx, ctl) = mpsc::channel::<FleetFrame>();
    std::thread::spawn(move || {
        let mut input = input;
        while let Ok(Some(frame)) = read_frame(&mut input) {
            if ctl_tx.send(frame).is_err() {
                return;
            }
        }
        // EOF/error: dropping the sender tells the main loop to exit.
    });

    let analysis = analysis::analyze(&dut.image);
    let run_cache = ddt.config.run_cache();
    let mut solver = ddt.config.solver_for(&run_cache);
    let stack = StackLayout::default();
    let mut env = DdtEnv::new(
        DEVICE_MMIO_BASE,
        dut.descriptor.mmio_len,
        stack.base,
        stack.initial_sp(),
    );
    env.check_memory = ddt.config.check_memory;

    let mut st = WorkerState {
        queue: VecDeque::new(),
        shutdown: false,
        disconnected: false,
        insns: 0,
        quanta: 0,
        done: 0,
        covered: BTreeSet::new(),
        blocks_reported: 0,
        last_heartbeat: Instant::now(),
    };

    loop {
        st.drain_control(&ctl, &mut output, &send)?;
        if st.disconnected || (st.shutdown && st.queue.is_empty()) {
            return Ok(());
        }
        let Some((shard, attempt, rec)) = st.queue.pop_front() else {
            // Idle: block briefly for control, keep heartbeating.
            match ctl.recv_timeout(heartbeat) {
                Ok(frame) => st.on_control(frame, &mut output, &send)?,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    st.maybe_heartbeat(&mut output, &send, heartbeat, None, true)?;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
            }
            continue;
        };
        if opts.hang_on_first_shard {
            // A hung worker: holds the lease, says nothing, makes no
            // progress. Only the supervisor's watchdog can end this.
            loop {
                std::thread::sleep(Duration::from_millis(500));
            }
        }
        if opts.fail_shard == Some(shard) {
            send(&mut output, &FleetFrame::ShardFailed {
                shard,
                attempt,
                why: "induced deterministic failure (test hook)".into(),
            })?;
            continue;
        }
        let solver_before = solver_tuple(&solver);
        let outcome = explore_shard(ddt, dut, &analysis, &mut env, &mut solver, &rec, shard, &mut st, &ctl, &mut output, &send, heartbeat)?;
        match outcome {
            ShardOutcome::Done(mut stats, bugs, coverage) => {
                apply_solver_delta(&mut stats, solver_before, solver_tuple(&solver));
                let mut bug_list: Vec<&Bug> = bugs.values().collect();
                bug_list.sort_by(|a, b| a.key.cmp(&b.key));
                send(&mut output, &FleetFrame::ShardDone {
                    shard,
                    attempt,
                    stats_json: serde_json::to_vec(&stats).expect("stats serialize"),
                    bugs_json: serde_json::to_vec(&bug_list).expect("bugs serialize"),
                    coverage,
                })?;
                st.done += 1;
                if opts.die_after_shards == Some(st.done) {
                    return Ok(()); // Abrupt exit: simulated crash.
                }
            }
            ShardOutcome::Failed(why) => {
                send(&mut output, &FleetFrame::ShardFailed { shard, attempt, why })?;
            }
        }
    }
}

struct WorkerState {
    queue: VecDeque<(u64, u32, FrontierRecord)>,
    shutdown: bool,
    disconnected: bool,
    insns: u64,
    quanta: u64,
    done: u64,
    covered: BTreeSet<u32>,
    blocks_reported: u64,
    last_heartbeat: Instant,
}

impl WorkerState {
    fn drain_control<W: Write>(
        &mut self,
        ctl: &mpsc::Receiver<FleetFrame>,
        output: &mut W,
        send: &impl Fn(&mut W, &FleetFrame) -> io::Result<()>,
    ) -> io::Result<()> {
        loop {
            match ctl.try_recv() {
                Ok(frame) => self.on_control(frame, output, send)?,
                Err(mpsc::TryRecvError::Empty) => return Ok(()),
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    return Ok(());
                }
            }
        }
    }

    fn on_control<W: Write>(
        &mut self,
        frame: FleetFrame,
        output: &mut W,
        send: &impl Fn(&mut W, &FleetFrame) -> io::Result<()>,
    ) -> io::Result<()> {
        match frame {
            FleetFrame::Grant { shard, attempt, record } => {
                self.queue.push_back((shard, attempt, record));
            }
            FleetFrame::Steal { max } => {
                // Yield from the back: the front is next to run locally.
                let n = (max as usize).min(self.queue.len());
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    if let Some((shard, _, _)) = self.queue.pop_back() {
                        shards.push(shard);
                    }
                }
                shards.reverse(); // Queue order, oldest first.
                send(output, &FleetFrame::Yielded { shards })?;
            }
            FleetFrame::Shutdown => self.shutdown = true,
            _ => {} // Worker-bound protocol only has the three above.
        }
        Ok(())
    }

    fn maybe_heartbeat<W: Write>(
        &mut self,
        output: &mut W,
        send: &impl Fn(&mut W, &FleetFrame) -> io::Result<()>,
        heartbeat: Duration,
        active: Option<u64>,
        force: bool,
    ) -> io::Result<()> {
        if !force && self.last_heartbeat.elapsed() < heartbeat {
            return Ok(());
        }
        self.last_heartbeat = Instant::now();
        let covered = self.covered.len() as u64;
        let new_blocks = covered - self.blocks_reported;
        self.blocks_reported = covered;
        send(output, &FleetFrame::Heartbeat {
            insns: self.insns,
            quanta: self.quanta,
            active,
            queued: self.queue.len() as u64,
            done: self.done,
            new_blocks,
        })
    }
}

#[allow(clippy::large_enum_variant)] // One per shard attempt, short-lived.
enum ShardOutcome {
    Done(ExploreStats, HashMap<String, Bug>, CoverageRecord),
    Failed(String),
}

/// Replays one leased prefix and explores its subtree to exhaustion,
/// heartbeating and draining control between quanta. All counters are
/// shard-local deltas; the prefix replay itself goes to scratch sinks (its
/// work was already accounted when the bootstrap originally executed it),
/// but each replayed quantum still bumps the worker's `quanta` heartbeat
/// counter: a deep prefix can legitimately take longer than the lease
/// timeout to replay, and the supervisor's watchdog must see that as
/// progress, not a hang. `insns` stays exploration-only so the
/// supervisor's live budget estimate never double-counts replayed work.
#[allow(clippy::too_many_arguments)]
fn explore_shard<W: Write>(
    ddt: &Ddt,
    dut: &DriverUnderTest,
    analysis: &CodeAnalysis,
    env: &mut DdtEnv,
    solver: &mut Solver,
    rec: &FrontierRecord,
    shard: u64,
    st: &mut WorkerState,
    ctl: &mpsc::Receiver<FleetFrame>,
    output: &mut W,
    send: &impl Fn(&mut W, &FleetFrame) -> io::Result<()>,
    heartbeat: Duration,
) -> io::Result<ShardOutcome> {
    let replayed = {
        let mut hb_err: Option<io::Error> = None;
        let st = &mut *st;
        let mut on_quantum = |_steps: u64| {
            st.quanta += 1;
            if hb_err.is_none() {
                if let Err(e) = st.maybe_heartbeat(output, send, heartbeat, Some(shard), false) {
                    hb_err = Some(e);
                }
            }
        };
        let replayed = ddt.replay_prefix_observed(dut, rec, env, solver, &mut on_quantum);
        if let Some(e) = hb_err {
            return Err(e);
        }
        replayed
    };
    let root = match replayed {
        Ok(m) => m,
        Err(why) => return Ok(ShardOutcome::Failed(format!("prefix replay: {why}"))),
    };
    let mut worklist = vec![root];
    // Shard-disjoint id space; ids only label forks, uniqueness is enough.
    let mut next_id: u64 = (shard + 1) << 32;
    let mut stats = ExploreStats::default();
    let mut bugs: HashMap<String, Bug> = HashMap::new();
    let mut hits: HashMap<u32, u64> = HashMap::new();
    let mut covered: BTreeSet<u32> = BTreeSet::new();
    let mut since_control: u64 = 0;
    // Guided strategies rank against a shard-local coverage census (the
    // supervisor's merged view is not visible from here); Fifo keeps the
    // historic LIFO pop. Pruning is likewise shard-local.
    let mut guided = (!matches!(ddt.config.strategy, Strategy::Fifo)).then(|| {
        (
            ddt.config.strategy.runtime(analysis),
            Coverage::new(analysis.clone()),
        )
    });
    let mut prune = ddt.config.prune.then(PruneSet::new);

    loop {
        // Settle deferred obligations before selection — the leased root
        // itself may have been checkpointed mid-obligation (rec.pending), in
        // which case an infeasible verdict retires the whole shard here,
        // before it executes anything.
        Ddt::flush_pending(&mut worklist, solver, &mut stats);
        let mut m = match &mut guided {
            None => match worklist.pop() {
                Some(m) => m,
                None => break,
            },
            Some((strategy, cov)) => {
                if worklist.is_empty() {
                    break;
                }
                let i = strategy.select(&worklist, cov);
                worklist.swap_remove(i)
            }
        };
        let n_before = worklist.len();
        let covered_before = covered.len();
        let mut exec_pcs = Vec::new();
        let mut new_bug_keys = Vec::new();
        let mut fork_events = Vec::new();
        let survived = catch_unwind(AssertUnwindSafe(|| {
            let mut sinks = QuantumSinks {
                worklist: &mut worklist,
                next_id: &mut next_id,
                stats: &mut stats,
                bugs: &mut bugs,
                exec_pcs: &mut exec_pcs,
                new_bug_keys: &mut new_bug_keys,
                fork_events: &mut fork_events,
                replay: None,
            };
            ddt.run_quantum(dut, &mut m, env, solver, &mut sinks)
        }));
        let alive = match survived {
            Ok(end) => end.is_none(),
            Err(_) => {
                stats.panics_caught += 1;
                false
            }
        };
        st.insns += exec_pcs.len() as u64;
        for pc in exec_pcs {
            if analysis.blocks.contains_key(&pc) {
                *hits.entry(pc).or_insert(0) += 1;
                covered.insert(pc);
                st.covered.insert(pc);
            }
            if let Some((_, cov)) = guided.as_mut() {
                cov.on_exec(pc);
            }
        }
        stats.quanta_executed += 1;
        let stamp = stats.quanta_executed;
        let covered_now = covered.len();
        let fresh = (covered_now - covered_before) as u64;
        if fresh > 0 {
            stats.quanta_to_last_cover = stamp;
        }
        if stats.quanta_to_first_bug == 0 && !bugs.is_empty() {
            stats.quanta_to_first_bug = stamp;
        }
        m.cov_fresh = fresh;
        m.cov_stamp = stamp;
        for child in worklist[n_before..].iter_mut() {
            child.cov_fresh = fresh;
            child.cov_stamp = stamp;
        }
        if prune.is_some() {
            // Zombies must not deposit fingerprints in the seen-set.
            Ddt::flush_pending(&mut worklist, solver, &mut stats);
        }
        if let Some(p) = prune.as_mut() {
            let mut i = n_before;
            while i < worklist.len() {
                let h = PruneSet::fp_hash(&worklist[i].fingerprint());
                if p.check(h, covered_now as u64) {
                    worklist.swap_remove(i);
                    stats.states_pruned += 1;
                } else {
                    i += 1;
                }
            }
        }
        if alive {
            worklist.push(m);
        }
        stats.peak_states = stats.peak_states.max(worklist.len() + 1);
        st.quanta += 1;
        since_control += 1;
        if since_control >= WORKER_CONTROL_STRIDE {
            since_control = 0;
            st.drain_control(ctl, output, send)?;
            if st.disconnected {
                return Ok(ShardOutcome::Failed("supervisor disconnected".into()));
            }
            st.maybe_heartbeat(output, send, heartbeat, Some(shard), false)?;
        }
    }
    let mut hit_list: Vec<(u32, u64)> = hits.into_iter().collect();
    hit_list.sort_unstable();
    let coverage = CoverageRecord {
        hits: hit_list,
        covered: covered.into_iter().collect(),
        // No timeline: the shard's internal timing is meaningless to the
        // merged campaign clock.
        timeline: Vec::new(),
    };
    Ok(ShardOutcome::Done(stats, bugs, coverage))
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

enum LeaseState {
    /// Waiting for a grant; `not_before` implements reassignment backoff.
    Pending { not_before: Instant },
    /// Granted to a worker.
    Leased { worker: u64, attempt: u32 },
    /// Completed; result buffered for the final fold.
    Done,
    /// Retries exhausted; preserved as a DDTQ record.
    Quarantined,
}

struct Lease {
    record: FrontierRecord,
    attempts: u32,
    state: LeaseState,
    last_error: String,
}

struct WorkerSlot {
    handle: Box<dyn WorkerHandle>,
    alive: bool,
    ready: bool,
    /// Shards granted, oldest (= active) first. Mirrors the worker's FIFO.
    granted: VecDeque<u64>,
    last_progress: Instant,
    last_insns: u64,
    last_quanta: u64,
    /// Instructions credited by this worker's accepted `ShardDone` reports.
    /// `last_insns - insns_completed` estimates its in-flight work for the
    /// supervisor's live budget accounting.
    insns_completed: u64,
    /// Most recent states/sec estimate (for the status file).
    rate: f64,
    prev_beat: Option<(Instant, u64)>,
    done: u64,
    steal_pending: bool,
}

#[derive(Serialize)]
struct StatusWorker {
    id: u64,
    alive: bool,
    active: Option<u64>,
    queued: usize,
    done: u64,
    insns: u64,
    states_per_sec: f64,
}

#[derive(Serialize)]
struct StatusFile {
    driver: String,
    elapsed_ms: u64,
    workers: Vec<StatusWorker>,
    shards_total: usize,
    shards_done: usize,
    shards_pending: usize,
    shards_leased: usize,
    shards_quarantined: usize,
    bugs: Vec<String>,
    covered_blocks: usize,
    lifecycle_injected: u64,
    lifecycle_bugs: u64,
}

/// One shard's reported results, buffered until the final fold.
struct ShardResult {
    stats: ExploreStats,
    bugs: Vec<Bug>,
    coverage: CoverageRecord,
}

/// Runs a full fleet campaign: bootstrap, shard, supervise, merge. The
/// returned report matches [`Ddt::test`] on the same driver and
/// configuration (bugs, inputs, coverage, path census) whenever the run
/// completes without budget exhaustion — worker deaths included.
pub fn serve(
    ddt: &Ddt,
    dut: &DriverUnderTest,
    launcher: &mut dyn WorkerLauncher,
    fc: &FleetConfig,
) -> Report {
    let mut sup = Supervisor::bootstrap(ddt, dut, fc);
    if !sup.leases.is_empty() {
        sup.run(launcher);
    }
    sup.finish()
}

struct Supervisor<'a> {
    ddt: &'a Ddt,
    dut: &'a DriverUnderTest,
    fc: &'a FleetConfig,
    coverage: Coverage,
    stats: ExploreStats,
    bugs: HashMap<String, Bug>,
    leases: Vec<Lease>,
    results: BTreeMap<u64, ShardResult>,
    workers: BTreeMap<u64, WorkerSlot>,
    next_worker: u64,
    respawns: u32,
    chaos_left: u32,
    health_extra: RunHealth,
    interrupted: bool,
    /// Which campaign budget ("instruction" / "wall-clock") stopped the
    /// fleet early, if any. The stop is judged from the live estimate
    /// (completed shards plus heartbeat deltas), which can exceed the
    /// budget before the folded stats do — the flag keeps the final
    /// health section truthful about why the run ended.
    budget_stop: Option<&'static str>,
}

impl<'a> Supervisor<'a> {
    /// Serial in-process exploration until the worklist is wide enough to
    /// shard (or the whole exploration finishes first — tiny drivers never
    /// need the fleet).
    fn bootstrap(ddt: &'a Ddt, dut: &'a DriverUnderTest, fc: &'a FleetConfig) -> Supervisor<'a> {
        let target = fc.workers.max(1) * fc.shard_factor.max(1);
        let run_cache = ddt.config.run_cache();
        let mut solver = ddt.config.solver_for(&run_cache);
        let analysis = analysis::analyze(&dut.image);
        let stack = StackLayout::default();
        let mut env = DdtEnv::new(
            DEVICE_MMIO_BASE,
            dut.descriptor.mmio_len,
            stack.base,
            stack.initial_sp(),
        );
        env.check_memory = ddt.config.check_memory;
        // Guided strategies need the runtime built while `analysis` is still
        // ours; Fifo keeps the historic full cold-block scan below.
        let strategy_rt = (!matches!(ddt.config.strategy, Strategy::Fifo))
            .then(|| ddt.config.strategy.runtime(&analysis));
        let mut prune = ddt.config.prune.then(PruneSet::new);
        let mut coverage = Coverage::new(analysis);
        let root = ddt.make_root_machine(dut);
        let mut stats = ExploreStats {
            symbols: root.st.counter.allocated(),
            paths_started: 1,
            ..Default::default()
        };
        let mut bugs: HashMap<String, Bug> = HashMap::new();
        let mut next_id: u64 = 1;
        let mut worklist = vec![root];
        let mut interrupted = false;
        let solver_before = solver_tuple(&solver);
        while !worklist.is_empty() && worklist.len() < target {
            if ddt.config.stop_requested() {
                interrupted = true;
                break;
            }
            if stats.insns > ddt.config.max_total_insns
                || coverage.elapsed_ms() > ddt.config.time_budget_ms
            {
                break;
            }
            // Settle deferred branch-feasibility obligations before
            // selection, exactly like the serial explorer's loop-top flush.
            Ddt::flush_pending(&mut worklist, &mut solver, &mut stats);
            if worklist.is_empty() {
                break; // The flush retired the whole worklist.
            }
            // Same cold-block selection as the serial explorer; the census
            // is order-independent, this just keeps bootstrap efficient.
            // Guided strategies supply their own selector instead.
            let best = match &strategy_rt {
                Some(s) => s.select(&worklist, &coverage),
                None => worklist
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, m)| coverage.priority(m.st.cpu.pc))
                    .map(|(i, _)| i)
                    .expect("worklist non-empty"),
            };
            let mut m = worklist.swap_remove(best);
            let n_before = worklist.len();
            let covered_before = coverage.covered_blocks();
            let mut exec_pcs = Vec::new();
            let mut new_bug_keys = Vec::new();
            let mut fork_events = Vec::new();
            let survived = catch_unwind(AssertUnwindSafe(|| {
                let mut sinks = QuantumSinks {
                    worklist: &mut worklist,
                    next_id: &mut next_id,
                    stats: &mut stats,
                    bugs: &mut bugs,
                    exec_pcs: &mut exec_pcs,
                    new_bug_keys: &mut new_bug_keys,
                    fork_events: &mut fork_events,
                    replay: None,
                };
                ddt.run_quantum(dut, &mut m, &mut env, &mut solver, &mut sinks)
            }));
            let alive = match survived {
                Ok(end) => end.is_none(),
                Err(_) => {
                    stats.panics_caught += 1;
                    false
                }
            };
            for pc in exec_pcs {
                coverage.on_exec(pc);
            }
            stats.quanta_executed += 1;
            let stamp = stats.quanta_executed;
            let covered_now = coverage.covered_blocks();
            let fresh = (covered_now - covered_before) as u64;
            if fresh > 0 {
                stats.quanta_to_last_cover = stamp;
            }
            if stats.quanta_to_first_bug == 0 && !bugs.is_empty() {
                stats.quanta_to_first_bug = stamp;
            }
            m.cov_fresh = fresh;
            m.cov_stamp = stamp;
            for child in worklist[n_before..].iter_mut() {
                child.cov_fresh = fresh;
                child.cov_stamp = stamp;
            }
            if prune.is_some() {
                // Zombies must not deposit fingerprints in the seen-set.
                Ddt::flush_pending(&mut worklist, &mut solver, &mut stats);
            }
            if let Some(p) = prune.as_mut() {
                let mut i = n_before;
                while i < worklist.len() {
                    let h = PruneSet::fp_hash(&worklist[i].fingerprint());
                    if p.check(h, covered_now as u64) {
                        worklist.swap_remove(i);
                        stats.states_pruned += 1;
                    } else {
                        i += 1;
                    }
                }
            }
            if alive {
                worklist.push(m);
            }
            stats.peak_states = stats.peak_states.max(worklist.len() + 1);
        }
        apply_solver_delta(&mut stats, solver_before, solver_tuple(&solver));
        stats.cache_evictions = run_cache.as_ref().map_or(0, |c| c.stats().evictions);
        let leases = worklist
            .iter()
            .map(|m| Lease {
                record: frontier_record(m),
                attempts: 0,
                state: LeaseState::Pending { not_before: Instant::now() },
                last_error: String::new(),
            })
            .collect();
        Supervisor {
            ddt,
            dut,
            fc,
            coverage,
            stats,
            bugs,
            leases,
            results: BTreeMap::new(),
            workers: BTreeMap::new(),
            next_worker: 0,
            respawns: 0,
            chaos_left: fc.chaos_kills,
            health_extra: RunHealth::default(),
            interrupted,
            budget_stop: None,
        }
    }

    /// Live campaign-wide instruction estimate: bootstrap work, completed
    /// shards (exact, from their reported stats), and each live worker's
    /// in-flight progress (heartbeat counter minus its completed credit).
    /// Heartbeat `insns` counts exploration only — replayed prefixes bump
    /// `quanta` instead — so nothing here is double-counted.
    fn insns_estimate(&self) -> u64 {
        let done = self.stats.insns
            + self.results.values().map(|r| r.stats.insns).sum::<u64>();
        let in_flight: u64 = self
            .workers
            .values()
            .filter(|s| s.alive)
            .map(|s| s.last_insns.saturating_sub(s.insns_completed))
            .sum();
        done + in_flight
    }

    /// The serial explorer checks its budgets every quantum
    /// (`Ddt::explore`); the fleet checks the same budgets every
    /// supervision tick against the live estimate, so `ddt serve` stops
    /// where `ddt test` would instead of running unbounded.
    fn budget_exceeded(&self) -> Option<&'static str> {
        if self.insns_estimate() > self.ddt.config.max_total_insns {
            Some("instruction")
        } else if self.coverage.elapsed_ms() > self.ddt.config.time_budget_ms {
            Some("wall-clock")
        } else {
            None
        }
    }

    /// Stops the fleet on budget exhaustion: outstanding leases are
    /// abandoned exactly like the serial explorer abandons its worklist
    /// (not quarantined — the shards are healthy, the campaign is over).
    fn stop_on_budget(&mut self, which: &'static str) {
        self.budget_stop = Some(which);
        eprintln!(
            "ddt: fleet: {which} budget exhausted; stopping with {} of {} shard(s) done",
            self.results.len(),
            self.leases.len()
        );
        for slot in self.workers.values_mut() {
            if slot.alive {
                slot.alive = false;
                slot.handle.kill();
            }
        }
    }

    /// The supervision event loop: spawn the fleet, grant leases, watch
    /// progress, survive deaths, until every lease is Done or Quarantined.
    fn run(&mut self, launcher: &mut dyn WorkerLauncher) {
        if let Some(which) = self.budget_exceeded() {
            // The bootstrap alone ate the budget; never spawn the fleet.
            self.stop_on_budget(which);
            return;
        }
        let (events_tx, events) = mpsc::channel::<FleetEvent>();
        for _ in 0..self.fc.workers.max(1) {
            self.spawn_worker(launcher, &events_tx);
        }
        let tick = Duration::from_millis(self.fc.heartbeat_ms.clamp(20, 250));
        let mut last_status: Option<Instant> = None;
        while !self.settled() {
            if self.ddt.config.stop_requested() {
                self.interrupted = true;
                break;
            }
            if let Some(which) = self.budget_exceeded() {
                self.stop_on_budget(which);
                break;
            }
            if self.workers.values().all(|w| !w.alive) {
                // Whole fleet gone and respawning is exhausted: quarantine
                // the stragglers so the campaign still terminates with
                // everything accounted for.
                if !self.try_respawn(launcher, &events_tx) {
                    self.quarantine_outstanding("no workers left");
                    break;
                }
            }
            match events.recv_timeout(tick) {
                Ok(FleetEvent::Frame(w, frame)) => self.on_frame(w, frame, launcher, &events_tx),
                Ok(FleetEvent::Closed(w, why)) => {
                    let why = why.unwrap_or_else(|| "pipe closed".to_string());
                    self.lose_worker(w, &why, launcher, &events_tx);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            self.watchdog(launcher, &events_tx);
            self.grant_pending();
            self.rebalance();
            if last_status.is_none_or(|t| t.elapsed() >= Duration::from_millis(200)) {
                last_status = Some(Instant::now());
                self.write_status();
            }
        }
        for slot in self.workers.values_mut() {
            if slot.alive {
                let _ = slot.handle.send(&FleetFrame::Shutdown);
            }
        }
        self.write_status();
    }

    fn settled(&self) -> bool {
        self.leases
            .iter()
            .all(|l| matches!(l.state, LeaseState::Done | LeaseState::Quarantined))
    }

    fn spawn_worker(&mut self, launcher: &mut dyn WorkerLauncher, events: &mpsc::Sender<FleetEvent>) {
        let id = self.next_worker;
        self.next_worker += 1;
        match launcher.spawn(id, events.clone()) {
            Ok(handle) => {
                self.health_extra.fleet_workers_spawned += 1;
                self.workers.insert(id, WorkerSlot {
                    handle,
                    alive: true,
                    ready: false,
                    granted: VecDeque::new(),
                    last_progress: Instant::now(),
                    last_insns: 0,
                    last_quanta: 0,
                    insns_completed: 0,
                    rate: 0.0,
                    prev_beat: None,
                    done: 0,
                    steal_pending: false,
                });
            }
            Err(e) => eprintln!("ddt: fleet: failed to spawn worker {id}: {e}"),
        }
    }

    fn try_respawn(&mut self, launcher: &mut dyn WorkerLauncher, events: &mpsc::Sender<FleetEvent>) -> bool {
        if self.respawns >= self.fc.max_respawns {
            return false;
        }
        self.respawns += 1;
        eprintln!("ddt: fleet: respawning a replacement worker ({}/{})", self.respawns, self.fc.max_respawns);
        self.spawn_worker(launcher, events);
        self.workers.values().any(|w| w.alive)
    }

    fn on_frame(
        &mut self,
        w: u64,
        frame: FleetFrame,
        launcher: &mut dyn WorkerLauncher,
        events: &mpsc::Sender<FleetEvent>,
    ) {
        match frame {
            FleetFrame::Hello { version, config_fp, driver, .. } => {
                let ok = version == FLEET_VERSION
                    && config_fp == self.ddt.config.fingerprint()
                    && driver == self.dut.image.name;
                if !ok {
                    eprintln!(
                        "ddt: fleet: worker {w} hello mismatch (version {version}, driver {driver}); killing"
                    );
                    self.lose_worker(w, "hello mismatch", launcher, events);
                    return;
                }
                if let Some(slot) = self.workers.get_mut(&w) {
                    slot.ready = true;
                    slot.last_progress = Instant::now();
                }
            }
            FleetFrame::Heartbeat { insns, quanta, .. } => {
                let now = Instant::now();
                if let Some(slot) = self.workers.get_mut(&w) {
                    // Progress = the monotone counters moved. A heartbeat
                    // with frozen counters refreshes nothing: a worker
                    // wedged inside one quantum must still trip the
                    // watchdog even if its heartbeat thread were alive.
                    if insns > slot.last_insns || quanta > slot.last_quanta {
                        slot.last_progress = now;
                    }
                    if let Some((t0, i0)) = slot.prev_beat {
                        let dt = now.duration_since(t0).as_secs_f64();
                        if dt > 0.0 {
                            slot.rate = (insns - i0) as f64 / dt;
                        }
                    }
                    slot.prev_beat = Some((now, insns));
                    slot.last_insns = insns;
                    slot.last_quanta = quanta;
                }
            }
            FleetFrame::ShardDone { shard, attempt, stats_json, bugs_json, coverage } => {
                self.on_shard_done(w, shard, attempt, &stats_json, &bugs_json, coverage);
                self.maybe_chaos_kill(launcher, events);
            }
            FleetFrame::ShardFailed { shard, attempt, why } => {
                if let Some(slot) = self.workers.get_mut(&w) {
                    slot.granted.retain(|&s| s != shard);
                    slot.last_progress = Instant::now();
                }
                let current = self.leases.get(shard as usize).map(|l| match l.state {
                    LeaseState::Leased { worker, attempt: a } => (worker, a),
                    _ => (u64::MAX, 0),
                });
                if current == Some((w, attempt)) {
                    eprintln!("ddt: fleet: worker {w} reports shard {shard} failed: {why}");
                    self.penalize(shard, &why);
                }
            }
            FleetFrame::Yielded { shards } => {
                if let Some(slot) = self.workers.get_mut(&w) {
                    slot.steal_pending = false;
                    for &s in &shards {
                        slot.granted.retain(|&g| g != s);
                    }
                }
                for s in shards {
                    if let Some(l) = self.leases.get_mut(s as usize) {
                        if matches!(l.state, LeaseState::Leased { worker, .. } if worker == w) {
                            l.state = LeaseState::Pending { not_before: Instant::now() };
                            self.health_extra.fleet_shards_stolen += 1;
                        }
                    }
                }
            }
            _ => {} // Grant/Steal/Shutdown never flow worker → supervisor.
        }
    }

    fn on_shard_done(
        &mut self,
        w: u64,
        shard: u64,
        attempt: u32,
        stats_json: &[u8],
        bugs_json: &[u8],
        coverage: CoverageRecord,
    ) {
        if let Some(slot) = self.workers.get_mut(&w) {
            slot.granted.retain(|&s| s != shard);
            slot.done += 1;
            slot.last_progress = Instant::now();
        }
        let Some(lease) = self.leases.get_mut(shard as usize) else { return };
        // Accept the live lease's result, or a completion that raced a
        // reassignment (the work is valid either way); drop duplicates.
        let accept = match lease.state {
            LeaseState::Leased { worker, attempt: a } => worker == w && a == attempt,
            LeaseState::Pending { .. } => true,
            LeaseState::Done | LeaseState::Quarantined => false,
        };
        if !accept {
            return;
        }
        let stats = match serde_json::from_slice::<ExploreStats>(stats_json) {
            Ok(s) => s,
            Err(e) => {
                self.penalize(shard, &format!("undecodable shard stats: {e}"));
                return;
            }
        };
        let bugs = match serde_json::from_slice::<Vec<Bug>>(bugs_json) {
            Ok(b) => b,
            Err(e) => {
                self.penalize(shard, &format!("undecodable shard bugs: {e}"));
                return;
            }
        };
        if let Some(slot) = self.workers.get_mut(&w) {
            // Budget accounting: this shard's instructions move from the
            // worker's in-flight estimate to the exact completed tally.
            slot.insns_completed = slot.insns_completed.saturating_add(stats.insns);
        }
        lease.state = LeaseState::Done;
        self.results.insert(shard, ShardResult { stats, bugs, coverage });
    }

    /// One failed attempt for a shard: exponential backoff, then pending
    /// again — or quarantine once the retry budget is gone.
    fn penalize(&mut self, shard: u64, why: &str) {
        let max_retries = self.fc.max_retries;
        let Some(lease) = self.leases.get_mut(shard as usize) else { return };
        if matches!(lease.state, LeaseState::Done | LeaseState::Quarantined) {
            return;
        }
        lease.attempts += 1;
        lease.last_error = why.to_string();
        if lease.attempts > max_retries {
            lease.state = LeaseState::Quarantined;
            self.health_extra.fleet_shards_quarantined += 1;
            eprintln!(
                "ddt: fleet: shard {shard} quarantined after {} attempts: {why}",
                lease.attempts
            );
            self.write_quarantine(shard);
        } else {
            let backoff = Duration::from_millis(
                (BACKOFF_BASE_MS << (lease.attempts.saturating_sub(1)).min(6)).min(5_000),
            );
            lease.state = LeaseState::Pending { not_before: Instant::now() + backoff };
            self.health_extra.fleet_leases_reassigned += 1;
            eprintln!(
                "ddt: fleet: reassigning shard {shard} (attempt {}, backoff {}ms): {why}",
                lease.attempts + 1,
                backoff.as_millis()
            );
        }
    }

    /// Handles a dead worker (crash, broken pipe, watchdog kill, chaos):
    /// the active lease is penalized, innocent queued leases go back to
    /// pending untouched, and a replacement is spawned while the respawn
    /// budget lasts.
    fn lose_worker(
        &mut self,
        w: u64,
        why: &str,
        launcher: &mut dyn WorkerLauncher,
        events: &mpsc::Sender<FleetEvent>,
    ) {
        let Some(slot) = self.workers.get_mut(&w) else { return };
        if !slot.alive {
            return;
        }
        slot.alive = false;
        slot.handle.kill();
        let granted: Vec<u64> = slot.granted.drain(..).collect();
        self.health_extra.fleet_workers_lost += 1;
        eprintln!("ddt: fleet: worker {w} lost ({why}); {} lease(s) affected", granted.len());
        for (i, shard) in granted.iter().enumerate() {
            let held = matches!(
                self.leases.get(*shard as usize).map(|l| &l.state),
                Some(LeaseState::Leased { worker, .. }) if *worker == w
            );
            if !held {
                continue;
            }
            if i == 0 {
                // The active shard is the suspect: it pays the attempt.
                self.penalize(*shard, why);
            } else {
                // Queued shards never ran; no penalty, no backoff.
                let lease = &mut self.leases[*shard as usize];
                lease.state = LeaseState::Pending { not_before: Instant::now() };
                self.health_extra.fleet_leases_reassigned += 1;
                eprintln!("ddt: fleet: requeueing shard {shard} (was queued on worker {w})");
            }
        }
        let outstanding = !self.settled();
        if outstanding {
            self.try_respawn(launcher, events);
        }
    }

    /// Kills hung workers: no progress (frames missing, or counters
    /// frozen) past the lease timeout. Only workers holding a lease are
    /// judged — an idle worker has nothing to make progress on.
    fn watchdog(&mut self, launcher: &mut dyn WorkerLauncher, events: &mpsc::Sender<FleetEvent>) {
        let timeout = Duration::from_millis(self.fc.lease_timeout_ms.max(1));
        let hung: Vec<u64> = self
            .workers
            .iter()
            .filter(|(_, s)| s.alive && !s.granted.is_empty() && s.last_progress.elapsed() > timeout)
            .map(|(&w, _)| w)
            .collect();
        for w in hung {
            self.lose_worker(w, "hang watchdog: no progress past lease timeout", launcher, events);
        }
    }

    /// Grants pending leases to ready workers with queue room, lowest
    /// shard id first.
    fn grant_pending(&mut self) {
        let now = Instant::now();
        for shard in 0..self.leases.len() {
            let ready_to_grant = matches!(
                self.leases[shard].state,
                LeaseState::Pending { not_before } if not_before <= now
            );
            if !ready_to_grant {
                continue;
            }
            let Some((&w, slot)) = self
                .workers
                .iter_mut()
                .filter(|(_, s)| s.alive && s.ready && s.granted.len() < TARGET_QUEUE)
                .min_by_key(|(&w, s)| (s.granted.len(), w))
            else {
                return; // No capacity anywhere; try again next tick.
            };
            let lease = &mut self.leases[shard];
            let attempt = lease.attempts + 1;
            let frame = FleetFrame::Grant {
                shard: shard as u64,
                attempt,
                record: lease.record.clone(),
            };
            if slot.handle.send(&frame).is_ok() {
                lease.state = LeaseState::Leased { worker: w, attempt };
                slot.granted.push_back(shard as u64);
                // The hang timer starts at grant time. An idle worker's
                // heartbeats carry frozen counters (deliberately: frozen
                // counters must not look like progress), so a worker that
                // sat idle past the lease timeout would otherwise be
                // killed on the next watchdog tick before it could report
                // any progress on the lease it just received.
                slot.last_progress = Instant::now();
            }
            // A failed send means the pipe just died; the Closed event is
            // already in flight and will requeue the lease properly.
        }
    }

    /// Work stealing: when a ready worker sits idle with no pending leases
    /// to grant, pull queued (not yet started) shards back from the most
    /// loaded worker.
    fn rebalance(&mut self) {
        let any_pending = self
            .leases
            .iter()
            .any(|l| matches!(l.state, LeaseState::Pending { .. }));
        if any_pending {
            return; // grant_pending will feed the idle worker directly.
        }
        let idle = self
            .workers
            .values()
            .any(|s| s.alive && s.ready && s.granted.is_empty());
        if !idle {
            return;
        }
        let Some((_, slot)) = self
            .workers
            .iter_mut()
            .filter(|(_, s)| s.alive && s.ready && s.granted.len() > 1 && !s.steal_pending)
            .max_by_key(|(&w, s)| (s.granted.len(), w))
        else {
            return;
        };
        let spare = (slot.granted.len() - 1) as u64;
        if slot.handle.send(&FleetFrame::Steal { max: spare }).is_ok() {
            slot.steal_pending = true;
        }
    }

    /// The chaos harness: deterministically SIGKILL a worker once at least
    /// one shard has completed and the fleet can absorb the loss.
    fn maybe_chaos_kill(&mut self, launcher: &mut dyn WorkerLauncher, events: &mpsc::Sender<FleetEvent>) {
        if self.chaos_left == 0 {
            return;
        }
        let alive: Vec<u64> = self
            .workers
            .iter()
            .filter(|(_, s)| s.alive && s.ready)
            .map(|(&w, _)| w)
            .collect();
        if alive.len() < 2 {
            return;
        }
        // Deterministic victim: rotate by completed-shard count so repeat
        // kills spread across the fleet.
        let victim = alive[(self.results.len() + self.chaos_left as usize) % alive.len()];
        self.chaos_left -= 1;
        eprintln!("ddt: fleet: chaos harness killing worker {victim}");
        self.lose_worker(victim, "chaos kill", launcher, events);
    }

    fn quarantine_outstanding(&mut self, why: &str) {
        for shard in 0..self.leases.len() {
            if !matches!(self.leases[shard].state, LeaseState::Done | LeaseState::Quarantined) {
                let lease = &mut self.leases[shard];
                lease.attempts += 1;
                lease.last_error = why.to_string();
                lease.state = LeaseState::Quarantined;
                self.health_extra.fleet_shards_quarantined += 1;
                eprintln!("ddt: fleet: shard {shard} quarantined: {why}");
                self.write_quarantine(shard as u64);
            }
        }
    }

    /// Persists a quarantined shard next to the trace store so the exact
    /// pathological prefix survives for offline triage.
    fn write_quarantine(&self, shard: u64) {
        let Some(dir) = &self.ddt.config.trace_dir else { return };
        let lease = &self.leases[shard as usize];
        let rec = QuarantineRecord {
            shard,
            driver: self.dut.image.name.clone(),
            config_fp: self.ddt.config.fingerprint(),
            attempts: lease.attempts,
            last_error: lease.last_error.clone(),
            record: lease.record.clone(),
        };
        let qdir = dir.join("quarantine");
        let path = qdir.join(format!("shard-{shard}.ddtq"));
        let tmp = qdir.join(format!("shard-{shard}.tmp"));
        let res = std::fs::create_dir_all(&qdir)
            .and_then(|_| std::fs::write(&tmp, encode_quarantine(&rec)))
            .and_then(|_| std::fs::rename(&tmp, &path));
        if let Err(e) = res {
            eprintln!("ddt: fleet: failed to write quarantine record for shard {shard}: {e}");
        }
    }

    fn write_status(&self) {
        let Some(path) = &self.fc.status_file else { return };
        let mut workers = Vec::new();
        for (&id, s) in &self.workers {
            workers.push(StatusWorker {
                id,
                alive: s.alive,
                active: s.granted.front().copied(),
                queued: s.granted.len().saturating_sub(1),
                done: s.done,
                insns: s.last_insns,
                states_per_sec: s.rate,
            });
        }
        let count = |pat: fn(&LeaseState) -> bool| self.leases.iter().filter(|l| pat(&l.state)).count();
        let status = StatusFile {
            driver: self.dut.image.name.clone(),
            elapsed_ms: self.coverage.elapsed_ms(),
            workers,
            shards_total: self.leases.len(),
            shards_done: count(|s| matches!(s, LeaseState::Done)),
            shards_pending: count(|s| matches!(s, LeaseState::Pending { .. })),
            shards_leased: count(|s| matches!(s, LeaseState::Leased { .. })),
            shards_quarantined: count(|s| matches!(s, LeaseState::Quarantined)),
            bugs: {
                let mut keys: BTreeSet<String> = self.bugs.keys().cloned().collect();
                for r in self.results.values() {
                    keys.extend(r.bugs.iter().map(|b| b.key.clone()));
                }
                keys.into_iter().collect()
            },
            covered_blocks: {
                let mut covered: BTreeSet<u32> =
                    self.coverage.snapshot().1.into_iter().collect();
                for r in self.results.values() {
                    covered.extend(r.coverage.covered.iter().copied());
                }
                covered.len()
            },
            lifecycle_injected: self.stats.faults_lifecycle
                + self.results.values().map(|r| r.stats.faults_lifecycle).sum::<u64>(),
            lifecycle_bugs: {
                let lifecycle = |b: &Bug| b.class == BugClass::LifecycleViolation;
                let mut keys: BTreeSet<String> = self
                    .bugs
                    .values()
                    .filter(|b| lifecycle(b))
                    .map(|b| b.key.clone())
                    .collect();
                for r in self.results.values() {
                    keys.extend(
                        r.bugs.iter().filter(|b| lifecycle(b)).map(|b| b.key.clone()),
                    );
                }
                keys.len() as u64
            },
        };
        let json = match serde_json::to_vec_pretty(&status) {
            Ok(j) => j,
            Err(_) => return,
        };
        let tmp = path.with_extension("tmp");
        let _ = std::fs::write(&tmp, &json).and_then(|_| std::fs::rename(&tmp, path));
    }

    /// Folds buffered shard results into the bootstrap aggregates (in
    /// ascending shard order — the merges are order-independent, the fixed
    /// order just makes runs bit-for-bit comparable) and assembles the
    /// final report exactly like the serial explorer.
    fn finish(mut self) -> Report {
        if self.interrupted {
            eprintln!("ddt: fleet: interrupted; reporting completed shards only");
        }
        for (_, r) in std::mem::take(&mut self.results) {
            self.stats.merge_add(&r.stats);
            self.coverage
                .absorb(r.coverage.hits.iter().copied(), r.coverage.covered.iter().copied());
            for bug in r.bugs {
                match self.bugs.entry(bug.key.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().occurrences += bug.occurrences;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(bug);
                    }
                }
            }
        }
        self.stats.wall_ms = self.coverage.elapsed_ms();
        // Interner counters are a process-global sample, not a fold;
        // workers send zeros, so this overwrite only ever reflects the
        // supervisor process (bootstrap + its own replays).
        self.stats.sample_interner();
        // Folded stats can sit under the budget even when the live
        // estimate stopped the run (an in-flight shard's work dies with
        // its worker); the recorded stop keeps the flags truthful.
        let insn_exhausted = self.stats.insns > self.ddt.config.max_total_insns
            || self.budget_stop == Some("instruction");
        let wall_exhausted = self.stats.wall_ms > self.ddt.config.time_budget_ms
            || self.budget_stop == Some("wall-clock");
        let mut health = RunHealth::from_stats(&self.stats, insn_exhausted, wall_exhausted);
        health.fleet_workers_spawned = self.health_extra.fleet_workers_spawned;
        health.fleet_workers_lost = self.health_extra.fleet_workers_lost;
        health.fleet_leases_reassigned = self.health_extra.fleet_leases_reassigned;
        health.fleet_shards_stolen = self.health_extra.fleet_shards_stolen;
        health.fleet_shards_quarantined = self.health_extra.fleet_shards_quarantined;
        let bug_list = self.ddt.finalize_bugs(std::mem::take(&mut self.bugs), &mut health, self.dut);
        Report {
            driver: self.dut.image.name.clone(),
            bugs: bug_list,
            total_blocks: self.coverage.total_blocks(),
            covered_blocks: self.coverage.covered_blocks(),
            coverage_timeline: self.coverage.timeline().to_vec(),
            stats: self.stats,
            health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exerciser::DdtConfig;
    use ddt_trace::decode_quarantine;

    // ---- In-memory pipes + a thread launcher: the whole fleet protocol
    // ---- without processes, so unit tests can exercise crash/hang/poison
    // ---- recovery deterministically.

    struct PipeReader {
        rx: mpsc::Receiver<Vec<u8>>,
        buf: VecDeque<u8>,
    }

    impl Read for PipeReader {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            while self.buf.is_empty() {
                match self.rx.recv() {
                    Ok(chunk) => self.buf.extend(chunk),
                    Err(_) => return Ok(0), // Writer gone: EOF.
                }
            }
            let n = out.len().min(self.buf.len());
            for slot in out.iter_mut().take(n) {
                *slot = self.buf.pop_front().expect("non-empty");
            }
            Ok(n)
        }
    }

    struct PipeWriter {
        tx: mpsc::Sender<Vec<u8>>,
    }

    impl Write for PipeWriter {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.tx
                .send(data.to_vec())
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"))?;
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    struct ThreadHandle {
        tx: Option<mpsc::Sender<Vec<u8>>>,
    }

    impl WorkerHandle for ThreadHandle {
        fn send(&mut self, frame: &FleetFrame) -> io::Result<()> {
            let closed = || io::Error::new(io::ErrorKind::BrokenPipe, "worker gone");
            let tx = self.tx.as_ref().ok_or_else(closed)?;
            tx.send(encode_frame(frame)).map_err(|_| closed())
        }
        fn kill(&mut self) {
            // Closing the control pipe is the closest a thread gets to
            // SIGKILL; real kills are exercised by the process-level
            // chaos integration test.
            self.tx = None;
        }
    }

    struct ThreadLauncher {
        config: DdtConfig,
        dut: DriverUnderTest,
        opts_for: Box<dyn Fn(u64) -> WorkerOpts>,
    }

    impl WorkerLauncher for ThreadLauncher {
        fn spawn(
            &mut self,
            worker: u64,
            events: mpsc::Sender<FleetEvent>,
        ) -> io::Result<Box<dyn WorkerHandle>> {
            let (ctl_tx, ctl_rx) = mpsc::channel::<Vec<u8>>();
            let (out_tx, out_rx) = mpsc::channel::<Vec<u8>>();
            let ddt = Ddt::new(self.config.clone());
            let dut = self.dut.clone();
            let mut opts = (self.opts_for)(worker);
            opts.worker_id = worker;
            std::thread::spawn(move || {
                let input = PipeReader { rx: ctl_rx, buf: VecDeque::new() };
                let output = PipeWriter { tx: out_tx };
                let _ = run_worker(&ddt, &dut, input, output, opts);
            });
            std::thread::spawn(move || {
                pump_frames(worker, PipeReader { rx: out_rx, buf: VecDeque::new() }, events);
            });
            Ok(Box::new(ThreadHandle { tx: Some(ctl_tx) }))
        }
    }

    fn launcher_for(dut: &DriverUnderTest, opts_for: impl Fn(u64) -> WorkerOpts + 'static) -> ThreadLauncher {
        ThreadLauncher {
            config: DdtConfig::default(),
            dut: dut.clone(),
            opts_for: Box::new(opts_for),
        }
    }

    fn dut(name: &str) -> DriverUnderTest {
        let spec = ddt_drivers::driver_by_name(name).expect("bundled driver");
        DriverUnderTest::from_spec(&spec)
    }

    /// The schedule-independent slice of a report: bugs (keys, classes,
    /// occurrences, inputs), coverage census, and the path census. Solver
    /// and cache counters are excluded — they legitimately depend on which
    /// worker process explored which shard with how warm a cache.
    type Census = (Vec<(String, String, u64)>, usize, usize, [u64; 8]);

    fn census(r: &Report) -> Census {
        let mut bugs: Vec<(String, String, u64)> = r
            .bugs
            .iter()
            .map(|b| (b.key.clone(), b.class.to_string(), b.occurrences))
            .collect();
        bugs.sort();
        (
            bugs,
            r.covered_blocks,
            r.total_blocks,
            [
                r.stats.paths_started,
                r.stats.paths_completed,
                r.stats.paths_faulted,
                r.stats.paths_infeasible,
                r.stats.paths_budget_killed,
                r.stats.paths_step_budget_killed,
                r.stats.insns,
                r.stats.symbols as u64,
            ],
        )
    }

    #[test]
    fn fleet_matches_serial_on_pcnet() {
        let dut = dut("pcnet");
        let ddt = Ddt::default();
        let serial = ddt.test(&dut);
        let status = std::env::temp_dir()
            .join(format!("ddt-fleet-status-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&status);
        let mut launcher = launcher_for(&dut, |_| WorkerOpts::default());
        let fc = FleetConfig {
            workers: 3,
            shard_factor: 3,
            heartbeat_ms: 50,
            status_file: Some(status.clone()),
            ..Default::default()
        };
        let fleet = serve(&ddt, &dut, &mut launcher, &fc);
        assert_eq!(census(&serial), census(&fleet), "fleet must reproduce the serial report");
        assert_eq!(fleet.health.fleet_workers_lost, 0);
        assert_eq!(fleet.health.fleet_shards_quarantined, 0);
        assert!(fleet.health.fleet_workers_spawned >= 3);
        let text = std::fs::read_to_string(&status).expect("status file written");
        assert!(text.contains("\"shards_done\""), "status JSON has the lease table: {text}");
        assert!(text.contains("\"states_per_sec\""), "status JSON has worker rates");
        assert!(
            text.contains("\"lifecycle_injected\"") && text.contains("\"lifecycle_bugs\""),
            "status JSON has the lifecycle counters: {text}"
        );
        let _ = std::fs::remove_file(&status);
    }

    #[test]
    fn fleet_survives_worker_crash() {
        let dut = dut("ensoniq");
        let ddt = Ddt::default();
        let serial = ddt.test(&dut);
        // Worker 0 crashes (abrupt EOF, no Shutdown) after its first
        // completed shard; its queued leases must be reassigned, not lost.
        let mut launcher = launcher_for(&dut, |w| WorkerOpts {
            die_after_shards: (w == 0).then_some(1),
            ..Default::default()
        });
        let fc = FleetConfig {
            workers: 2,
            shard_factor: 3,
            heartbeat_ms: 50,
            ..Default::default()
        };
        let fleet = serve(&ddt, &dut, &mut launcher, &fc);
        assert_eq!(census(&serial), census(&fleet), "crash recovery must not change the report");
        assert!(fleet.health.fleet_workers_lost >= 1, "the crash was observed");
        assert_eq!(fleet.health.fleet_shards_quarantined, 0);
        assert!(!fleet.health.pristine());
    }

    #[test]
    fn fleet_hang_watchdog_reassigns_leases() {
        let dut = dut("ensoniq");
        let ddt = Ddt::default();
        let serial = ddt.test(&dut);
        // Worker 0 goes silent the moment it holds a lease. Only the
        // progress watchdog can recover those shards.
        let mut launcher = launcher_for(&dut, |w| WorkerOpts {
            hang_on_first_shard: w == 0,
            ..Default::default()
        });
        let fc = FleetConfig {
            workers: 2,
            shard_factor: 3,
            heartbeat_ms: 50,
            lease_timeout_ms: 400,
            ..Default::default()
        };
        let fleet = serve(&ddt, &dut, &mut launcher, &fc);
        assert_eq!(census(&serial), census(&fleet), "hang recovery must not change the report");
        assert!(fleet.health.fleet_workers_lost >= 1, "the hang was detected");
        assert!(fleet.health.fleet_leases_reassigned >= 1, "leases were reassigned");
        assert_eq!(fleet.health.fleet_shards_quarantined, 0);
    }

    #[test]
    fn fleet_stops_when_bootstrap_exhausts_budget() {
        let dut = dut("ensoniq");
        let mut ddt = Ddt::default();
        // A budget the bootstrap alone exhausts: the fleet must stop
        // before spawning a single worker, and the report must say why.
        ddt.config.max_total_insns = 1;
        let mut launcher = ThreadLauncher {
            config: ddt.config.clone(),
            dut: dut.clone(),
            opts_for: Box::new(|_| WorkerOpts::default()),
        };
        let fc = FleetConfig {
            workers: 2,
            shard_factor: 3,
            heartbeat_ms: 50,
            ..Default::default()
        };
        let fleet = serve(&ddt, &dut, &mut launcher, &fc);
        assert!(fleet.health.insn_budget_exhausted, "budget stop must be reported");
        assert_eq!(
            fleet.health.fleet_workers_spawned, 0,
            "a budget-dead campaign must not spawn a fleet"
        );
        assert_eq!(
            fleet.health.fleet_shards_quarantined, 0,
            "budget exhaustion is not a shard fault"
        );
    }

    #[test]
    fn fleet_enforces_instruction_budget_mid_campaign() {
        let dut = dut("ensoniq");
        let serial_insns = Ddt::default().test(&dut).stats.insns;
        let mut ddt = Ddt::default();
        // Half the campaign's instructions: wherever the supervisor is
        // when the live estimate crosses the line (granting, draining,
        // folding), `ddt serve` must stop like `ddt test` would instead
        // of exploring every shard to exhaustion.
        ddt.config.max_total_insns = serial_insns / 2;
        let mut launcher = ThreadLauncher {
            config: ddt.config.clone(),
            dut: dut.clone(),
            opts_for: Box::new(|_| WorkerOpts::default()),
        };
        let fc = FleetConfig {
            workers: 2,
            shard_factor: 2,
            heartbeat_ms: 20,
            ..Default::default()
        };
        let fleet = serve(&ddt, &dut, &mut launcher, &fc);
        assert!(fleet.health.insn_budget_exhausted, "budget stop must be reported");
        assert_eq!(
            fleet.health.fleet_shards_quarantined, 0,
            "abandoned shards are dropped like a serial worklist, not quarantined"
        );
    }

    #[test]
    fn fleet_quarantines_poisoned_shard() {
        let dut = dut("ensoniq");
        let trace_dir = std::env::temp_dir()
            .join(format!("ddt-fleet-quarantine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&trace_dir);
        let mut ddt = Ddt::default();
        ddt.config.trace_dir = Some(trace_dir.clone());
        // A single worker that deterministically fails shard 0: every
        // retry fails too, so the lease must end up quarantined on disk
        // while the rest of the campaign completes.
        let mut launcher = ThreadLauncher {
            config: ddt.config.clone(),
            dut: dut.clone(),
            opts_for: Box::new(|_| WorkerOpts { fail_shard: Some(0), ..Default::default() }),
        };
        let fc = FleetConfig {
            workers: 1,
            shard_factor: 4,
            heartbeat_ms: 50,
            max_retries: 1,
            ..Default::default()
        };
        let fleet = serve(&ddt, &dut, &mut launcher, &fc);
        assert_eq!(fleet.health.fleet_shards_quarantined, 1, "shard 0 was quarantined");
        let qpath = trace_dir.join("quarantine").join("shard-0.ddtq");
        let bytes = std::fs::read(&qpath).expect("quarantine record written");
        let q = decode_quarantine(&bytes).expect("quarantine record decodes");
        assert_eq!(q.shard, 0);
        assert_eq!(q.driver, "ensoniq");
        assert_eq!(q.attempts, 2, "initial attempt + one retry");
        assert!(q.last_error.contains("induced deterministic failure"));
        assert!(!fleet.health.pristine(), "a quarantined shard is reported degradation");
        let _ = std::fs::remove_dir_all(&trace_dir);
    }
}
