//! Bitvector constraint solver for DDT path conditions.
//!
//! This crate is the decision-procedure substrate standing in for the STP
//! solver used by Klee in the original DDT (DESIGN.md §2). It decides
//! satisfiability of conjunctions of 1-bit [`Expr`] constraints and extracts
//! concrete models ([`Assignment`]) used for:
//!
//! - branch feasibility during symbolic exploration,
//! - on-demand concretization of symbolic arguments at kernel calls (§3.2),
//! - deriving the concrete bug-triggering inputs recorded in traces (§3.5).
//!
//! The pipeline is: cheap model guessing (zero / small / all-ones candidate
//! assignments evaluated directly) → Tseitin bit-blasting ([`blast`]) → CDCL
//! SAT ([`sat`]). The procedure is complete for the supported widths: every
//! query gets a definite Sat/Unsat answer.
//!
//! # Examples
//!
//! ```
//! use ddt_expr::{Expr, SymId};
//! use ddt_solver::{SatResult, Solver};
//!
//! let x = Expr::sym(SymId(0), 32);
//! let c = x.mul(&Expr::constant(3, 32)).eq(&Expr::constant(21, 32));
//! let mut solver = Solver::new();
//! match solver.check(&[c]) {
//!     SatResult::Sat(model) => assert_eq!(model.get_or_zero(SymId(0)) & 0xffff_ffff, 7),
//!     SatResult::Unsat => panic!("7 * 3 == 21"),
//! }
//! ```

pub mod blast;
pub mod sat;

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use ddt_expr::{
    collect_syms, //
    Assignment,
    Expr,
    SymId,
};

use crate::blast::Blaster;
use crate::sat::{SatOutcome, SatSolver};

/// Outcome of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model assigning every symbol in the query.
    Sat(Assignment),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Returns true if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Returns the model, if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

/// Statistics for solver queries (exposed for the §5.2 scalability bench).
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Total queries issued.
    pub queries: u64,
    /// Queries answered by the cheap guessing fast path.
    pub fast_path_hits: u64,
    /// Queries answered from the query cache.
    pub cache_hits: u64,
    /// Queries that required bit-blasting and CDCL.
    pub full_solves: u64,
    /// Total SAT conflicts across full solves.
    pub sat_conflicts: u64,
}

/// The bitvector solver.
///
/// Each `check` builds a fresh SAT instance (queries in DDT are over
/// ever-changing path constraint sets, so incrementality buys little and a
/// fresh instance keeps learned clauses from leaking between unrelated
/// paths), but results are memoized: sibling paths in an exploration share
/// long constraint prefixes, so the same conjunctions recur constantly.
#[derive(Default)]
pub struct Solver {
    stats: SolverStats,
    /// Query cache: canonicalized constraint set → result. Keys compare by
    /// full expression equality, so hash collisions cannot corrupt answers.
    cache: HashMap<Vec<Expr>, SatResult>,
}

/// Cache size bound; the cache is cleared wholesale when it fills (the
/// exploration's locality makes a simple policy adequate).
const CACHE_CAP: usize = 1 << 16;

impl Solver {
    /// Creates a solver.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Canonicalizes a constraint set for cache lookup: sorted by structural
    /// hash (ties keep relative order — equality is still exact).
    fn cache_key(live: &[&Expr]) -> Vec<Expr> {
        let mut key: Vec<Expr> = live.iter().map(|e| (*e).clone()).collect();
        key.sort_by_key(|e| {
            let mut h = DefaultHasher::new();
            e.hash(&mut h);
            h.finish()
        });
        key.dedup();
        key
    }

    /// Decides whether the conjunction of `constraints` is satisfiable.
    ///
    /// Constraints must be 1-bit expressions. On `Sat`, the model assigns
    /// every symbol mentioned in the constraints (unmentioned symbols are
    /// free; callers default them to zero).
    ///
    /// # Panics
    ///
    /// Panics if any constraint is not 1 bit wide.
    pub fn check(&mut self, constraints: &[Expr]) -> SatResult {
        self.stats.queries += 1;
        for c in constraints {
            assert_eq!(c.width(), 1, "constraints must be boolean: {c}");
        }
        // Trivial cases.
        if constraints.iter().any(|c| c.is_false()) {
            return SatResult::Unsat;
        }
        let live: Vec<&Expr> = constraints.iter().filter(|c| !c.is_true()).collect();
        if live.is_empty() {
            return SatResult::Sat(Assignment::new());
        }
        let mut syms = BTreeSet::new();
        for c in &live {
            collect_syms(c, &mut syms);
        }
        // Fast path: try a few cheap candidate assignments.
        for candidate in Self::candidate_models(&syms) {
            if live.iter().all(|c| c.eval_bool(&candidate)) {
                self.stats.fast_path_hits += 1;
                return SatResult::Sat(candidate);
            }
        }
        // Query cache: sibling paths share constraint prefixes.
        let key = Self::cache_key(&live);
        if let Some(hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return hit.clone();
        }
        // Full decision procedure.
        self.stats.full_solves += 1;
        let mut sat = SatSolver::new();
        let mut blaster = Blaster::new(&mut sat);
        for c in &live {
            blaster.assert_true(&mut sat, c);
        }
        let result = match sat.solve() {
            SatOutcome::Unsat => {
                self.stats.sat_conflicts += sat.conflicts;
                SatResult::Unsat
            }
            SatOutcome::Sat => {
                self.stats.sat_conflicts += sat.conflicts;
                let mut model = Assignment::new();
                for id in &syms {
                    model.set(*id, blaster.sym_model(&sat, *id).unwrap_or(0));
                }
                // The blaster's internal division symbols are filtered out by
                // only reporting symbols that occur in the input constraints.
                debug_assert!(
                    live.iter().all(|c| c.eval_bool(&model)),
                    "model does not satisfy constraints"
                );
                SatResult::Sat(model)
            }
        };
        if self.cache.len() >= CACHE_CAP {
            self.cache.clear();
        }
        self.cache.insert(key, result.clone());
        result
    }

    fn candidate_models(syms: &BTreeSet<SymId>) -> Vec<Assignment> {
        let mk = |v: u64| -> Assignment { syms.iter().map(|&id| (id, v)).collect() };
        vec![mk(0), mk(1), mk(u64::MAX), mk(4), mk(0x80)]
    }

    /// Returns true if the conjunction is satisfiable.
    pub fn is_feasible(&mut self, constraints: &[Expr]) -> bool {
        self.check(constraints).is_sat()
    }

    /// Returns true if `cond` can be true under `constraints`.
    pub fn may_be_true(&mut self, constraints: &[Expr], cond: &Expr) -> bool {
        let mut cs: Vec<Expr> = constraints.to_vec();
        cs.push(cond.clone());
        self.is_feasible(&cs)
    }

    /// Returns true if `cond` must be true under `constraints` (its negation
    /// is infeasible).
    pub fn must_be_true(&mut self, constraints: &[Expr], cond: &Expr) -> bool {
        let mut cs: Vec<Expr> = constraints.to_vec();
        cs.push(cond.lnot());
        !self.is_feasible(&cs)
    }

    /// Produces a feasible concrete value of `e` under `constraints`, or
    /// `None` if the constraints are unsatisfiable.
    ///
    /// This is the concretization primitive of §3.2: the returned value is a
    /// witness, and the caller records the induced `e == value` constraint.
    pub fn concretize(&mut self, constraints: &[Expr], e: &Expr) -> Option<u64> {
        if let Some(v) = e.as_const() {
            return Some(v);
        }
        match self.check(constraints) {
            SatResult::Unsat => None,
            SatResult::Sat(model) => Some(e.eval(&model)),
        }
    }

    /// Enumerates up to `max` distinct feasible values of `e`, used when DDT
    /// backtracks a concretization and re-issues a kernel call with different
    /// feasible concrete values (§3.2).
    pub fn distinct_values(&mut self, constraints: &[Expr], e: &Expr, max: usize) -> Vec<u64> {
        let mut found = Vec::new();
        let mut cs: Vec<Expr> = constraints.to_vec();
        while found.len() < max {
            match self.check(&cs) {
                SatResult::Unsat => break,
                SatResult::Sat(model) => {
                    let v = e.eval(&model);
                    found.push(v);
                    cs.push(e.ne(&Expr::constant(v, e.width())));
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(id: u32, w: u32) -> Expr {
        Expr::sym(SymId(id), w)
    }

    fn c32(v: u64) -> Expr {
        Expr::constant(v, 32)
    }

    #[test]
    fn empty_is_sat() {
        assert!(Solver::new().check(&[]).is_sat());
    }

    #[test]
    fn trivial_false_is_unsat() {
        assert_eq!(Solver::new().check(&[Expr::false_()]), SatResult::Unsat);
    }

    #[test]
    fn equality_model() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        match s.check(&[x.eq(&c32(42))]) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)), 42),
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn contradictory_range_is_unsat() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        let r = s.check(&[x.ult(&c32(5)), c32(10).ult(&x)]);
        assert_eq!(r, SatResult::Unsat);
    }

    #[test]
    fn arithmetic_inversion() {
        // x + 7 == 3 (wrapping) => x == 0xfffffffc.
        let x = sym(0, 32);
        let mut s = Solver::new();
        match s.check(&[x.add(&c32(7)).eq(&c32(3))]) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)) & 0xffff_ffff, 0xffff_fffc),
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn multiplication_inversion() {
        let x = sym(0, 16);
        let mut s = Solver::new();
        let c = x.mul(&Expr::constant(5, 16)).eq(&Expr::constant(35, 16));
        match s.check(&[c.clone()]) {
            SatResult::Sat(m) => {
                let mut asg = Assignment::new();
                asg.set(SymId(0), m.get_or_zero(SymId(0)));
                assert!(c.eval_bool(&asg));
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn odd_times_two_is_never_one() {
        // 2*x == 1 has no solution mod 2^32.
        let x = sym(0, 32);
        let mut s = Solver::new();
        assert_eq!(s.check(&[x.mul(&c32(2)).eq(&c32(1))]), SatResult::Unsat);
    }

    #[test]
    fn signed_comparison_model() {
        let x = sym(0, 8);
        let mut s = Solver::new();
        // x <s 0 and x >u 0x7f: any negative 8-bit value.
        let cs = [
            x.slt(&Expr::constant(0, 8)), //
            Expr::constant(0x7f, 8).ult(&x),
        ];
        match s.check(&cs) {
            SatResult::Sat(m) => {
                let v = m.get_or_zero(SymId(0)) & 0xff;
                assert!(v >= 0x80, "got {v:#x}");
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn udiv_relation() {
        // x / 3 == 10 => x in [30, 32].
        let x = sym(0, 32);
        let mut s = Solver::new();
        match s.check(&[x.udiv(&c32(3)).eq(&c32(10))]) {
            SatResult::Sat(m) => {
                let v = m.get_or_zero(SymId(0)) & 0xffff_ffff;
                assert!((30..=32).contains(&v), "got {v}");
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn urem_relation() {
        // x % 8 == 5 and x < 16 => x == 5 or 13.
        let x = sym(0, 32);
        let mut s = Solver::new();
        let cs = [x.urem(&c32(8)).eq(&c32(5)), x.ult(&c32(16))];
        match s.check(&cs) {
            SatResult::Sat(m) => {
                let v = m.get_or_zero(SymId(0)) & 0xffff_ffff;
                assert!(v == 5 || v == 13, "got {v}");
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn division_by_zero_semantics() {
        // b == 0 => a udiv b == all-ones.
        let a = sym(0, 32);
        let b = sym(1, 32);
        let mut s = Solver::new();
        let cs = [
            b.eq(&c32(0)), //
            a.udiv(&b).ne(&c32(0xffff_ffff)),
        ];
        assert_eq!(s.check(&cs), SatResult::Unsat);
    }

    #[test]
    fn shift_with_symbolic_amount() {
        // 1 << x == 16 => x == 4.
        let x = sym(0, 32);
        let mut s = Solver::new();
        match s.check(&[c32(1).shl(&x).eq(&c32(16))]) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)) & 0xffff_ffff, 4),
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn oversize_shift_yields_zero() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        // x >= 32 and (1 << x) != 0 is unsat.
        let cs = [
            c32(31).ult(&x), //
            c32(1).shl(&x).ne(&c32(0)),
        ];
        assert_eq!(s.check(&cs), SatResult::Unsat);
    }

    #[test]
    fn must_may_semantics() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        let ctx = [x.ult(&c32(10))];
        assert!(s.must_be_true(&ctx, &x.ult(&c32(11))));
        assert!(s.may_be_true(&ctx, &x.eq(&c32(5))));
        assert!(!s.may_be_true(&ctx, &x.eq(&c32(20))));
        assert!(!s.must_be_true(&ctx, &x.eq(&c32(5))));
    }

    #[test]
    fn concretize_respects_constraints() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        let ctx = [c32(100).ult(&x), x.ult(&c32(105))];
        let v = s.concretize(&ctx, &x).expect("feasible");
        assert!((101..105).contains(&(v & 0xffff_ffff)), "got {v}");
    }

    #[test]
    fn distinct_values_enumerates() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        let ctx = [x.ult(&c32(3))];
        let mut vs = s.distinct_values(&ctx, &x, 10);
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2]);
    }

    #[test]
    fn extract_concat_constraints() {
        // Low byte of x is 0xAB, next byte is 0xCD.
        let x = sym(0, 32);
        let mut s = Solver::new();
        let cs = [
            x.extract(7, 0).eq(&Expr::constant(0xab, 8)),
            x.extract(15, 8).eq(&Expr::constant(0xcd, 8)),
        ];
        match s.check(&cs) {
            SatResult::Sat(m) => {
                assert_eq!(m.get_or_zero(SymId(0)) & 0xffff, 0xcdab);
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn ite_constraints() {
        let x = sym(0, 32);
        let y = sym(1, 32);
        let mut s = Solver::new();
        // if x < 5 then y = 1 else y = 2; y == 2 contradicts x < 4.
        let e = Expr::ite(&x.ult(&c32(5)), &c32(1), &c32(2));
        let cs = [e.eq(&y), y.eq(&c32(2)), x.ult(&c32(4))];
        assert_eq!(s.check(&cs), SatResult::Unsat);
    }

    #[test]
    fn fast_path_hits_counted() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        assert!(s.check(&[x.eq(&c32(0))]).is_sat());
        assert_eq!(s.stats().fast_path_hits, 1);
        assert_eq!(s.stats().full_solves, 0);
    }

    #[test]
    fn sext_constraint() {
        let x = sym(0, 8);
        let mut s = Solver::new();
        // sext(x, 32) == 0xffffff80 => x == 0x80.
        let cs = [x.sext(32).eq(&c32(0xffff_ff80))];
        match s.check(&cs) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)) & 0xff, 0x80),
            SatResult::Unsat => panic!(),
        }
    }
}
