//! Bitvector constraint solver for DDT path conditions.
//!
//! This crate is the decision-procedure substrate standing in for the STP
//! solver used by Klee in the original DDT (DESIGN.md §2). It decides
//! satisfiability of conjunctions of 1-bit [`Expr`] constraints and extracts
//! concrete models ([`Assignment`]) used for:
//!
//! - branch feasibility during symbolic exploration,
//! - on-demand concretization of symbolic arguments at kernel calls (§3.2),
//! - deriving the concrete bug-triggering inputs recorded in traces (§3.5).
//!
//! The pipeline is: cheap model guessing (zero / small / all-ones candidate
//! assignments evaluated directly) → shared [`QueryCache`] (exact
//! memoization, UNSAT subset subsumption, counterexample reuse — see
//! [`cache`]) → independence slicing + incremental session solving for
//! verdict-grade queries (symbol-disjoint components decided separately,
//! on a persistent assumption-based SAT core) → Tseitin bit-blasting
//! ([`blast`]) → CDCL SAT ([`sat`]). The procedure is complete for the
//! supported widths: every query gets a definite Sat/Unsat answer.
//!
//! Full solves always assert constraints in *canonical key order* (sorted,
//! deduplicated), so a solve is a deterministic function of the query set —
//! the property that lets cached and uncached runs produce bit-identical
//! explorations.
//!
//! # Examples
//!
//! ```
//! use ddt_expr::{Expr, SymId};
//! use ddt_solver::{SatResult, Solver};
//!
//! let x = Expr::sym(SymId(0), 32);
//! let c = x.mul(&Expr::constant(3, 32)).eq(&Expr::constant(21, 32));
//! let mut solver = Solver::new();
//! match solver.check(&[c]) {
//!     SatResult::Sat(model) => assert_eq!(model.get_or_zero(SymId(0)) & 0xffff_ffff, 7),
//!     SatResult::Unsat => panic!("7 * 3 == 21"),
//! }
//! ```
//!
//! Workers share one cache by construction:
//!
//! ```
//! use std::sync::Arc;
//! use ddt_solver::{QueryCache, Solver};
//!
//! let cache = Arc::new(QueryCache::new());
//! let worker_a = Solver::with_cache(cache.clone());
//! let worker_b = Solver::with_cache(cache.clone());
//! # let _ = (worker_a, worker_b);
//! ```

pub mod blast;
pub mod cache;
mod portfolio;
pub mod sat;
mod session;

use std::collections::BTreeSet;
use std::sync::Arc;

use ddt_expr::{
    collect_syms, //
    partition_independent,
    Assignment,
    Expr,
    SymId,
};

pub use crate::cache::{CacheAnswer, CacheStats, QueryCache, QueryGrade};

use crate::blast::Blaster;
use crate::sat::{SatOutcome, SatSolver};
use crate::session::{ProbeAnswer, Session};

/// Default portfolio engagement threshold: components whose expression DAG
/// has fewer distinct nodes than this are decided single-lane (a race's
/// thread-spawn cost would dwarf the solve). Sized so only the heavy tail
/// of branch queries races.
const PORTFOLIO_MIN_NODES: usize = 256;

/// Outcome of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model assigning every symbol in the query.
    Sat(Assignment),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Returns true if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Returns the model, if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

/// Statistics for solver queries (exposed for the §5.2 scalability bench).
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Total queries issued.
    pub queries: u64,
    /// Queries answered by the cheap guessing fast path.
    pub fast_path_hits: u64,
    /// Queries answered by exact-key cache memoization.
    pub cache_hits: u64,
    /// `Sat` verdicts proved by reusing a cached counterexample.
    pub cache_model_reuse: u64,
    /// `Unsat` verdicts proved by a cached UNSAT subset.
    pub cache_unsat_subset: u64,
    /// Queries that required bit-blasting and CDCL.
    pub full_solves: u64,
    /// Total SAT conflicts across full solves.
    pub sat_conflicts: u64,
    /// Verdict-grade queries that sliced into more than one independence
    /// component.
    pub sliced_queries: u64,
    /// Total components produced by sliced queries (average components per
    /// sliced query = `slice_components / sliced_queries`).
    pub slice_components: u64,
    /// Queries (or query components) decided on the persistent incremental
    /// session core instead of a fresh blast.
    pub session_probes: u64,
    /// Times the session core was rebuilt (size caps, symbol-width reuse
    /// conflicts, or defensive recovery).
    pub session_resets: u64,
    /// Deferred-obligation batches flushed through [`Solver::solve_obligations`].
    pub batch_flushes: u64,
    /// Branch-feasibility verdicts resolved inside batched flushes.
    pub batched_verdicts: u64,
    /// Batched verdicts proved `Sat` by a sibling obligation's model from
    /// the same flush (witness subsumption — no solver call at all).
    pub batch_witness_hits: u64,
    /// Hard verdict components raced on the solver portfolio.
    pub portfolio_races: u64,
    /// Portfolio races won by the incremental-session lane.
    pub portfolio_session_wins: u64,
    /// Portfolio races won by the fresh-blast lane.
    pub portfolio_fresh_wins: u64,
    /// Portfolio races won by the cached-probe lane.
    pub portfolio_probe_wins: u64,
    /// Expression-DAG nodes eliminated by pre-blast algebraic rewriting.
    pub rewrite_reductions: u64,
}

/// The bitvector solver.
///
/// Model-consuming queries (`check`) build a fresh SAT instance over the
/// canonical key, so their results are pure functions of the query.
/// Verdict-grade queries (`is_feasible` and friends) additionally go
/// through two default-on optimizations, each with an escape hatch:
///
/// - **independence slicing** ([`Self::set_slicing`]): the query partitions
///   into symbol-disjoint components that are decided separately and cached
///   under their own (smaller) keys;
/// - **incremental sessions** ([`Self::set_incremental`]): components are
///   decided on a persistent SAT core via assumption literals, so repeated
///   conjuncts along a deepening path never re-blast and learned clauses
///   accumulate across queries.
///
/// Results are cached in a [`QueryCache`] that may be *shared* across
/// solvers/workers: sibling paths in an exploration share long constraint
/// prefixes, so the same conjunctions — and counterexamples — recur
/// constantly across the whole worker pool, not just within one worker.
pub struct Solver {
    stats: SolverStats,
    /// Shared (or private) query cache; `None` disables caching entirely
    /// (the `--no-query-cache` escape hatch).
    cache: Option<Arc<QueryCache>>,
    /// Independence slicing for verdict-grade queries (`--no-slicing` off
    /// switch). Model-grade queries always run the canonical monolithic
    /// solve, so slicing cannot perturb any model a caller consumes.
    use_slicing: bool,
    /// Incremental session solving for verdict-grade queries
    /// (`--no-incremental` off switch).
    use_incremental: bool,
    /// Algebraic pre-blast rewriting of verdict-grade keys
    /// (`--no-rewrite` off switch).
    use_rewrite: bool,
    /// Racing solver portfolio for hard verdict components
    /// (`--no-portfolio` off switch).
    use_portfolio: bool,
    /// Minimum component DAG size (distinct nodes) before a race is worth
    /// its thread-spawn cost; tests lower it to force engagement.
    portfolio_min_nodes: usize,
    /// The persistent incremental core, created lazily on first use.
    session: Option<Session>,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with a fresh private cache.
    pub fn new() -> Solver {
        Solver::with_cache(Arc::new(QueryCache::new()))
    }

    /// Creates a solver backed by a shared cache handle. All explorer
    /// workers of one run share a single handle.
    pub fn with_cache(cache: Arc<QueryCache>) -> Solver {
        Solver {
            stats: SolverStats::default(),
            cache: Some(cache),
            use_slicing: true,
            use_incremental: true,
            use_rewrite: true,
            use_portfolio: true,
            portfolio_min_nodes: PORTFOLIO_MIN_NODES,
            session: None,
        }
    }

    /// Creates a solver with caching disabled: every non-trivial query runs
    /// the full decision procedure.
    pub fn uncached() -> Solver {
        Solver {
            stats: SolverStats::default(),
            cache: None,
            use_slicing: true,
            use_incremental: true,
            use_rewrite: true,
            use_portfolio: true,
            portfolio_min_nodes: PORTFOLIO_MIN_NODES,
            session: None,
        }
    }

    /// Enables or disables independence slicing of verdict-grade queries
    /// (`--no-slicing` escape hatch; default on). Purely a performance
    /// toggle: verdicts are semantic properties of the query, and
    /// model-consuming queries never take the sliced path.
    pub fn set_slicing(&mut self, on: bool) {
        self.use_slicing = on;
    }

    /// Enables or disables the persistent incremental session for
    /// verdict-grade queries (`--no-incremental` escape hatch; default on).
    pub fn set_incremental(&mut self, on: bool) {
        self.use_incremental = on;
        if !on {
            self.session = None;
        }
    }

    /// Enables or disables algebraic pre-blast rewriting of verdict-grade
    /// keys (`--no-rewrite` escape hatch; default on). Rewriting is
    /// evaluation-preserving (pinned by the `ddt-expr` property suite), so
    /// this is purely a performance toggle: verdicts cannot change.
    pub fn set_rewrite(&mut self, on: bool) {
        self.use_rewrite = on;
    }

    /// Enables or disables the racing solver portfolio for hard verdict
    /// components (`--no-portfolio` escape hatch; default on). Every lane
    /// decides the same semantic property, so whichever lane wins, the
    /// verdict — and therefore the campaign report — is identical.
    pub fn set_portfolio(&mut self, on: bool) {
        self.use_portfolio = on;
    }

    /// Overrides the minimum component DAG size (distinct nodes) at which
    /// the portfolio engages. Tests set 0 to force races on small queries.
    pub fn set_portfolio_min_nodes(&mut self, nodes: usize) {
        self.portfolio_min_nodes = nodes;
    }

    /// Returns accumulated per-solver statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Returns the cache handle, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<QueryCache>> {
        self.cache.as_ref()
    }

    /// Decides whether the conjunction of `constraints` is satisfiable.
    ///
    /// Constraints must be 1-bit expressions. On `Sat`, the model assigns
    /// every symbol mentioned in the constraints (unmentioned symbols are
    /// free; callers default them to zero). The model is a deterministic
    /// function of the constraint *set*: permuting or duplicating
    /// constraints cannot change it, and neither can the cache.
    ///
    /// # Panics
    ///
    /// Panics if any constraint is not 1 bit wide.
    pub fn check(&mut self, constraints: &[Expr]) -> SatResult {
        // Public `check` callers consume the model (concretization, bug
        // inputs), so only bit-deterministic cache shortcuts are allowed.
        self.check_graded(constraints, QueryGrade::Model)
    }

    fn check_graded(&mut self, constraints: &[Expr], grade: QueryGrade) -> SatResult {
        self.stats.queries += 1;
        for c in constraints {
            assert_eq!(c.width(), 1, "constraints must be boolean: {c}");
        }
        // Trivial cases.
        if constraints.iter().any(|c| c.is_false()) {
            return SatResult::Unsat;
        }
        let live: Vec<&Expr> = constraints.iter().filter(|c| !c.is_true()).collect();
        if live.is_empty() {
            return SatResult::Sat(Assignment::new());
        }
        let mut syms = BTreeSet::new();
        for c in &live {
            collect_syms(c, &mut syms);
        }
        // Verdict-grade queries discard the model, so the shared cache may
        // answer them even before the fast path: any remembered
        // counterexample (including past fast-path candidates, deposited
        // below) that satisfies the key proves Sat without a solve. The
        // verdict cannot differ from the uncached path — a witness is a
        // witness — so this reordering stays semantically invisible.
        let mut key: Option<Vec<Expr>> = None;
        let mut looked_up = false;
        if grade == QueryGrade::Verdict && self.cache.is_some() {
            let k = QueryCache::canonical_key(&live);
            match self.cache_lookup(&k, grade) {
                Some(hit) => return hit,
                None => looked_up = true,
            }
            key = Some(k);
        }

        // Fast path: try a few cheap candidate assignments. Order-insensitive
        // and cache-independent, so it cannot perturb cached-vs-uncached
        // equivalence. Winning candidates feed the shared counterexample
        // ring so later verdict queries can reuse them.
        for candidate in Self::candidate_models(&syms) {
            if live.iter().all(|c| c.eval_bool(&candidate)) {
                self.stats.fast_path_hits += 1;
                if let Some(cache) = &self.cache {
                    // Verdict-grade wins go to the protected ring: they are
                    // exactly the models future feasibility checks can
                    // reuse, and must not churn out under full-solve
                    // deposits. Model-grade wins join the general pool.
                    if grade == QueryGrade::Verdict {
                        cache.remember_verdict_model(&candidate);
                    } else {
                        cache.remember_model(&candidate);
                    }
                }
                return SatResult::Sat(candidate);
            }
        }
        // Canonical form: the full solve below asserts constraints in key
        // order even with the cache disabled, so every mode solves the same
        // SAT instance for a given constraint set.
        let key = key.unwrap_or_else(|| QueryCache::canonical_key(&live));
        if !looked_up && self.cache.is_some() {
            if let Some(hit) = self.cache_lookup(&key, grade) {
                return hit;
            }
        }
        // Verdict-grade queries may take the optimized pipeline —
        // independence slicing and/or the persistent incremental session.
        // Both are verdict-sound (Sat/Unsat is a semantic property of the
        // constraint set), and neither ever feeds a non-canonical model into
        // the exact cache map, so model-grade queries behave byte-identically
        // whether or not the optimizations are enabled.
        if grade == QueryGrade::Verdict && (self.use_slicing || self.use_incremental) {
            return self.solve_verdict_optimized(key);
        }
        // Full decision procedure over the canonical key.
        self.full_solve(key, &syms)
    }

    /// Canonical monolithic solve: blasts `key` in canonical order on a
    /// fresh core. The result — verdict *and* model — is a deterministic
    /// pure function of the key, which is what makes it safe to memoize
    /// under the key and replay to model-consuming callers.
    fn full_solve(&mut self, key: Vec<Expr>, syms: &BTreeSet<SymId>) -> SatResult {
        self.stats.full_solves += 1;
        let mut sat = SatSolver::new();
        let mut blaster = Blaster::new(&mut sat);
        for c in &key {
            blaster.assert_true(&mut sat, c);
        }
        let result = match sat.solve() {
            SatOutcome::Unsat => {
                self.stats.sat_conflicts += sat.conflicts;
                SatResult::Unsat
            }
            SatOutcome::Sat => {
                self.stats.sat_conflicts += sat.conflicts;
                let mut model = Assignment::new();
                for id in syms {
                    model.set(*id, blaster.sym_model(&sat, *id).unwrap_or(0));
                }
                // The blaster's internal division symbols are filtered out by
                // only reporting symbols that occur in the input constraints.
                debug_assert!(
                    key.iter().all(|c| c.eval_bool(&model)),
                    "model does not satisfy constraints"
                );
                SatResult::Sat(model)
            }
        };
        if let Some(cache) = &self.cache {
            cache.insert(key, result.clone());
        }
        result
    }

    /// The verdict-grade optimized pipeline: partition the canonical key
    /// into symbol-disjoint independence components, decide each component
    /// separately — preferring component-granular cache answers and the
    /// persistent incremental session — and compose a model of the whole
    /// query from the per-component models. The conjunction is `Sat` iff
    /// every component is, and symbol-disjointness makes the union of
    /// component models a model of the conjunction.
    fn solve_verdict_optimized(&mut self, key: Vec<Expr>) -> SatResult {
        // Algebraic pre-blast rewriting. Sound for verdicts because every
        // rule preserves evaluation under all assignments: the rewritten key
        // is equisatisfiable with (indeed, pointwise equivalent to) the
        // original. Downstream cache entries are made under the *rewritten*
        // keys, which is safe for the same reason — an Unsat rewritten
        // component is genuinely Unsat, and ring models are always
        // re-evaluated against the key they are asked to witness.
        let key = if self.use_rewrite {
            match self.rewrite_verdict_key(key) {
                Ok(k) => k,
                Err(decided) => return decided,
            }
        } else {
            key
        };
        let parts: Vec<Vec<Expr>> = if self.use_slicing {
            partition_independent(&key)
        } else {
            vec![key.clone()]
        };
        let multi = parts.len() > 1;
        if multi {
            self.stats.sliced_queries += 1;
            self.stats.slice_components += parts.len() as u64;
        }
        let mut composed = Assignment::new();
        for part in &parts {
            let mut part_syms = BTreeSet::new();
            for c in part {
                collect_syms(c, &mut part_syms);
            }
            // Component-granular cache consultation. The whole key already
            // missed; a strict component is a smaller key with strictly
            // better hit odds (this is where slicing compounds with the
            // shared cache: one worker's solved component answers every
            // sibling query that embeds it).
            if multi {
                if let Some(hit) = self.cache_lookup(part, QueryGrade::Verdict) {
                    match hit {
                        SatResult::Unsat => return SatResult::Unsat,
                        SatResult::Sat(m) => {
                            merge_for(&mut composed, &m, &part_syms);
                            continue;
                        }
                    }
                }
            }
            match self.solve_component(part, &part_syms) {
                SatResult::Unsat => return SatResult::Unsat,
                SatResult::Sat(m) => merge_for(&mut composed, &m, &part_syms),
            }
        }
        debug_assert!(
            key.iter().all(|c| c.eval_bool(&composed)),
            "composed model does not satisfy the query"
        );
        if let Some(cache) = &self.cache {
            // Composed and session models are composition/history dependent
            // (not the canonical monolithic model), so they go to the
            // verdict-reuse ring only — never the exact map, which
            // model-grade callers read.
            cache.remember_verdict_model(&composed);
        }
        SatResult::Sat(composed)
    }

    /// Rewrites a verdict-grade key to its simplified fixpoint form,
    /// re-canonicalizes, and re-consults the cache under the smaller key.
    /// Returns `Err` when rewriting (or the re-lookup) decides the query
    /// outright.
    fn rewrite_verdict_key(&mut self, key: Vec<Expr>) -> Result<Vec<Expr>, SatResult> {
        let rewritten = ddt_expr::rewrite_all(&key);
        if rewritten.iter().any(|c| c.is_false()) {
            // A constraint simplified to a contradiction. Memoize under the
            // original key so siblings short-circuit before rewriting.
            if let Some(cache) = &self.cache {
                cache.insert(key, SatResult::Unsat);
            }
            return Err(SatResult::Unsat);
        }
        let live: Vec<&Expr> = rewritten.iter().filter(|c| !c.is_true()).collect();
        if live.is_empty() {
            return Err(SatResult::Sat(Assignment::new()));
        }
        let new_key = QueryCache::canonical_key(&live);
        if new_key == key {
            return Ok(key);
        }
        let before = ddt_expr::dag_node_count(&key);
        let after = ddt_expr::dag_node_count(&new_key);
        self.stats.rewrite_reductions += before.saturating_sub(after) as u64;
        // The original key already missed; the rewritten key is a different
        // (smaller) entry that siblings may have populated.
        if let Some(hit) = self.cache_lookup(&new_key, QueryGrade::Verdict) {
            return Err(hit);
        }
        Ok(new_key)
    }

    /// Decides one verdict-grade component: a session probe when
    /// incremental solving is on (with a fresh canonical solve as the
    /// fallback whenever the session cannot answer), a fresh canonical
    /// solve otherwise. Fresh solves are canonical for the component key
    /// and get memoized by `full_solve`; session `Unsat` answers are
    /// memoized here too (`Unsat` carries no model to corrupt), while
    /// session `Sat` models never reach the exact map.
    ///
    /// Components whose DAG clears the portfolio threshold are raced
    /// across solver lanes instead (see [`portfolio`]).
    fn solve_component(&mut self, part: &[Expr], part_syms: &BTreeSet<SymId>) -> SatResult {
        if self.use_portfolio && ddt_expr::dag_node_count(part) >= self.portfolio_min_nodes {
            return self.race_component(part, part_syms);
        }
        if self.use_incremental {
            let session = self.session.get_or_insert_with(Session::new);
            let before = session.conflicts();
            let answer = session.probe(part, part_syms);
            let (probes, resets) = (session.probes, session.resets);
            let conflicts = session.conflicts().saturating_sub(before);
            self.stats.sat_conflicts += conflicts;
            self.stats.session_probes = probes;
            self.stats.session_resets = resets;
            match answer {
                Some(ProbeAnswer::Unsat) => {
                    if let Some(cache) = &self.cache {
                        cache.insert(part.to_vec(), SatResult::Unsat);
                    }
                    return SatResult::Unsat;
                }
                Some(ProbeAnswer::Sat(m)) => return SatResult::Sat(m),
                None => {} // Defensive fallback: fresh solve below.
            }
        }
        self.full_solve(part.to_vec(), part_syms)
    }

    /// Races one hard verdict component across the portfolio lanes
    /// (incremental session, fresh canonical blast, cached-model probe) with
    /// first-answer-wins cancellation, then routes the winner's result into
    /// the cache exactly as the single-lane paths would have.
    fn race_component(&mut self, part: &[Expr], part_syms: &BTreeSet<SymId>) -> SatResult {
        self.stats.portfolio_races += 1;
        let session =
            if self.use_incremental { Some(self.session.get_or_insert_with(Session::new)) } else { None };
        let out = portfolio::race(part, part_syms, session, self.cache.as_ref());
        if let Some(s) = &self.session {
            self.stats.session_probes = s.probes;
            self.stats.session_resets = s.resets;
        }
        self.stats.sat_conflicts += out.conflicts;
        match out.winner {
            portfolio::Lane::Session => self.stats.portfolio_session_wins += 1,
            portfolio::Lane::Fresh => self.stats.portfolio_fresh_wins += 1,
            portfolio::Lane::Probe => self.stats.portfolio_probe_wins += 1,
        }
        if let Some(cache) = &self.cache {
            match (&out.result, out.winner) {
                // A probe win came *from* the cache; nothing new to deposit.
                (_, portfolio::Lane::Probe) => {}
                // Unsat is model-free and safe to memoize whatever lane
                // proved it (matching the session-Unsat insert above).
                (SatResult::Unsat, _) => cache.insert(part.to_vec(), SatResult::Unsat),
                // The fresh lane's model is the canonical one for this key;
                // session models are history-dependent and go to the
                // verdict-reuse ring only.
                (SatResult::Sat(_), portfolio::Lane::Fresh) => {
                    cache.insert(part.to_vec(), out.result.clone())
                }
                (SatResult::Sat(m), portfolio::Lane::Session) => cache.remember_verdict_model(m),
            }
        }
        out.result
    }

    /// Resolves a batch of deferred branch-feasibility obligations in one
    /// pass. `keys[i]` holds the full constraint set of one pending machine;
    /// the returned vector gives each machine's feasibility, positionally.
    ///
    /// Verdict-equivalent to calling [`Self::is_feasible`] once per entry —
    /// feasibility is a semantic property of each constraint set, and every
    /// shortcut below proves (never guesses) its answer. The batching win is
    /// **witness subsumption**: obligations are solved deepest-first and
    /// each `Sat` model joins a batch-local witness pool; any later
    /// obligation the model satisfies is discharged by evaluation instead
    /// of a solve. Frontier siblings share long constraint prefixes, so one
    /// deep model routinely discharges most of a flush.
    pub fn solve_obligations(&mut self, keys: &[Vec<Expr>]) -> Vec<bool> {
        if keys.is_empty() {
            return Vec::new();
        }
        self.stats.batch_flushes += 1;
        self.stats.batched_verdicts += keys.len() as u64;
        // Deepest-first, stable on ties: a model of a longer key satisfies
        // every key whose constraints it happens to imply, and prefix
        // chains make that the common case.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(keys[i].len()));
        let mut verdicts = vec![false; keys.len()];
        let mut pool: Vec<Assignment> = Vec::new();
        for &i in &order {
            let cs = &keys[i];
            if pool.iter().any(|m| cs.iter().all(|c| c.eval_bool(m))) {
                self.stats.batch_witness_hits += 1;
                verdicts[i] = true;
                continue;
            }
            match self.check_obligation(cs) {
                SatResult::Sat(m) => {
                    verdicts[i] = true;
                    pool.push(m);
                }
                SatResult::Unsat => {}
            }
        }
        verdicts
    }

    /// Decides one deferred-obligation key that the witness pool missed.
    ///
    /// Obligation traffic is dominated by branch-feasibility keys — each a
    /// known-feasible parent set plus one negated condition — arriving at
    /// fork rate, far more often than any other verdict stream. The cheap
    /// proofs (trivial cases, cached verdicts, candidate models) do nearly
    /// all the work; the residue runs the rewriter + slicing pipeline with
    /// the **incremental session suppressed**: on a long-lived session core
    /// each probe costs proportionally to the whole accumulated core, and at
    /// obligation volume that is a measured net loss large enough to blow
    /// wall budgets, while fresh per-component solves are flat and still
    /// feed the shared cache via `full_solve`'s memoization. Outsized
    /// components still race the (sessionless) portfolio.
    fn check_obligation(&mut self, constraints: &[Expr]) -> SatResult {
        self.stats.queries += 1;
        for c in constraints {
            assert_eq!(c.width(), 1, "constraints must be boolean: {c}");
        }
        if constraints.iter().any(|c| c.is_false()) {
            return SatResult::Unsat;
        }
        let live: Vec<&Expr> = constraints.iter().filter(|c| !c.is_true()).collect();
        if live.is_empty() {
            return SatResult::Sat(Assignment::new());
        }
        let mut syms = BTreeSet::new();
        for c in &live {
            collect_syms(c, &mut syms);
        }
        let key = QueryCache::canonical_key(&live);
        if self.cache.is_some() {
            if let Some(hit) = self.cache_lookup(&key, QueryGrade::Verdict) {
                return hit;
            }
        }
        for candidate in Self::candidate_models(&syms) {
            if live.iter().all(|c| c.eval_bool(&candidate)) {
                self.stats.fast_path_hits += 1;
                if let Some(cache) = &self.cache {
                    cache.remember_verdict_model(&candidate);
                }
                return SatResult::Sat(candidate);
            }
        }
        // Slicing still pays for obligations (smaller fresh component solves,
        // component-granular cache sharing across sibling keys); only the
        // session is suppressed, for this query alone.
        let saved = self.use_incremental;
        self.use_incremental = false;
        let result = if self.use_slicing || self.use_rewrite {
            self.solve_verdict_optimized(key)
        } else {
            self.full_solve(key, &syms)
        };
        self.use_incremental = saved;
        result
    }

    /// Eagerly settles one deferred obligation (`--no-batch` and pop-time
    /// resolution of machines restored from batch-mode checkpoints).
    /// Verdict-equivalent to [`Self::is_feasible`], but routed exactly like
    /// a batch-pool miss so the two schedules differ only in batching.
    pub fn is_feasible_obligation(&mut self, constraints: &[Expr]) -> bool {
        self.check_obligation(constraints).is_sat()
    }

    /// Consults the shared cache and maps the answer onto stats. `None`
    /// means a miss (the caller must solve).
    fn cache_lookup(&mut self, key: &[Expr], grade: QueryGrade) -> Option<SatResult> {
        let answer = self.cache.as_ref()?.lookup(key, grade);
        match answer {
            CacheAnswer::Exact(hit) => {
                self.stats.cache_hits += 1;
                Some(hit)
            }
            CacheAnswer::UnsatSubset => {
                self.stats.cache_unsat_subset += 1;
                Some(SatResult::Unsat)
            }
            CacheAnswer::ModelReuse(model) => {
                self.stats.cache_model_reuse += 1;
                Some(SatResult::Sat(model))
            }
            CacheAnswer::Miss => None,
        }
    }

    fn candidate_models(syms: &BTreeSet<SymId>) -> Vec<Assignment> {
        let mk = |v: u64| -> Assignment { syms.iter().map(|&id| (id, v)).collect() };
        vec![mk(0), mk(1), mk(u64::MAX), mk(4), mk(0x80)]
    }

    /// Returns true if the conjunction is satisfiable.
    ///
    /// This is a verdict-grade query — the model is discarded — so the cache
    /// may additionally answer it by counterexample reuse.
    pub fn is_feasible(&mut self, constraints: &[Expr]) -> bool {
        self.check_graded(constraints, QueryGrade::Verdict).is_sat()
    }

    /// Returns true if `cond` can be true under `constraints`.
    pub fn may_be_true(&mut self, constraints: &[Expr], cond: &Expr) -> bool {
        let mut cs: Vec<Expr> = constraints.to_vec();
        cs.push(cond.clone());
        self.is_feasible(&cs)
    }

    /// Returns true if `cond` must be true under `constraints` (its negation
    /// is infeasible).
    pub fn must_be_true(&mut self, constraints: &[Expr], cond: &Expr) -> bool {
        let mut cs: Vec<Expr> = constraints.to_vec();
        cs.push(cond.lnot());
        !self.is_feasible(&cs)
    }

    /// Produces a feasible concrete value of `e` under `constraints`, or
    /// `None` if the constraints are unsatisfiable.
    ///
    /// This is the concretization primitive of §3.2: the returned value is a
    /// witness, and the caller records the induced `e == value` constraint.
    pub fn concretize(&mut self, constraints: &[Expr], e: &Expr) -> Option<u64> {
        if let Some(v) = e.as_const() {
            return Some(v);
        }
        match self.check(constraints) {
            SatResult::Unsat => None,
            SatResult::Sat(model) => Some(e.eval(&model)),
        }
    }

    /// Enumerates up to `max` distinct feasible values of `e`, used when DDT
    /// backtracks a concretization and re-issues a kernel call with different
    /// feasible concrete values (§3.2).
    pub fn distinct_values(&mut self, constraints: &[Expr], e: &Expr, max: usize) -> Vec<u64> {
        let mut found = Vec::new();
        let mut cs: Vec<Expr> = constraints.to_vec();
        while found.len() < max {
            match self.check(&cs) {
                SatResult::Unsat => break,
                SatResult::Sat(model) => {
                    let v = e.eval(&model);
                    found.push(v);
                    cs.push(e.ne(&Expr::constant(v, e.width())));
                }
            }
        }
        found
    }
}

/// Merges into `into` the values `from` assigns to the symbols in `syms`.
/// Restricting to the component's own symbols matters: a reused ring model
/// may assign symbols belonging to *other* components (whatever its
/// original query mentioned), and those values must not override the models
/// those components produce for themselves. Symbols the source model leaves
/// unassigned default to zero, exactly as `eval` treats them.
fn merge_for(into: &mut Assignment, from: &Assignment, syms: &BTreeSet<SymId>) {
    for id in syms {
        into.set(*id, from.get_or_zero(*id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(id: u32, w: u32) -> Expr {
        Expr::sym(SymId(id), w)
    }

    fn c32(v: u64) -> Expr {
        Expr::constant(v, 32)
    }

    #[test]
    fn empty_is_sat() {
        assert!(Solver::new().check(&[]).is_sat());
    }

    #[test]
    fn trivial_false_is_unsat() {
        assert_eq!(Solver::new().check(&[Expr::false_()]), SatResult::Unsat);
    }

    #[test]
    fn equality_model() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        match s.check(&[x.eq(&c32(42))]) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)), 42),
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn contradictory_range_is_unsat() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        let r = s.check(&[x.ult(&c32(5)), c32(10).ult(&x)]);
        assert_eq!(r, SatResult::Unsat);
    }

    #[test]
    fn arithmetic_inversion() {
        // x + 7 == 3 (wrapping) => x == 0xfffffffc.
        let x = sym(0, 32);
        let mut s = Solver::new();
        match s.check(&[x.add(&c32(7)).eq(&c32(3))]) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)) & 0xffff_ffff, 0xffff_fffc),
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn multiplication_inversion() {
        let x = sym(0, 16);
        let mut s = Solver::new();
        let c = x.mul(&Expr::constant(5, 16)).eq(&Expr::constant(35, 16));
        match s.check(&[c.clone()]) {
            SatResult::Sat(m) => {
                let mut asg = Assignment::new();
                asg.set(SymId(0), m.get_or_zero(SymId(0)));
                assert!(c.eval_bool(&asg));
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn odd_times_two_is_never_one() {
        // 2*x == 1 has no solution mod 2^32.
        let x = sym(0, 32);
        let mut s = Solver::new();
        assert_eq!(s.check(&[x.mul(&c32(2)).eq(&c32(1))]), SatResult::Unsat);
    }

    #[test]
    fn signed_comparison_model() {
        let x = sym(0, 8);
        let mut s = Solver::new();
        // x <s 0 and x >u 0x7f: any negative 8-bit value.
        let cs = [
            x.slt(&Expr::constant(0, 8)), //
            Expr::constant(0x7f, 8).ult(&x),
        ];
        match s.check(&cs) {
            SatResult::Sat(m) => {
                let v = m.get_or_zero(SymId(0)) & 0xff;
                assert!(v >= 0x80, "got {v:#x}");
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn udiv_relation() {
        // x / 3 == 10 => x in [30, 32].
        let x = sym(0, 32);
        let mut s = Solver::new();
        match s.check(&[x.udiv(&c32(3)).eq(&c32(10))]) {
            SatResult::Sat(m) => {
                let v = m.get_or_zero(SymId(0)) & 0xffff_ffff;
                assert!((30..=32).contains(&v), "got {v}");
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn urem_relation() {
        // x % 8 == 5 and x < 16 => x == 5 or 13.
        let x = sym(0, 32);
        let mut s = Solver::new();
        let cs = [x.urem(&c32(8)).eq(&c32(5)), x.ult(&c32(16))];
        match s.check(&cs) {
            SatResult::Sat(m) => {
                let v = m.get_or_zero(SymId(0)) & 0xffff_ffff;
                assert!(v == 5 || v == 13, "got {v}");
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn division_by_zero_semantics() {
        // b == 0 => a udiv b == all-ones.
        let a = sym(0, 32);
        let b = sym(1, 32);
        let mut s = Solver::new();
        let cs = [
            b.eq(&c32(0)), //
            a.udiv(&b).ne(&c32(0xffff_ffff)),
        ];
        assert_eq!(s.check(&cs), SatResult::Unsat);
    }

    #[test]
    fn shift_with_symbolic_amount() {
        // 1 << x == 16 => x == 4.
        let x = sym(0, 32);
        let mut s = Solver::new();
        match s.check(&[c32(1).shl(&x).eq(&c32(16))]) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)) & 0xffff_ffff, 4),
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn oversize_shift_yields_zero() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        // x >= 32 and (1 << x) != 0 is unsat.
        let cs = [
            c32(31).ult(&x), //
            c32(1).shl(&x).ne(&c32(0)),
        ];
        assert_eq!(s.check(&cs), SatResult::Unsat);
    }

    #[test]
    fn must_may_semantics() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        let ctx = [x.ult(&c32(10))];
        assert!(s.must_be_true(&ctx, &x.ult(&c32(11))));
        assert!(s.may_be_true(&ctx, &x.eq(&c32(5))));
        assert!(!s.may_be_true(&ctx, &x.eq(&c32(20))));
        assert!(!s.must_be_true(&ctx, &x.eq(&c32(5))));
    }

    #[test]
    fn concretize_respects_constraints() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        let ctx = [c32(100).ult(&x), x.ult(&c32(105))];
        let v = s.concretize(&ctx, &x).expect("feasible");
        assert!((101..105).contains(&(v & 0xffff_ffff)), "got {v}");
    }

    #[test]
    fn distinct_values_enumerates() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        let ctx = [x.ult(&c32(3))];
        let mut vs = s.distinct_values(&ctx, &x, 10);
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2]);
    }

    #[test]
    fn extract_concat_constraints() {
        // Low byte of x is 0xAB, next byte is 0xCD.
        let x = sym(0, 32);
        let mut s = Solver::new();
        let cs = [
            x.extract(7, 0).eq(&Expr::constant(0xab, 8)),
            x.extract(15, 8).eq(&Expr::constant(0xcd, 8)),
        ];
        match s.check(&cs) {
            SatResult::Sat(m) => {
                assert_eq!(m.get_or_zero(SymId(0)) & 0xffff, 0xcdab);
            }
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn ite_constraints() {
        let x = sym(0, 32);
        let y = sym(1, 32);
        let mut s = Solver::new();
        // if x < 5 then y = 1 else y = 2; y == 2 contradicts x < 4.
        let e = Expr::ite(&x.ult(&c32(5)), &c32(1), &c32(2));
        let cs = [e.eq(&y), y.eq(&c32(2)), x.ult(&c32(4))];
        assert_eq!(s.check(&cs), SatResult::Unsat);
    }

    #[test]
    fn fast_path_hits_counted() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        assert!(s.check(&[x.eq(&c32(0))]).is_sat());
        assert_eq!(s.stats().fast_path_hits, 1);
        assert_eq!(s.stats().full_solves, 0);
    }

    #[test]
    fn sext_constraint() {
        let x = sym(0, 8);
        let mut s = Solver::new();
        // sext(x, 32) == 0xffffff80 => x == 0x80.
        let cs = [x.sext(32).eq(&c32(0xffff_ff80))];
        match s.check(&cs) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)) & 0xff, 0x80),
            SatResult::Unsat => panic!(),
        }
    }

    #[test]
    fn shared_cache_hits_across_solvers() {
        // One worker's full solve is another worker's exact hit.
        let cache = Arc::new(QueryCache::new());
        let query = [sym(0, 32).eq(&c32(42))]; // Misses the fast-path candidates.
        let mut a = Solver::with_cache(cache.clone());
        let ra = a.check(&query);
        assert_eq!(a.stats().full_solves, 1);
        let mut b = Solver::with_cache(cache);
        let rb = b.check(&query);
        assert_eq!(b.stats().cache_hits, 1);
        assert_eq!(b.stats().full_solves, 0);
        assert_eq!(ra, rb, "exact hit must return the memoized result verbatim");
    }

    #[test]
    fn verdict_queries_reuse_counterexamples() {
        let x = sym(0, 32);
        let mut s = Solver::new();
        // Seed the model store with x == 42 (misses every fast-path guess).
        assert!(s.check(&[x.eq(&c32(42))]).is_sat());
        // A different query the cached model satisfies; fast-path candidates
        // (0, 1, max, 4, 0x80) all fail on x in (40, 50).
        let range = [c32(40).ult(&x), x.ult(&c32(50))];
        assert!(s.is_feasible(&range));
        assert_eq!(s.stats().cache_model_reuse, 1);
        assert_eq!(s.stats().full_solves, 1, "the verdict query must not blast");
        // The same query via model-grade `check` must run the deterministic
        // solve instead of surfacing the reused model.
        let mut t = Solver::with_cache(s.cache().unwrap().clone());
        assert!(t.check(&range).is_sat());
        assert_eq!(t.stats().cache_model_reuse, 0);
        assert_eq!(t.stats().full_solves, 1);
    }

    #[test]
    fn unsat_subset_subsumes_superset() {
        let x = sym(0, 32);
        let y = sym(1, 32);
        let core = [x.ult(&c32(5)), c32(10).ult(&x)];
        let mut s = Solver::new();
        assert_eq!(s.check(&core), SatResult::Unsat);
        // Any superset is UNSAT without another solve.
        let superset = [core[0].clone(), y.eq(&c32(7)), core[1].clone()];
        assert_eq!(s.check(&superset), SatResult::Unsat);
        assert_eq!(s.stats().cache_unsat_subset, 1);
        assert_eq!(s.stats().full_solves, 1);
    }

    #[test]
    fn uncached_mode_matches_cached_results() {
        let x = sym(0, 32);
        let y = sym(1, 32);
        let queries: Vec<Vec<Expr>> = vec![
            vec![x.eq(&c32(42))],
            vec![x.eq(&c32(42))], // Repeat: cached run answers from cache.
            vec![x.ult(&c32(5)), c32(10).ult(&x)],
            vec![x.ult(&c32(5)), c32(10).ult(&x), y.eq(&c32(7))],
            vec![x.mul(&c32(3)).eq(&c32(21)), x.ult(&c32(100))],
        ];
        let mut cached = Solver::new();
        let mut uncached = Solver::uncached();
        for q in &queries {
            assert_eq!(
                cached.check(q),
                uncached.check(q),
                "cache changed the result of {q:?}"
            );
        }
        assert_eq!(uncached.stats().cache_hits, 0);
        assert_eq!(uncached.stats().cache_model_reuse, 0);
    }

    /// A solver with both verdict-grade optimizations disabled (the
    /// `--no-slicing --no-incremental` escape hatches).
    fn plain_solver() -> Solver {
        let mut s = Solver::new();
        s.set_slicing(false);
        s.set_incremental(false);
        s
    }

    #[test]
    fn sliced_verdicts_agree_with_plain_solver() {
        let x = sym(0, 32);
        let y = sym(1, 32);
        let z = sym(2, 32);
        let queries: Vec<Vec<Expr>> = vec![
            // Three independent components, all satisfiable.
            vec![x.eq(&c32(42)), y.ult(&c32(9)), z.urem(&c32(3)).eq(&c32(2))],
            // One unsat component among satisfiable ones.
            vec![x.eq(&c32(42)), y.ult(&c32(5)), c32(10).ult(&y)],
            // Entangled: single component.
            vec![x.add(&y).eq(&c32(7)), y.ult(&c32(3)), x.ult(&c32(100))],
        ];
        for q in &queries {
            let mut optimized = Solver::new();
            let mut plain = plain_solver();
            assert_eq!(
                optimized.is_feasible(q),
                plain.is_feasible(q),
                "optimized pipeline changed the verdict of {q:?}"
            );
        }
    }

    #[test]
    fn slicing_counts_components_and_composes_a_valid_model() {
        let x = sym(0, 32);
        let y = sym(1, 32);
        // Two independent components that defeat the fast-path candidates.
        let q = [x.eq(&c32(42)), y.mul(&c32(3)).eq(&c32(21))];
        let mut s = Solver::new();
        s.set_incremental(false);
        let r = s.check_graded(&q, QueryGrade::Verdict);
        match r {
            SatResult::Sat(m) => {
                assert!(q.iter().all(|c| c.eval_bool(&m)), "composed model invalid");
                assert_eq!(m.get_or_zero(SymId(0)), 42);
                assert_eq!(m.get_or_zero(SymId(1)) & 0xffff_ffff, 7);
            }
            SatResult::Unsat => panic!("both components are satisfiable"),
        }
        assert_eq!(s.stats().sliced_queries, 1);
        assert_eq!(s.stats().slice_components, 2);
    }

    #[test]
    fn component_results_are_cached_under_component_keys() {
        let cache = Arc::new(QueryCache::new());
        let x = sym(0, 32);
        let y = sym(1, 32);
        let mut a = Solver::with_cache(cache.clone());
        a.set_incremental(false);
        // Sliced verdict query: each component solved and memoized alone.
        assert!(a.is_feasible(&[x.eq(&c32(42)), y.eq(&c32(17))]));
        // A later *model-grade* query equal to one component is an exact hit
        // on the canonical per-component result.
        let mut b = Solver::with_cache(cache);
        match b.check(&[x.eq(&c32(42))]) {
            SatResult::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)), 42),
            SatResult::Unsat => panic!(),
        }
        assert_eq!(b.stats().cache_hits, 1, "component key must hit exactly");
        assert_eq!(b.stats().full_solves, 0);
    }

    #[test]
    fn unsat_component_core_subsumes_model_grade_supersets() {
        let cache = Arc::new(QueryCache::new());
        let x = sym(0, 32);
        let y = sym(1, 32);
        let mut a = Solver::with_cache(cache.clone());
        // Verdict query whose unsat component is two constraints wide.
        let contradiction = [x.ult(&c32(5)), c32(10).ult(&x)];
        assert!(!a.is_feasible(&[contradiction[0].clone(), y.eq(&c32(3)), contradiction[1].clone()]));
        // The small component core now proves any superset UNSAT for
        // model-grade callers through the existing subsumption path.
        let mut b = Solver::with_cache(cache);
        let superset =
            [contradiction[0].clone(), contradiction[1].clone(), y.ult(&c32(100))];
        assert_eq!(b.check(&superset), SatResult::Unsat);
        assert_eq!(b.stats().cache_unsat_subset, 1);
        assert_eq!(b.stats().full_solves, 0);
    }

    #[test]
    fn incremental_session_is_exercised_and_agrees() {
        let x = sym(0, 32);
        let mut s = Solver::uncached(); // No cache: every query must solve.
        let mut plain = plain_solver();
        // A deepening path: x != 0, x != 1, ... plus a range, as the
        // explorer's branch-feasibility stream would issue.
        let mut cs = vec![x.ult(&c32(50))];
        for i in 0..6u64 {
            cs.push(x.ne(&c32(i)));
            assert_eq!(s.is_feasible(&cs), plain.is_feasible(&cs));
        }
        assert!(s.stats().session_probes > 0, "session never engaged");
        assert_eq!(s.stats().full_solves, 0, "session path must not re-blast");
        assert!(plain.stats().full_solves > 0);
    }

    #[test]
    fn incremental_unsat_matches_plain() {
        let x = sym(0, 32);
        let mut s = Solver::uncached();
        let q = [x.ult(&c32(5)), c32(10).ult(&x)];
        assert!(!s.is_feasible(&q));
        // And satisfiable again afterwards on the same core.
        assert!(s.is_feasible(&[x.ult(&c32(5)), x.ne(&c32(0))]));
    }

    #[test]
    fn escape_hatches_restore_baseline_counters() {
        let x = sym(0, 32);
        let mut s = plain_solver();
        assert!(s.is_feasible(&[x.eq(&c32(42))]));
        assert_eq!(s.stats().sliced_queries, 0);
        assert_eq!(s.stats().session_probes, 0);
        assert_eq!(s.stats().full_solves, 1);
    }

    #[test]
    fn model_grade_checks_never_use_session_or_slicing() {
        let x = sym(0, 32);
        let y = sym(1, 32);
        let mut s = Solver::new();
        // Two independent components; model grade must still run the
        // canonical monolithic solve.
        match s.check(&[x.eq(&c32(42)), y.eq(&c32(17))]) {
            SatResult::Sat(m) => {
                assert_eq!(m.get_or_zero(SymId(0)), 42);
                assert_eq!(m.get_or_zero(SymId(1)), 17);
            }
            SatResult::Unsat => panic!(),
        }
        assert_eq!(s.stats().sliced_queries, 0);
        assert_eq!(s.stats().session_probes, 0);
        assert_eq!(s.stats().full_solves, 1);
    }

    #[test]
    fn solve_order_is_canonical_in_every_mode() {
        // Permuting the constraint list cannot change the returned model,
        // even without a cache: full solves assert the canonical key.
        let x = sym(0, 32);
        let cs = [c32(100).ult(&x), x.ult(&c32(200)), x.urem(&c32(7)).eq(&c32(3))];
        let forward = Solver::uncached().check(&cs);
        let reversed: Vec<Expr> = cs.iter().rev().cloned().collect();
        let backward = Solver::uncached().check(&reversed);
        assert_eq!(forward, backward);
    }

    /// A prefix-chain batch like a flush produces: deepening constraints on
    /// one path plus an infeasible sibling and an unrelated shallow key.
    fn obligation_batch() -> Vec<Vec<Expr>> {
        let x = sym(0, 32);
        let y = sym(1, 32);
        let mut chain = vec![c32(10).ult(&x)];
        let mut keys = vec![chain.clone()];
        for i in 0..6u64 {
            chain.push(x.ne(&c32(i)));
            keys.push(chain.clone());
        }
        // Infeasible sibling of the deepest prefix.
        let mut dead = chain.clone();
        dead.push(x.ule(&c32(5)));
        keys.push(dead);
        // Unrelated shallow key on another symbol.
        keys.push(vec![y.eq(&c32(9))]);
        keys
    }

    #[test]
    fn solve_obligations_matches_per_query_feasibility() {
        let keys = obligation_batch();
        let mut batched = Solver::uncached();
        let got = batched.solve_obligations(&keys);
        let mut plain = Solver::uncached();
        plain.set_portfolio(false);
        plain.set_rewrite(false);
        let want: Vec<bool> = keys.iter().map(|k| plain.is_feasible(k)).collect();
        assert_eq!(got, want);
        let st = batched.stats();
        assert_eq!(st.batch_flushes, 1);
        assert_eq!(st.batched_verdicts, keys.len() as u64);
    }

    #[test]
    fn witness_subsumption_discharges_prefixes_without_solving() {
        let keys = obligation_batch();
        let mut s = Solver::uncached();
        s.solve_obligations(&keys);
        let st = s.stats();
        // The deepest chain key is solved first; its model satisfies every
        // shorter prefix, so those are discharged by evaluation.
        assert!(
            st.batch_witness_hits >= 6,
            "expected the prefix chain to be witness-subsumed: {st:?}"
        );
    }

    #[test]
    fn empty_flush_is_free() {
        let mut s = Solver::new();
        assert!(s.solve_obligations(&[]).is_empty());
        assert_eq!(s.stats().batch_flushes, 0);
    }

    #[test]
    fn rewrite_escape_hatch_preserves_verdicts() {
        let x = sym(0, 8);
        let wide = Expr::zext(&x, 32);
        // Narrowable comparison plus a range constraint — rewriter territory.
        let cs = [wide.ult(&c32(200)), wide.ne(&c32(0))];
        let mut on = Solver::uncached();
        let mut off = Solver::uncached();
        off.set_rewrite(false);
        assert_eq!(on.is_feasible(&cs), off.is_feasible(&cs));
        assert_eq!(off.stats().rewrite_reductions, 0);
    }
}
