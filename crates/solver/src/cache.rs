//! The shared counterexample-caching query cache.
//!
//! DDT's throughput is bounded by constraint solving: every fork, feasibility
//! probe, and concretization hits the blaster, and sibling paths re-solve
//! near-identical constraint sets. This module is the KLEE-style
//! counterexample cache (Baldoni et al., §survey of symbolic execution
//! caching) shared by *all* explorer workers:
//!
//! 1. **Exact memoization** — canonicalized constraint-set signatures
//!    ([`ddt_expr::cache_key`]) map to their full [`SatResult`]s. Keys carry
//!    the expressions themselves, so hash collisions cannot corrupt answers.
//! 2. **Counterexample (model) reuse** — satisfying [`Assignment`]s from
//!    past queries are retained; a new query first evaluates cached models
//!    and answers `Sat` without blasting when one fits. A model cached for a
//!    *superset* of the query in particular always satisfies the subset.
//! 3. **UNSAT subset subsumption** — a cached UNSAT core that is a subset of
//!    the current query proves the superset UNSAT, checked with a Bloom-bit
//!    signature pre-filter and an exact sorted-inclusion walk.
//!
//! Storage is sharded: each shard is an LRU map behind a read-optimized
//! [`ShardedLock`], with recency stamps kept in per-entry atomics so cache
//! *hits* only ever take the shared (read) side of the lock. Eviction is
//! per-entry LRU — a full cache forgets its coldest entry, never the world
//! (the wholesale-clear policy this replaces destroyed all history at the
//! worst moment: mid-exploration, at peak locality).
//!
//! # Semantic invisibility
//!
//! The exploration must be bit-identical with the cache on or off. Verdicts
//! (`Sat`/`Unsat`) are mathematical functions of the query, so any sound
//! shortcut preserves them. *Models* are not unique, so which model comes
//! back could perturb concretization-dependent paths. Three rules keep the
//! cache invisible (exercised by `tests/solver_cache_differential.rs`):
//!
//! - the solver always blasts the *canonical* form of a query, so a fresh
//!   solve is a deterministic function of the cache key;
//! - exact-hit models are therefore exactly what a fresh solve would return;
//! - reused (cross-key) models are only surfaced for verdict-grade queries
//!   (`is_feasible` and friends), whose models the caller discards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::sync::ShardedLock;
use ddt_expr::{cache_key, is_subset_sorted, subset_signature, Assignment, Expr};

use crate::SatResult;

/// Number of shards (a power of two; the shard index is the key hash's low
/// bits). Sixteen keeps write contention negligible at the worker counts the
/// parallel explorer uses.
const SHARDS: usize = 16;

/// Default total entry capacity, matching the previous wholesale-clear bound.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Cached models retained for counterexample reuse. Every full solve and
/// winning fast-path candidate deposits here, so the ring must be deep
/// enough that a model survives until sibling paths (or a warm re-run)
/// re-reach the program point that produced it. The scan only runs on
/// verdict-grade misses, which are rare, so depth is cheap.
const MODEL_STORE_CAP: usize = 1024;

/// Models that answered verdict-grade queries on the fast path, kept in a
/// separate protected ring (see [`QueryCache::verdict_models`]).
const VERDICT_MODEL_STORE_CAP: usize = 128;

/// Cached UNSAT cores retained for subset subsumption. Every miss scans the
/// ring, but a Bloom-signature prefilter rejects non-subsets with one u64
/// comparison each, so depth is cheap here too.
const UNSAT_STORE_CAP: usize = 512;

/// How a caller will use the answer; controls which shortcuts are sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryGrade {
    /// The caller consumes the model (concretization, bug inputs): only
    /// bit-deterministic shortcuts (exact memoization, UNSAT subsumption)
    /// may answer.
    Model,
    /// The caller only branches on Sat/Unsat: cached-model reuse may answer
    /// too, since any satisfying assignment proves `Sat`.
    Verdict,
}

/// Global cache counters (all monotone; snapshot with [`QueryCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the exact-key map.
    pub exact_hits: u64,
    /// `Sat` verdicts proved by evaluating a cached counterexample.
    pub model_reuse_hits: u64,
    /// `Unsat` verdicts proved by a cached UNSAT subset.
    pub unsat_subset_hits: u64,
    /// Lookups that fell through to the full decision procedure.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// LRU evictions (single coldest entry per overflowing insert).
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups that consulted the cache.
    pub fn lookups(&self) -> u64 {
        self.exact_hits + self.model_reuse_hits + self.unsat_subset_hits + self.misses
    }

    /// Fraction of lookups answered without blasting (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (lookups - self.misses) as f64 / lookups as f64
        }
    }
}

/// Which mechanism answered a cache probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheAnswer {
    /// The exact canonical key was memoized.
    Exact(SatResult),
    /// A cached counterexample satisfies the query (verdict-grade only).
    ModelReuse(Assignment),
    /// A cached UNSAT core is a subset of the query.
    UnsatSubset,
    /// Nothing applicable: run the decision procedure.
    Miss,
}

struct Entry {
    result: SatResult,
    /// Recency stamp, updated on hit with a relaxed store so the read path
    /// never needs the write lock.
    stamp: AtomicU64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Vec<Expr>, Entry>,
}

/// A stored UNSAT core: canonical key plus its Bloom-bit signature.
struct UnsatCore {
    key: Vec<Expr>,
    sig: u64,
}

/// The shared, sharded counterexample-caching solver layer.
///
/// One handle (wrapped in an `Arc`) is shared by every explorer worker; all
/// methods take `&self`.
pub struct QueryCache {
    shards: Vec<ShardedLock<Shard>>,
    /// Ring of recent satisfying assignments for counterexample reuse.
    models: ShardedLock<Vec<Assignment>>,
    model_cursor: AtomicU64,
    /// Protected ring of models that answered *verdict-grade* queries on
    /// the fast path. These are exactly the models a sibling worker or a
    /// warm re-run needs to short-circuit the same feasibility checks, and
    /// they are few — so they live outside the churn of the full-solve
    /// model ring, where thousands of query-specific deposits would evict
    /// them long before they could be reused.
    verdict_models: ShardedLock<Vec<Assignment>>,
    verdict_cursor: AtomicU64,
    /// Ring of recent UNSAT cores for subset subsumption.
    unsat_cores: ShardedLock<Vec<UnsatCore>>,
    unsat_cursor: AtomicU64,
    clock: AtomicU64,
    per_shard_capacity: usize,
    exact_hits: AtomicU64,
    model_reuse_hits: AtomicU64,
    unsat_subset_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::new()
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl QueryCache {
    /// Creates a cache with the default capacity.
    pub fn new() -> QueryCache {
        QueryCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a cache bounded to roughly `capacity` total entries.
    pub fn with_capacity(capacity: usize) -> QueryCache {
        QueryCache {
            shards: (0..SHARDS).map(|_| ShardedLock::new(Shard::default())).collect(),
            models: ShardedLock::new(Vec::new()),
            model_cursor: AtomicU64::new(0),
            verdict_models: ShardedLock::new(Vec::new()),
            verdict_cursor: AtomicU64::new(0),
            unsat_cores: ShardedLock::new(Vec::new()),
            unsat_cursor: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            exact_hits: AtomicU64::new(0),
            model_reuse_hits: AtomicU64::new(0),
            unsat_subset_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &[Expr]) -> &ShardedLock<Shard> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Total cached query entries (racy snapshot across shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// True when no queries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the global counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            model_reuse_hits: self.model_reuse_hits.load(Ordering::Relaxed),
            unsat_subset_hits: self.unsat_subset_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Canonicalizes a live (non-trivial) constraint slice into a cache key.
    pub fn canonical_key(constraints: &[&Expr]) -> Vec<Expr> {
        let owned: Vec<Expr> = constraints.iter().map(|e| (*e).clone()).collect();
        cache_key(&owned)
    }

    /// Looks up a canonical key, trying exact memoization, then UNSAT subset
    /// subsumption, then (for verdict-grade queries) counterexample reuse.
    pub fn lookup(&self, key: &[Expr], grade: QueryGrade) -> CacheAnswer {
        // Exact hit: read lock only; recency via a relaxed atomic store.
        {
            let shard = self.shard_of(key).read();
            if let Some(entry) = shard.map.get(key) {
                entry.stamp.store(self.tick(), Ordering::Relaxed);
                self.exact_hits.fetch_add(1, Ordering::Relaxed);
                return CacheAnswer::Exact(entry.result.clone());
            }
        }
        // A cached UNSAT subset proves this superset UNSAT. Sound for every
        // grade: Unsat carries no model.
        let sig = subset_signature(key);
        {
            let cores = self.unsat_cores.read();
            for core in cores.iter() {
                if core.sig & !sig == 0 && is_subset_sorted(&core.key, key) {
                    self.unsat_subset_hits.fetch_add(1, Ordering::Relaxed);
                    return CacheAnswer::UnsatSubset;
                }
            }
        }
        // Counterexample reuse: any cached model that satisfies every
        // constraint proves Sat. Models are not canonical, so this shortcut
        // is reserved for callers that discard them.
        if grade == QueryGrade::Verdict {
            {
                let models = self.verdict_models.read();
                for model in models.iter() {
                    if key.iter().all(|c| c.eval_bool(model)) {
                        self.model_reuse_hits.fetch_add(1, Ordering::Relaxed);
                        return CacheAnswer::ModelReuse(model.clone());
                    }
                }
            }
            let models = self.models.read();
            for model in models.iter() {
                if key.iter().all(|c| c.eval_bool(model)) {
                    self.model_reuse_hits.fetch_add(1, Ordering::Relaxed);
                    return CacheAnswer::ModelReuse(model.clone());
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        CacheAnswer::Miss
    }

    /// Stores a solved result under its canonical key, evicting the coldest
    /// entry of the target shard if it is full.
    pub fn insert(&self, key: Vec<Expr>, result: SatResult) {
        match &result {
            SatResult::Sat(model) => self.remember_model(model),
            SatResult::Unsat => self.remember_unsat(&key),
        }
        let stamp = self.tick();
        let mut shard = self.shard_of(&key).write();
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            // LRU: drop the single least-recently-stamped entry. A linear
            // scan is fine — it only runs once the shard is at capacity, and
            // shards are small enough that the scan is cheaper than a solve.
            if let Some(coldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&coldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, Entry { result, stamp: AtomicU64::new(stamp) });
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Adds a satisfying assignment to the reuse ring (skips empty models —
    /// they satisfy nothing the fast path would not). Besides full-solve
    /// models, the solver also deposits fast-path candidate models here so
    /// sibling workers and warm runs can answer verdict-grade queries from
    /// the ring instead of re-deriving them.
    pub(crate) fn remember_model(&self, model: &Assignment) {
        if model.is_empty() {
            return;
        }
        let mut models = self.models.write();
        if models.iter().any(|m| m == model) {
            return;
        }
        if models.len() < MODEL_STORE_CAP {
            models.push(model.clone());
        } else {
            let at = (self.model_cursor.fetch_add(1, Ordering::Relaxed) as usize)
                % MODEL_STORE_CAP;
            models[at] = model.clone();
        }
    }

    /// Adds a model that satisfied a verdict-grade query to the protected
    /// reuse ring. Deposits here are rare (one per fast-path-answered
    /// feasibility check shape), so unlike [`Self::remember_model`] entries
    /// they survive until a sibling path or warm re-run needs them.
    pub(crate) fn remember_verdict_model(&self, model: &Assignment) {
        if model.is_empty() {
            return;
        }
        let mut models = self.verdict_models.write();
        if models.iter().any(|m| m == model) {
            return;
        }
        if models.len() < VERDICT_MODEL_STORE_CAP {
            models.push(model.clone());
        } else {
            let at = (self.verdict_cursor.fetch_add(1, Ordering::Relaxed) as usize)
                % VERDICT_MODEL_STORE_CAP;
            models[at] = model.clone();
        }
    }

    /// Adds an UNSAT core to the subsumption ring.
    fn remember_unsat(&self, key: &[Expr]) {
        let core = UnsatCore { key: key.to_vec(), sig: subset_signature(key) };
        let mut cores = self.unsat_cores.write();
        if cores.iter().any(|c| c.key == core.key) {
            return;
        }
        if cores.len() < UNSAT_STORE_CAP {
            cores.push(core);
        } else {
            let at = (self.unsat_cursor.fetch_add(1, Ordering::Relaxed) as usize)
                % UNSAT_STORE_CAP;
            cores[at] = core;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_expr::SymId;

    fn c32(v: u64) -> Expr {
        Expr::constant(v, 32)
    }

    fn sym(id: u32) -> Expr {
        Expr::sym(SymId(id), 32)
    }

    fn key_of(cs: &[Expr]) -> Vec<Expr> {
        let refs: Vec<&Expr> = cs.iter().collect();
        QueryCache::canonical_key(&refs)
    }

    #[test]
    fn exact_hit_roundtrips_result() {
        let cache = QueryCache::new();
        let key = key_of(&[sym(0).ult(&c32(5))]);
        assert_eq!(cache.lookup(&key, QueryGrade::Model), CacheAnswer::Miss);
        cache.insert(key.clone(), SatResult::Unsat);
        assert_eq!(cache.lookup(&key, QueryGrade::Model), CacheAnswer::Exact(SatResult::Unsat));
        assert_eq!(cache.stats().exact_hits, 1);
    }

    #[test]
    fn unsat_subset_proves_superset_unsat() {
        let cache = QueryCache::new();
        let a = sym(0).ult(&c32(5));
        let b = c32(10).ult(&sym(0));
        let extra = sym(1).eq(&c32(7));
        cache.insert(key_of(&[a.clone(), b.clone()]), SatResult::Unsat);
        let superset = key_of(&[a, b, extra]);
        assert_eq!(cache.lookup(&superset, QueryGrade::Model), CacheAnswer::UnsatSubset);
    }

    #[test]
    fn model_reuse_is_verdict_grade_only() {
        let cache = QueryCache::new();
        let mut model = Assignment::new();
        model.set(SymId(0), 42);
        cache.insert(key_of(&[sym(0).eq(&c32(42))]), SatResult::Sat(model));
        // A *different* query the cached model happens to satisfy.
        let query = key_of(&[sym(0).ult(&c32(100))]);
        match cache.lookup(&query, QueryGrade::Verdict) {
            CacheAnswer::ModelReuse(m) => assert_eq!(m.get_or_zero(SymId(0)), 42),
            other => panic!("expected model reuse, got {other:?}"),
        }
        // Model-grade callers must fall through to a deterministic solve.
        assert_eq!(cache.lookup(&query, QueryGrade::Model), CacheAnswer::Miss);
    }

    #[test]
    fn full_cache_degrades_gracefully_not_wholesale() {
        // Regression for the old clear-the-world policy: a hot entry must
        // survive arbitrarily many cold insertions once the cache is full.
        let cache = QueryCache::with_capacity(SHARDS * 4);
        let hot = key_of(&[sym(0).eq(&c32(0xdead))]);
        cache.insert(hot.clone(), SatResult::Unsat);
        for i in 0..1000u64 {
            // Touch the hot key so its recency stamp stays fresh.
            assert_eq!(
                cache.lookup(&hot, QueryGrade::Model),
                CacheAnswer::Exact(SatResult::Unsat),
                "hot entry evicted after {i} cold inserts"
            );
            cache.insert(key_of(&[sym(1).eq(&c32(i))]), SatResult::Unsat);
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "capacity bound never engaged");
        assert!(cache.len() <= SHARDS * 4 + SHARDS, "cache exceeded its bound");
        assert_eq!(stats.exact_hits, 1000, "hot entry was lost to eviction");
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(QueryCache::new());
        let key = key_of(&[sym(0).ult(&c32(9))]);
        let mut model = Assignment::new();
        model.set(SymId(0), 3);
        cache.insert(key.clone(), SatResult::Sat(model));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        assert!(matches!(
                            cache.lookup(&key, QueryGrade::Verdict),
                            CacheAnswer::Exact(SatResult::Sat(_))
                        ));
                    }
                });
            }
        });
        assert_eq!(cache.stats().exact_hits, 400);
    }
}
