//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! This is the propositional core of the bitvector decision procedure: the
//! bit-blaster (see [`crate::blast`]) reduces path-constraint queries to CNF
//! and this solver decides them. The implementation follows the classic
//! MiniSat recipe: two-watched-literal propagation, VSIDS-style activity
//! ordering, first-UIP conflict analysis with backjumping, phase saving, and
//! geometric restarts.

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// A literal: a variable or its negation.
///
/// Encoded as `var * 2 + sign` where `sign == 1` means negated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// Builds a literal from a variable and a polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 * 2 + (!positive) as u32)
    }

    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit::new(var, true)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit::new(var, false)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if this literal is positive (non-negated).
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complement literal.
    #[inline]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Tri-state assignment value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Outcome of a SAT query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    /// A satisfying assignment exists (read it with [`SatSolver::value`]).
    Sat,
    /// No satisfying assignment exists.
    Unsat,
}

const REASON_NONE: u32 = u32::MAX;
const REASON_DECISION: u32 = u32::MAX - 1;

/// Conflicts between polls of the cooperative cancellation flag — frequent
/// enough to stop a losing portfolio lane quickly, rare enough that the
/// atomic load never shows up in propagation-bound profiles.
pub const CANCEL_POLL_CONFLICTS: u64 = 64;

/// The CDCL solver.
///
/// # Examples
///
/// ```
/// use ddt_solver::sat::{Lit, SatOutcome, SatSolver, Var};
///
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert_eq!(s.solve(), SatOutcome::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
pub struct SatSolver {
    /// Clause database; learned clauses are appended after problem clauses.
    clauses: Vec<Vec<Lit>>,
    /// Watch lists: for each literal, the clauses watching it.
    watches: Vec<Vec<u32>>,
    /// Current assignment per variable.
    assigns: Vec<LBool>,
    /// Saved phase per variable (used to bias decisions).
    phase: Vec<bool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause index per variable (or `REASON_*` sentinel).
    reason: Vec<u32>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Start index in `trail` of each decision level.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// True once an empty clause was added; the instance is trivially unsat.
    dead: bool,
    /// Statistics: total conflicts observed.
    pub conflicts: u64,
    /// Statistics: total decisions made.
    pub decisions: u64,
    /// Statistics: total propagations performed.
    pub propagations: u64,
    /// Scratch marks used by conflict analysis.
    seen: Vec<bool>,
    /// Max-heap of candidate decision variables, ordered by activity.
    /// Long-lived cores (the incremental session) grow to hundreds of
    /// thousands of variables; a linear argmax scan per decision would make
    /// every probe pay O(vars · decisions), so decisions must be O(log n).
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `HEAP_ABSENT`.
    heap_pos: Vec<u32>,
    /// Cooperative cancellation flag, polled between conflicts (the
    /// portfolio's first-answer-wins kill switch). `None` = never cancel.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// True when the last `solve` returned early because `cancel` was set.
    /// An aborted solve reports `Unsat` as a placeholder; callers that use
    /// cancellation must check this flag and discard the outcome.
    aborted: bool,
}

const HEAP_ABSENT: u32 = u32::MAX;

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            dead: false,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            seen: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            cancel: None,
            aborted: false,
        }
    }

    /// Installs a cooperative cancellation flag. While set, `solve` polls it
    /// every [`CANCEL_POLL_CONFLICTS`] conflicts and returns early (with
    /// [`Self::aborted`] raised) once it reads true. Used by the racing
    /// portfolio to stop losing lanes after the first answer arrives.
    pub fn set_cancel(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Removes the cancellation flag; subsequent solves run to completion.
    pub fn clear_cancel(&mut self) {
        self.cancel = None;
    }

    /// True when the last `solve` was cancelled rather than decided. The
    /// reported outcome is meaningless in that case.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    #[inline]
    fn cancelled(&self) -> bool {
        match &self.cancel {
            Some(f) => f.load(std::sync::atomic::Ordering::Relaxed),
            None => false,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(REASON_NONE);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_pos.push(HEAP_ABSENT);
        self.heap_insert(v.0);
        v
    }

    /// Decision order: higher activity first, lower variable index on ties.
    /// The tie-break makes the heap a *total* order, so `decide` returns
    /// exactly the variable a full argmax scan would — the heap changes
    /// complexity, never the search trajectory.
    #[inline]
    fn heap_better(&self, a: u32, b: u32) -> bool {
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        let v = self.heap[i];
        while i > 0 {
            let p = (i - 1) / 2;
            let pv = self.heap[p];
            if !self.heap_better(v, pv) {
                break;
            }
            self.heap[i] = pv;
            self.heap_pos[pv as usize] = i as u32;
            i = p;
        }
        self.heap[i] = v;
        self.heap_pos[v as usize] = i as u32;
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        let v = self.heap[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let c = if r < self.heap.len() && self.heap_better(self.heap[r], self.heap[l]) {
                r
            } else {
                l
            };
            let cv = self.heap[c];
            if !self.heap_better(cv, v) {
                break;
            }
            self.heap[i] = cv;
            self.heap_pos[cv as usize] = i as u32;
            i = c;
        }
        self.heap[i] = v;
        self.heap_pos[v as usize] = i as u32;
    }

    fn heap_insert(&mut self, v: u32) {
        if self.heap_pos[v as usize] != HEAP_ABSENT {
            return;
        }
        self.heap_pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = HEAP_ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (problem + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// True once the clause database itself is unsatisfiable (an empty or
    /// level-0-conflicting clause was added). A dead solver answers every
    /// `solve` with `Unsat`, so long-lived users (the incremental session)
    /// check this to distinguish "unsat under assumptions" from "core gone
    /// bad" before trusting an answer.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_pos()),
            LBool::False => LBool::from_bool(!l.is_pos()),
        }
    }

    /// Adds a clause. Returns `false` if the clause makes the instance
    /// trivially unsatisfiable (empty clause, or conflicting unit at level 0).
    ///
    /// Must be called at decision level 0 (i.e. before or between `solve`
    /// calls; the solver backtracks to level 0 after each `solve`).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "add_clause at level 0 only");
        if self.dead {
            return false;
        }
        // Simplify: drop duplicate/false literals, detect tautology/satisfied.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!((l.var().0 as usize) < self.num_vars(), "undeclared variable");
            match self.lit_value(l) {
                LBool::True => return true, // Already satisfied at level 0.
                LBool::False => continue,   // Permanently false literal.
                LBool::Undef => {}
            }
            if c.contains(&l.negate()) {
                return true; // Tautology.
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => {
                self.dead = true;
                false
            }
            1 => {
                self.enqueue(c[0], REASON_NONE);
                if self.propagate().is_some() {
                    self.dead = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(c);
                true
            }
        }
    }

    fn attach_clause(&mut self, c: Vec<Lit>) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[c[0].index()].push(idx);
        self.watches[c[1].index()].push(idx);
        self.clauses.push(c);
        idx
    }

    #[inline]
    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().0 as usize;
        self.assigns[v] = LBool::from_bool(l.is_pos());
        self.phase[v] = l.is_pos();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        #[inline]
        fn lv(assigns: &[LBool], l: Lit) -> LBool {
            match assigns[(l.0 >> 1) as usize] {
                LBool::Undef => LBool::Undef,
                LBool::True => LBool::from_bool(l.is_pos()),
                LBool::False => LBool::from_bool(!l.is_pos()),
            }
        }
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = p.negate();
            // Take the watch list; re-add entries we keep.
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                // Disjoint field borrows: clause data vs. assignments/watches.
                let assigns = &self.assigns;
                let clause = &mut self.clauses[ci as usize];
                // Ensure the false literal is at position 1.
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                let first = clause[0];
                if lv(assigns, first) == LBool::True {
                    i += 1;
                    continue; // Clause satisfied; keep watching.
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..clause.len() {
                    if lv(assigns, clause[k]) != LBool::False {
                        clause.swap(1, k);
                        let new_watch = clause[1];
                        self.watches[new_watch.index()].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if lv(assigns, first) == LBool::False {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
            self.watches[false_lit.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            // Uniform rescale preserves relative order, so the heap
            // invariant survives without a rebuild.
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.heap_pos[v.0 as usize];
        if pos != HEAP_ABSENT {
            self.heap_sift_up(pos as usize);
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    #[allow(clippy::needless_range_loop)] // `start` skips the asserting slot.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // Slot 0 holds the asserting literal.
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut idx = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;
        loop {
            // Clone: conflict analysis is rare relative to propagation, and
            // `bump_var` below needs `&mut self`.
            let clause = self.clauses[confl as usize].clone();
            let start = if p.is_some() { 1 } else { 0 };
            for k in start..clause.len() {
                let q = clause[k];
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Select next literal to expand from the trail.
            loop {
                idx -= 1;
                let l = self.trail[idx];
                if self.seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var().0 as usize;
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.unwrap().negate();
                break;
            }
            confl = self.reason[pv];
            debug_assert!(confl < REASON_DECISION);
        }
        // Clear seen flags for the learned clause literals.
        for l in &learned {
            self.seen[l.var().0 as usize] = false;
        }
        // Backjump level = max level among learned[1..].
        let mut bt = 0;
        let mut max_i = 1;
        for (i, l) in learned.iter().enumerate().skip(1) {
            let lv = self.level[l.var().0 as usize];
            if lv > bt {
                bt = lv;
                max_i = i;
            }
        }
        if learned.len() > 1 {
            learned.swap(1, max_i);
        }
        (learned, bt)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var().0 as usize;
                self.assigns[v] = LBool::Undef;
                self.reason[v] = REASON_NONE;
                self.heap_insert(v as u32);
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        // Pop until an unassigned variable surfaces. Assigned entries are
        // stale (lazy deletion); dropping them is safe because every
        // variable is re-inserted the moment `cancel_until` unassigns it,
        // so the heap always contains every unassigned variable.
        while let Some(v) = self.heap_pop() {
            if self.assigns[v as usize] == LBool::Undef {
                return Some(Lit::new(Var(v), self.phase[v as usize]));
            }
        }
        None
    }

    /// Decides satisfiability of the current clause set.
    ///
    /// After `SatOutcome::Sat`, the model is readable via [`Self::value`]
    /// until the next `add_clause`/`solve`. The solver backtracks to level 0
    /// before returning, but keeps the final polarity of each variable in
    /// the saved phases, which `value` reports for `Sat`.
    pub fn solve(&mut self) -> SatOutcome {
        self.solve_assuming(&[])
    }

    /// Decides satisfiability under temporary assumptions.
    ///
    /// Assumptions are treated as decisions at the outermost levels; they do
    /// not persist after the call.
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SatOutcome {
        self.aborted = false;
        if self.dead {
            return SatOutcome::Unsat;
        }
        let mut restart_limit = 128u64;
        let mut conflicts_here = 0u64;
        let model_found = 'outer: loop {
            // (Re)establish assumptions after any restart.
            self.cancel_until(0);
            if self.propagate().is_some() {
                self.dead = true;
                break 'outer false;
            }
            for &a in assumptions {
                match self.lit_value(a) {
                    LBool::True => continue,
                    LBool::False => break 'outer false,
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, REASON_DECISION);
                        if let Some(confl) = self.propagate() {
                            // Conflict directly under assumptions: analyze to
                            // learn, then report unsat-under-assumptions.
                            if self.trail_lim.len() as u32 > 0 {
                                let (learned, _) = self.analyze(confl);
                                self.cancel_until(0);
                                if learned.len() == 1 {
                                    self.enqueue(learned[0], REASON_NONE);
                                    if self.propagate().is_some() {
                                        self.dead = true;
                                    }
                                } else {
                                    self.attach_clause(learned);
                                }
                            }
                            break 'outer false;
                        }
                    }
                }
            }
            let assumption_level = self.trail_lim.len() as u32;
            loop {
                if let Some(confl) = self.propagate() {
                    self.conflicts += 1;
                    conflicts_here += 1;
                    if conflicts_here % CANCEL_POLL_CONFLICTS == 0 && self.cancelled() {
                        self.aborted = true;
                        break 'outer false;
                    }
                    if self.trail_lim.len() as u32 <= assumption_level {
                        // Conflict at or below the assumption levels.
                        if assumption_level == 0 {
                            self.dead = true;
                        }
                        break 'outer false;
                    }
                    let (learned, mut bt) = self.analyze(confl);
                    if bt < assumption_level {
                        bt = assumption_level;
                    }
                    self.cancel_until(bt);
                    if learned.len() == 1 {
                        if self.lit_value(learned[0]) == LBool::False {
                            break 'outer false;
                        }
                        if self.lit_value(learned[0]) == LBool::Undef {
                            self.enqueue(learned[0], REASON_NONE);
                        }
                    } else {
                        let ci = self.attach_clause(learned);
                        let first = self.clauses[ci as usize][0];
                        if self.lit_value(first) == LBool::Undef {
                            self.enqueue(first, ci);
                        }
                    }
                    self.var_inc *= 1.0 / 0.95;
                    if conflicts_here >= restart_limit {
                        conflicts_here = 0;
                        restart_limit = restart_limit.saturating_mul(3) / 2;
                        continue 'outer; // Restart.
                    }
                } else {
                    match self.decide() {
                        None => break 'outer true,
                        Some(l) => {
                            self.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(l, REASON_DECISION);
                        }
                    }
                }
            }
        };
        // Snapshot phases as the model, then backtrack.
        if model_found {
            for v in 0..self.num_vars() {
                if let LBool::True = self.assigns[v] {
                    self.phase[v] = true;
                } else if let LBool::False = self.assigns[v] {
                    self.phase[v] = false;
                }
            }
        }
        self.cancel_until(0);
        if model_found {
            SatOutcome::Sat
        } else {
            SatOutcome::Unsat
        }
    }

    /// Reads a variable's value from the last satisfying model.
    ///
    /// Returns `None` only for variables created after the last `solve`.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.phase.get(v.0 as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut SatSolver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn empty_is_sat() {
        let mut s = SatSolver::new();
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn unit_clauses() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[1])]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(!s.add_clause(&[Lit::neg(v[0])]));
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (a -> b), (b -> c), a  =>  c must be true.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::pos(v[0])]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = SatSolver::new();
        let mut p = [[Var(0); 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..3 {
            s.add_clause(&[Lit::pos(p[i][0]), Lit::pos(p[i][1])]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        let (np, nh) = (4usize, 3usize);
        let mut s = SatSolver::new();
        let mut p = vec![vec![Var(0); nh]; np];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            let cl: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&cl);
        }
        for j in 0..nh {
            for i1 in 0..np {
                for i2 in (i1 + 1)..np {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unsat);
        assert!(s.conflicts > 0, "must have exercised conflict analysis");
    }

    #[test]
    fn xor_chain_is_sat_with_consistent_model() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 0  — satisfiable.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut SatSolver, a: Var, b: Var, val: bool| {
            if val {
                s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
                s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
            } else {
                s.add_clause(&[Lit::pos(a), Lit::neg(b)]);
                s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
            }
        };
        xor(&mut s, v[0], v[1], true);
        xor(&mut s, v[1], v[2], true);
        xor(&mut s, v[0], v[2], false);
        assert_eq!(s.solve(), SatOutcome::Sat);
        let m: Vec<bool> = v.iter().map(|&x| s.value(x).unwrap()).collect();
        assert_ne!(m[0], m[1]);
        assert_ne!(m[1], m[2]);
        assert_eq!(m[0], m[2]);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert_eq!(s.solve_assuming(&[Lit::neg(v[0]), Lit::neg(v[1])]), SatOutcome::Unsat);
        // Without assumptions, still satisfiable.
        assert_eq!(s.solve(), SatOutcome::Sat);
        // Contradictory assumption pair.
        assert_eq!(s.solve_assuming(&[Lit::pos(v[0]), Lit::neg(v[0])]), SatOutcome::Unsat);
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn tautology_and_duplicates_are_handled() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])])); // Tautology dropped.
        assert!(s.add_clause(&[Lit::pos(v[1]), Lit::pos(v[1])])); // Duplicate collapsed.
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Small random instances cross-checked against exhaustive search.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..60 {
            let nvars = 8;
            let nclauses = 3 + (next() % 40) as usize;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u64) as u32;
                    let pol = next() % 2 == 0;
                    c.push((v, pol));
                }
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'asg: for m in 0u32..(1 << nvars) {
                for c in &clauses {
                    if !c.iter().any(|&(v, pol)| ((m >> v) & 1 == 1) == pol) {
                        continue 'asg;
                    }
                }
                brute_sat = true;
                break;
            }
            // Solver.
            let mut s = SatSolver::new();
            let vars = lits(&mut s, nvars);
            let mut alive = true;
            for c in &clauses {
                let cl: Vec<Lit> =
                    c.iter().map(|&(v, pol)| Lit::new(vars[v as usize], pol)).collect();
                alive &= s.add_clause(&cl);
            }
            let got = if alive { s.solve() } else { SatOutcome::Unsat };
            assert_eq!(
                got,
                if brute_sat { SatOutcome::Sat } else { SatOutcome::Unsat },
                "solver disagrees with brute force on {clauses:?}"
            );
            // If sat, verify the model actually satisfies all clauses.
            if got == SatOutcome::Sat {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&(v, pol)| s.value(vars[v as usize]).unwrap() == pol),
                        "model does not satisfy {c:?}"
                    );
                }
            }
        }
    }
}
