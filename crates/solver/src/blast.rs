//! Tseitin bit-blasting of bitvector expressions to CNF.
//!
//! Each [`Expr`] is lowered to a vector of SAT literals, least-significant
//! bit first. Gate outputs are fresh variables constrained by Tseitin
//! clauses. Lowered expressions are cached so shared subtrees blast once.

use std::collections::HashMap;

use ddt_expr::{
    BinOp, //
    CmpOp,
    Expr,
    ExprNode,
    SymId,
};

use crate::sat::{Lit, SatSolver};

/// Bit-blasting context over a [`SatSolver`].
pub struct Blaster {
    /// The literal that is constantly true (unit-clause-asserted variable).
    true_lit: Lit,
    /// Bits allocated per symbolic variable.
    sym_bits: HashMap<SymId, Vec<Lit>>,
    /// Structural cache of lowered expressions.
    cache: HashMap<Expr, Vec<Lit>>,
}

impl Blaster {
    /// Creates a blaster, allocating the constant-true variable in `sat`.
    pub fn new(sat: &mut SatSolver) -> Blaster {
        let t = sat.new_var();
        sat.add_clause(&[Lit::pos(t)]);
        Blaster { true_lit: Lit::pos(t), sym_bits: HashMap::new(), cache: HashMap::new() }
    }

    /// The constant-true literal.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The constant-false literal.
    pub fn false_lit(&self) -> Lit {
        self.true_lit.negate()
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.true_lit()
        } else {
            self.false_lit()
        }
    }

    /// Returns (allocating on first use) the bit literals of symbol `id`.
    pub fn sym_lits(&mut self, sat: &mut SatSolver, id: SymId, width: u32) -> Vec<Lit> {
        if let Some(bits) = self.sym_bits.get(&id) {
            assert_eq!(bits.len(), width as usize, "symbol {id} used at two widths");
            return bits.clone();
        }
        let bits: Vec<Lit> = (0..width).map(|_| Lit::pos(sat.new_var())).collect();
        self.sym_bits.insert(id, bits.clone());
        bits
    }

    /// Returns the model value of symbol `id` after a Sat outcome, or `None`
    /// if the symbol never appeared in any blasted constraint.
    pub fn sym_model(&self, sat: &SatSolver, id: SymId) -> Option<u64> {
        let bits = self.sym_bits.get(&id)?;
        let mut v = 0u64;
        for (i, l) in bits.iter().enumerate() {
            let bit = sat.value(l.var()).unwrap_or(false);
            if bit == l.is_pos() {
                v |= 1 << i;
            }
        }
        Some(v)
    }

    /// Iterates over symbols that have been blasted.
    pub fn blasted_syms(&self) -> impl Iterator<Item = SymId> + '_ {
        self.sym_bits.keys().copied()
    }

    /// Asserts that the 1-bit expression `e` is true.
    pub fn assert_true(&mut self, sat: &mut SatSolver, e: &Expr) {
        assert_eq!(e.width(), 1, "can only assert booleans");
        let bits = self.blast(sat, e);
        sat.add_clause(&[bits[0]]);
    }

    /// Lowers `e` to a literal vector (LSB first), with caching.
    pub fn blast(&mut self, sat: &mut SatSolver, e: &Expr) -> Vec<Lit> {
        if let Some(bits) = self.cache.get(e) {
            return bits.clone();
        }
        let bits = self.blast_uncached(sat, e);
        debug_assert_eq!(bits.len(), e.width() as usize);
        self.cache.insert(e.clone(), bits.clone());
        bits
    }

    fn blast_uncached(&mut self, sat: &mut SatSolver, e: &Expr) -> Vec<Lit> {
        match e.node() {
            ExprNode::Const { bits, width } => {
                (0..*width).map(|i| self.const_lit((bits >> i) & 1 == 1)).collect()
            }
            ExprNode::Sym { id, width } => self.sym_lits(sat, *id, *width),
            ExprNode::Not(a) => {
                self.blast(sat, a).into_iter().map(|l| l.negate()).collect()
            }
            ExprNode::Neg(a) => {
                // -x = ~x + 1.
                let w = a.width();
                let nx: Vec<Lit> = self.blast(sat, a).into_iter().map(|l| l.negate()).collect();
                let one: Vec<Lit> = (0..w).map(|i| self.const_lit(i == 0)).collect();
                self.adder(sat, &nx, &one, self.false_lit()).0
            }
            ExprNode::Bin(op, a, b) => {
                let w = a.width();
                let x = self.blast(sat, a);
                let y = self.blast(sat, b);
                match op {
                    BinOp::Add => self.adder(sat, &x, &y, self.false_lit()).0,
                    BinOp::Sub => {
                        let ny: Vec<Lit> = y.iter().map(|l| l.negate()).collect();
                        self.adder(sat, &x, &ny, self.true_lit()).0
                    }
                    BinOp::Mul => self.multiplier(sat, &x, &y),
                    BinOp::And => self.zipmap(sat, &x, &y, GateKind::And),
                    BinOp::Or => self.zipmap(sat, &x, &y, GateKind::Or),
                    BinOp::Xor => self.zipmap(sat, &x, &y, GateKind::Xor),
                    BinOp::Shl => self.shifter(sat, &x, &y, ShiftKind::Left),
                    BinOp::LShr => self.shifter(sat, &x, &y, ShiftKind::LogicalRight),
                    BinOp::AShr => self.shifter(sat, &x, &y, ShiftKind::ArithRight),
                    BinOp::UDiv | BinOp::URem | BinOp::SDiv | BinOp::SRem => {
                        self.division(sat, *op, a, b, w)
                    }
                }
            }
            ExprNode::Cmp(op, a, b) => {
                let x = self.blast(sat, a);
                let y = self.blast(sat, b);
                let r = match op {
                    CmpOp::Eq => self.equality(sat, &x, &y),
                    CmpOp::Ne => self.equality(sat, &x, &y).negate(),
                    CmpOp::Ult => self.less_than(sat, &x, &y, false, true),
                    CmpOp::Ule => self.less_than(sat, &x, &y, false, false),
                    CmpOp::Slt => self.less_than(sat, &x, &y, true, true),
                    CmpOp::Sle => self.less_than(sat, &x, &y, true, false),
                };
                vec![r]
            }
            ExprNode::ZExt { e, width } => {
                let mut bits = self.blast(sat, e);
                bits.resize(*width as usize, self.false_lit());
                bits
            }
            ExprNode::SExt { e, width } => {
                let mut bits = self.blast(sat, e);
                let sign = *bits.last().expect("non-empty");
                bits.resize(*width as usize, sign);
                bits
            }
            ExprNode::Extract { e, hi, lo } => {
                let bits = self.blast(sat, e);
                bits[*lo as usize..=*hi as usize].to_vec()
            }
            ExprNode::Concat { hi, lo } => {
                let mut bits = self.blast(sat, lo);
                bits.extend(self.blast(sat, hi));
                bits
            }
            ExprNode::Ite { cond, then, els } => {
                let c = self.blast(sat, cond)[0];
                let t = self.blast(sat, then);
                let f = self.blast(sat, els);
                t.iter().zip(f.iter()).map(|(&ti, &fi)| self.mux(sat, c, ti, fi)).collect()
            }
        }
    }

    // ---- gate primitives -------------------------------------------------

    fn gate(&mut self, sat: &mut SatSolver, kind: GateKind, a: Lit, b: Lit) -> Lit {
        // Constant propagation keeps the CNF small.
        let (t, f) = (self.true_lit(), self.false_lit());
        match kind {
            GateKind::And => {
                if a == f || b == f {
                    return f;
                }
                if a == t {
                    return b;
                }
                if b == t {
                    return a;
                }
                if a == b {
                    return a;
                }
                if a == b.negate() {
                    return f;
                }
            }
            GateKind::Or => {
                if a == t || b == t {
                    return t;
                }
                if a == f {
                    return b;
                }
                if b == f {
                    return a;
                }
                if a == b {
                    return a;
                }
                if a == b.negate() {
                    return t;
                }
            }
            GateKind::Xor => {
                if a == f {
                    return b;
                }
                if b == f {
                    return a;
                }
                if a == t {
                    return b.negate();
                }
                if b == t {
                    return a.negate();
                }
                if a == b {
                    return f;
                }
                if a == b.negate() {
                    return t;
                }
            }
        }
        let o = Lit::pos(sat.new_var());
        match kind {
            GateKind::And => {
                sat.add_clause(&[o.negate(), a]);
                sat.add_clause(&[o.negate(), b]);
                sat.add_clause(&[o, a.negate(), b.negate()]);
            }
            GateKind::Or => {
                sat.add_clause(&[o, a.negate()]);
                sat.add_clause(&[o, b.negate()]);
                sat.add_clause(&[o.negate(), a, b]);
            }
            GateKind::Xor => {
                sat.add_clause(&[o.negate(), a, b]);
                sat.add_clause(&[o.negate(), a.negate(), b.negate()]);
                sat.add_clause(&[o, a.negate(), b]);
                sat.add_clause(&[o, a, b.negate()]);
            }
        }
        o
    }

    fn and(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        self.gate(sat, GateKind::And, a, b)
    }

    fn or(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        self.gate(sat, GateKind::Or, a, b)
    }

    fn xor(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        self.gate(sat, GateKind::Xor, a, b)
    }

    /// 2:1 multiplexer: `c ? t : f`.
    fn mux(&mut self, sat: &mut SatSolver, c: Lit, t: Lit, f: Lit) -> Lit {
        if t == f {
            return t;
        }
        if c == self.true_lit() {
            return t;
        }
        if c == self.false_lit() {
            return f;
        }
        let a = self.and(sat, c, t);
        let b = self.and(sat, c.negate(), f);
        self.or(sat, a, b)
    }

    fn zipmap(&mut self, sat: &mut SatSolver, x: &[Lit], y: &[Lit], kind: GateKind) -> Vec<Lit> {
        x.iter().zip(y.iter()).map(|(&a, &b)| self.gate(sat, kind, a, b)).collect()
    }

    /// Ripple-carry adder; returns (sum bits, carry-out).
    fn adder(&mut self, sat: &mut SatSolver, x: &[Lit], y: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
        let mut sum = Vec::with_capacity(x.len());
        let mut carry = cin;
        for (&a, &b) in x.iter().zip(y.iter()) {
            let axb = self.xor(sat, a, b);
            sum.push(self.xor(sat, axb, carry));
            // carry_out = (a & b) | (carry & (a ^ b)).
            let ab = self.and(sat, a, b);
            let ca = self.and(sat, carry, axb);
            carry = self.or(sat, ab, ca);
        }
        (sum, carry)
    }

    /// Shift-and-add multiplier (modulo 2^w).
    fn multiplier(&mut self, sat: &mut SatSolver, x: &[Lit], y: &[Lit]) -> Vec<Lit> {
        let w = x.len();
        let mut acc: Vec<Lit> = vec![self.false_lit(); w];
        for i in 0..w {
            // Partial product: (y[i] ? x : 0) << i, truncated to w bits.
            let mut pp: Vec<Lit> = vec![self.false_lit(); w];
            for j in 0..(w - i) {
                pp[i + j] = self.and(sat, y[i], x[j]);
            }
            acc = self.adder(sat, &acc, &pp, self.false_lit()).0;
        }
        acc
    }

    /// Barrel shifter with our ISA semantics (amount >= w yields 0 for
    /// logical shifts, sign-fill saturation for arithmetic right shift).
    #[allow(clippy::needless_range_loop)] // Stage index is also a shift amount.
    fn shifter(&mut self, sat: &mut SatSolver, x: &[Lit], y: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = x.len();
        let stages = usize::BITS - (w - 1).leading_zeros(); // ceil(log2 w).
        let sign = *x.last().expect("non-empty");
        let fill = match kind {
            ShiftKind::ArithRight => sign,
            _ => self.false_lit(),
        };
        let mut cur: Vec<Lit> = x.to_vec();
        for s in 0..stages as usize {
            let amt = 1usize << s;
            let ctrl = y[s];
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = match kind {
                    ShiftKind::Left => {
                        if i >= amt {
                            cur[i - amt]
                        } else {
                            self.false_lit()
                        }
                    }
                    ShiftKind::LogicalRight | ShiftKind::ArithRight => {
                        if i + amt < w {
                            cur[i + amt]
                        } else {
                            fill
                        }
                    }
                };
                next.push(self.mux(sat, ctrl, shifted, cur[i]));
            }
            cur = next;
        }
        // If any shift-amount bit above the used stages is set, or the used
        // bits encode >= w, the result is all-fill (0 or sign).
        let mut oversize = self.false_lit();
        for (i, &yl) in y.iter().enumerate() {
            if i >= stages as usize {
                oversize = self.or(sat, oversize, yl);
            }
        }
        // Amounts in [w, 2^stages) via the low bits also overshoot.
        if !w.is_power_of_two() {
            // low_bits >= w check: compare y[0..stages] with constant w.
            let wconst: Vec<Lit> =
                (0..stages as usize).map(|i| self.const_lit((w >> i) & 1 == 1)).collect();
            let low: Vec<Lit> = y[..stages as usize].to_vec();
            let lt = self.less_than(sat, &low, &wconst, false, true);
            oversize = self.or(sat, oversize, lt.negate());
        }
        cur.into_iter().map(|b| self.mux(sat, oversize, fill, b)).collect()
    }

    /// Equality over bit vectors.
    fn equality(&mut self, sat: &mut SatSolver, x: &[Lit], y: &[Lit]) -> Lit {
        let mut acc = self.true_lit();
        for (&a, &b) in x.iter().zip(y.iter()) {
            let diff = self.xor(sat, a, b);
            acc = self.and(sat, acc, diff.negate());
        }
        acc
    }

    /// Comparison: x < y (strict) or x <= y.
    fn less_than(
        &mut self,
        sat: &mut SatSolver,
        x: &[Lit],
        y: &[Lit],
        signed: bool,
        strict: bool,
    ) -> Lit {
        let w = x.len();
        // Lexicographic from MSB down: lt = (xi < yi) | (xi == yi) & lt_rest.
        // For the sign bit under signed comparison the polarity flips
        // (1 means negative, so x_sign=1,y_sign=0 => x < y).
        let mut acc = if strict { self.false_lit() } else { self.true_lit() };
        for i in 0..w {
            let (a, b) = (x[i], y[i]);
            let (a, b) = if signed && i == w - 1 { (b, a) } else { (a, b) };
            // bit_lt = !a & b.
            let bit_lt = self.and(sat, a.negate(), b);
            let bit_eq = self.xor(sat, a, b).negate();
            let keep = self.and(sat, bit_eq, acc);
            acc = self.or(sat, bit_lt, keep);
        }
        acc
    }

    /// Division and remainder via the multiplication relation at double
    /// width: `a = b*q + r`, `r < b` when `b != 0`; SMT-LIB semantics when
    /// `b == 0` (udiv → all-ones, urem → a). Signed variants are built from
    /// the unsigned ones on magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if the operand width exceeds 32 bits (the relation is encoded
    /// at `2w` bits, which must fit in the 64-bit expression layer).
    fn division(&mut self, sat: &mut SatSolver, op: BinOp, a: &Expr, b: &Expr, w: u32) -> Vec<Lit> {
        assert!(w <= 32, "division blasting supports widths up to 32 bits");
        match op {
            BinOp::UDiv | BinOp::URem => {
                let (q, r) = self.udivrem(sat, a, b, w);
                if op == BinOp::UDiv {
                    self.blast(sat, &q)
                } else {
                    self.blast(sat, &r)
                }
            }
            BinOp::SDiv | BinOp::SRem => {
                // |a| and |b| via ite on sign bits.
                let zero = Expr::constant(0, w);
                let a_neg = a.slt(&zero);
                let b_neg = b.slt(&zero);
                let abs_a = Expr::ite(&a_neg, &a.neg(), a);
                let abs_b = Expr::ite(&b_neg, &b.neg(), b);
                let (q, r) = self.udivrem(sat, &abs_a, &abs_b, w);
                match op {
                    BinOp::SDiv => {
                        // Result negative iff signs differ (and b != 0).
                        let diff = a_neg.xor(&b_neg);
                        let signed_q = Expr::ite(&diff, &q.neg(), &q);
                        // Division by zero: all-ones per our semantics.
                        let b_zero = b.eq(&zero);
                        let out =
                            Expr::ite(&b_zero, &Expr::constant(u64::MAX, w), &signed_q);
                        self.blast(sat, &out)
                    }
                    BinOp::SRem => {
                        // Remainder takes the dividend's sign.
                        let signed_r = Expr::ite(&a_neg, &r.neg(), &r);
                        let b_zero = b.eq(&zero);
                        let out = Expr::ite(&b_zero, a, &signed_r);
                        self.blast(sat, &out)
                    }
                    _ => unreachable!(),
                }
            }
            _ => unreachable!("not a division op"),
        }
    }

    /// Introduces fresh (q, r) for unsigned a / b with defining constraints.
    fn udivrem(&mut self, sat: &mut SatSolver, a: &Expr, b: &Expr, w: u32) -> (Expr, Expr) {
        let q = self.fresh_vec(sat, w);
        let r = self.fresh_vec(sat, w);
        let zero = Expr::constant(0, w);
        let b_zero = b.eq(&zero);
        // Nonzero case: a == b*q + r at 2w bits (no wraparound) and r < b.
        let w2 = 2 * w;
        let rel = a
            .zext(w2)
            .eq(&b.zext(w2).mul(&q.zext(w2)).add(&r.zext(w2)));
        let rem_ok = r.ult(b);
        let nonzero_ok = rel.and(&rem_ok);
        // Zero case: q == all-ones, r == a.
        let zero_ok = q.eq(&Expr::constant(u64::MAX, w)).and(&r.eq(a));
        let constraint = Expr::ite(&b_zero, &zero_ok, &nonzero_ok);
        self.assert_true(sat, &constraint);
        (q, r)
    }

    /// Allocates a fresh w-bit value as an internal symbol of the blaster.
    ///
    /// Uses high symbol ids that the execution engine never allocates.
    fn fresh_vec(&mut self, sat: &mut SatSolver, w: u32) -> Expr {
        let id = SymId(0x8000_0000u32 | self.sym_bits.len() as u32);
        let bits: Vec<Lit> = (0..w).map(|_| Lit::pos(sat.new_var())).collect();
        self.sym_bits.insert(id, bits);
        Expr::sym(id, w)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum GateKind {
    And,
    Or,
    Xor,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithRight,
}
