//! Persistent incremental solver sessions.
//!
//! A [`Session`] keeps one [`SatSolver`] + [`Blaster`] pair alive across
//! successive verdict-grade queries instead of rebuilding them per query.
//! The key observation is that nothing a query *asserts* needs to be
//! permanent: every constraint is lowered to its Tseitin output literal and
//! passed to [`SatSolver::solve_assuming`] as an assumption, so the only
//! clauses that outlive a query are
//!
//! - Tseitin gate definitions (satisfiable by construction: they merely
//!   define gate outputs in terms of inputs), and
//! - the division relation constraints the blaster introduces for its
//!   internal quotient/remainder symbols (also definitional — for any
//!   dividend and divisor a witness exists),
//!
//! plus learned clauses, which CDCL derives by resolution over that database
//! alone and which are therefore sound facts about the circuit structure,
//! valid for every future query. The core can consequently never go dead
//! ([`SatSolver::is_dead`] is checked defensively anyway, falling back to a
//! fresh solve).
//!
//! What the session buys on the hot path: along a deepening execution path
//! the constraint prefix only grows, and under hash-consing a repeated
//! constraint is pointer-identical, so the blaster's memo table turns every
//! previously-seen conjunct into an O(1) lookup — each new branch pays only
//! for blasting its *one* new conjunct plus a SAT call that reuses all
//! learned structure. "Forking" a path costs nothing at all, because the
//! session holds no per-path state: sibling paths interleave freely on the
//! same core.
//!
//! ## Structural soundness and SymId reuse
//!
//! The session is shared across *all* paths a worker explores, and sibling
//! paths number their symbols independently (see `SymCounter` in
//! `ddt-symvm`): the same `SymId` may denote different symbols in different
//! queries. That is sound for the same reason the shared query cache is
//! sound — each query is a self-contained structural formula, and
//! assumptions activate only that query's constraints. The one hazard is a
//! `SymId` recurring at a *different width*, which the blaster treats as an
//! error; the session tracks first-seen widths and resets the core when a
//! conflict appears (counted in [`Session::resets`]).
//!
//! ## Why verdict-grade only
//!
//! Session models depend on solver history (phase saving, learned clauses
//! from earlier queries), so they are not the canonical model a fresh
//! canonical-order solve would produce. Verdicts, by contrast, are semantic
//! properties of the query. The session therefore only answers queries whose
//! models the caller discards; satisfying assignments it happens to find are
//! deposited in the cache's verdict-model ring, never in the exact map.

use std::collections::{BTreeSet, HashMap, HashSet};

use ddt_expr::{collect_sym_widths, Assignment, Expr, SymId};

use crate::blast::Blaster;
use crate::sat::{SatOutcome, SatSolver};

/// Variable-count cap before the core is rebuilt. The CDCL core's decision
/// loop scans all variables, and learned clauses are never garbage
/// collected, so an unboundedly growing core would eventually cost more
/// than fresh solves; resetting forgets learned structure but re-blasting
/// is cheap under the interner.
const MAX_VARS: usize = 200_000;

/// Clause-count cap before the core is rebuilt (problem + learned).
const MAX_CLAUSES: usize = 1_000_000;

/// Answer from a session probe.
pub(crate) enum ProbeAnswer {
    /// Satisfiable; the model covers the requested symbols (history
    /// dependent — verdict-grade use only).
    Sat(Assignment),
    /// Unsatisfiable under the asserted assumptions.
    Unsat,
}

/// A persistent incremental solving core (one per [`crate::Solver`]).
pub(crate) struct Session {
    sat: SatSolver,
    blaster: Blaster,
    /// First-seen width per symbol; a conflicting reuse forces a reset.
    sym_widths: HashMap<SymId, u32>,
    /// Constraints already width-checked this core generation (pointer
    /// hashing under the interner makes membership O(1)).
    width_checked: HashSet<Expr>,
    /// Queries answered by this session across all core generations.
    pub probes: u64,
    /// Times the core was rebuilt (size caps or symbol-width conflicts).
    pub resets: u64,
}

impl Session {
    pub fn new() -> Session {
        let (sat, blaster) = fresh_core();
        Session {
            sat,
            blaster,
            sym_widths: HashMap::new(),
            width_checked: HashSet::new(),
            probes: 0,
            resets: 0,
        }
    }

    /// SAT conflicts accumulated by the current core (for stats deltas).
    pub fn conflicts(&self) -> u64 {
        self.sat.conflicts
    }

    fn reset(&mut self) {
        let (sat, blaster) = fresh_core();
        self.sat = sat;
        self.blaster = blaster;
        self.sym_widths.clear();
        self.width_checked.clear();
        self.resets += 1;
    }

    /// Registers the symbol widths of `c`, reporting whether they are
    /// consistent with everything the current core has seen.
    fn widths_ok(&mut self, c: &Expr) -> bool {
        if self.width_checked.contains(c) {
            return true;
        }
        let mut widths = HashMap::new();
        collect_sym_widths(c, &mut widths);
        for (id, w) in &widths {
            match self.sym_widths.get(id) {
                Some(prev) if prev != w => return false,
                Some(_) => {}
                None => {
                    self.sym_widths.insert(*id, *w);
                }
            }
        }
        self.width_checked.insert(c.clone());
        true
    }

    /// Decides the conjunction of `key` (canonical order) on the persistent
    /// core. On `Sat` the returned model assigns every symbol in `syms`.
    ///
    /// Returns `None` when the session cannot answer soundly (a core that
    /// went dead — which the satisfiable-database invariant should prevent —
    /// after a defensive reset); the caller falls back to a fresh solve.
    pub fn probe(&mut self, key: &[Expr], syms: &BTreeSet<SymId>) -> Option<ProbeAnswer> {
        if self.sat.num_vars() > MAX_VARS || self.sat.num_clauses() > MAX_CLAUSES {
            self.reset();
        }
        if !key.iter().all(|c| self.widths_ok(c)) {
            // A SymId recurred at a new width: this query belongs to a path
            // whose numbering clashes with the core's. Start a fresh core
            // for it (after reset, registration of this key must succeed —
            // a single well-formed query uses each symbol at one width).
            self.reset();
            for c in key {
                if !self.widths_ok(c) {
                    return None; // Ill-formed query; let the fresh path assert.
                }
            }
        }
        let mut assumptions = Vec::with_capacity(key.len());
        for c in key {
            let bits = self.blaster.blast(&mut self.sat, c);
            assumptions.push(bits[0]);
        }
        if self.sat.is_dead() {
            // Should be unreachable (the permanent database is definitional,
            // hence satisfiable); recover rather than report a bogus Unsat.
            self.reset();
            return None;
        }
        let outcome = self.sat.solve_assuming(&assumptions);
        if self.sat.is_dead() {
            self.reset();
            return None;
        }
        self.probes += 1;
        Some(match outcome {
            SatOutcome::Unsat => ProbeAnswer::Unsat,
            SatOutcome::Sat => {
                let mut model = Assignment::new();
                for id in syms {
                    model.set(*id, self.blaster.sym_model(&self.sat, *id).unwrap_or(0));
                }
                ProbeAnswer::Sat(model)
            }
        })
    }

    /// [`Self::probe`] as a portfolio lane: the solve aborts (returning
    /// `None`) once `cancel` reads true. A defensive mid-probe reset swaps
    /// in a core without the flag — that probe then runs to completion,
    /// which is safe (its answer is genuine) if not promptly cancellable.
    pub fn probe_cancellable(
        &mut self,
        key: &[Expr],
        syms: &BTreeSet<SymId>,
        cancel: &std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> Option<ProbeAnswer> {
        self.sat.set_cancel(cancel.clone());
        let answer = self.probe(key, syms);
        // `self.sat` after `probe` is the core that ran the final solve (a
        // reset installs the replacement before solving), so `aborted` is
        // about this probe.
        let aborted = self.sat.aborted();
        self.sat.clear_cancel();
        if aborted {
            return None;
        }
        answer
    }
}

fn fresh_core() -> (SatSolver, Blaster) {
    let mut sat = SatSolver::new();
    let blaster = Blaster::new(&mut sat);
    (sat, blaster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_expr::{Expr, SymId};

    fn c32(v: u64) -> Expr {
        Expr::constant(v, 32)
    }

    fn sym(id: u32) -> Expr {
        Expr::sym(SymId(id), 32)
    }

    fn key_of(cs: &[Expr]) -> Vec<Expr> {
        ddt_expr::cache_key(cs)
    }

    fn syms_of(key: &[Expr]) -> BTreeSet<SymId> {
        let mut s = BTreeSet::new();
        for c in key {
            ddt_expr::collect_syms(c, &mut s);
        }
        s
    }

    fn probe(sess: &mut Session, cs: &[Expr]) -> ProbeAnswer {
        let key = key_of(cs);
        let syms = syms_of(&key);
        sess.probe(&key, &syms).expect("session must answer")
    }

    #[test]
    fn growing_prefix_reuses_the_core() {
        let mut sess = Session::new();
        let x = sym(0);
        let mut cs = vec![x.ult(&c32(100))];
        for i in 0..8u64 {
            cs.push(x.ne(&c32(i)));
            match probe(&mut sess, &cs) {
                ProbeAnswer::Sat(m) => {
                    let asg = m;
                    assert!(cs.iter().all(|c| c.eval_bool(&asg)));
                }
                ProbeAnswer::Unsat => panic!("prefix is satisfiable"),
            }
        }
        assert_eq!(sess.probes, 8);
        assert_eq!(sess.resets, 0);
    }

    #[test]
    fn unsat_under_assumptions_does_not_poison_later_queries() {
        let mut sess = Session::new();
        let x = sym(0);
        let contradiction = [x.ult(&c32(5)), c32(10).ult(&x)];
        assert!(matches!(probe(&mut sess, &contradiction), ProbeAnswer::Unsat));
        // The same core must still prove satisfiable queries satisfiable.
        let fine = [x.ult(&c32(5)), x.ne(&c32(0))];
        match probe(&mut sess, &fine) {
            ProbeAnswer::Sat(m) => assert!(fine.iter().all(|c| c.eval_bool(&m))),
            ProbeAnswer::Unsat => panic!("x in (0, 5) is satisfiable"),
        }
        assert_eq!(sess.resets, 0);
    }

    #[test]
    fn interleaved_sibling_queries_share_one_core() {
        // Two "paths" constraining the same SymId differently, interleaved:
        // structural solving keeps them independent.
        let mut sess = Session::new();
        let x = sym(0);
        let path_a = [x.eq(&c32(3))];
        let path_b = [x.eq(&c32(9))];
        for _ in 0..3 {
            match probe(&mut sess, &path_a) {
                ProbeAnswer::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)), 3),
                ProbeAnswer::Unsat => panic!(),
            }
            match probe(&mut sess, &path_b) {
                ProbeAnswer::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)), 9),
                ProbeAnswer::Unsat => panic!(),
            }
        }
        assert_eq!(sess.resets, 0);
    }

    #[test]
    fn width_conflict_resets_instead_of_panicking() {
        let mut sess = Session::new();
        let as32 = [sym(0).ult(&c32(5))];
        assert!(matches!(probe(&mut sess, &as32), ProbeAnswer::Sat(_)));
        // The same id reused at 8 bits (a sibling path's independent
        // numbering): must recycle the core, not die.
        let x8 = Expr::sym(SymId(0), 8);
        let as8 = [x8.eq(&Expr::constant(200, 8))];
        match probe(&mut sess, &as8) {
            ProbeAnswer::Sat(m) => assert_eq!(m.get_or_zero(SymId(0)) & 0xff, 200),
            ProbeAnswer::Unsat => panic!(),
        }
        assert_eq!(sess.resets, 1);
    }

    #[test]
    fn division_constraints_survive_across_queries() {
        // Division introduces permanently asserted definitional clauses;
        // they must not constrain later unrelated queries.
        let mut sess = Session::new();
        let x = sym(0);
        let div = [x.udiv(&c32(3)).eq(&c32(10))];
        match probe(&mut sess, &div) {
            ProbeAnswer::Sat(m) => {
                let v = m.get_or_zero(SymId(0)) & 0xffff_ffff;
                assert!((30..=32).contains(&v), "got {v}");
            }
            ProbeAnswer::Unsat => panic!(),
        }
        // An unrelated query on a fresh symbol.
        let y = sym(1);
        match probe(&mut sess, &[y.eq(&c32(77))]) {
            ProbeAnswer::Sat(m) => assert_eq!(m.get_or_zero(SymId(1)) & 0xffff_ffff, 77),
            ProbeAnswer::Unsat => panic!(),
        }
        assert_eq!(sess.resets, 0);
    }
}
