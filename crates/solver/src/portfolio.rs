//! A racing solver portfolio for hard verdict-grade queries.
//!
//! Query latency in CDCL is heavy-tailed: most branch-feasibility checks
//! decide in microseconds, but a rare query lands in a bad search region and
//! dominates a whole quantum. The standard mitigation (see the Baldoni
//! symbolic-execution survey, PAPERS.md) is a *portfolio*: run several
//! decision strategies concurrently and take the first answer. Because a
//! verdict is a semantic property of the constraint set, every lane returns
//! the same Sat/Unsat — whichever lane wins, exploration (and therefore the
//! campaign report) is byte-identical.
//!
//! Lanes:
//!
//! - **session** (caller thread): the persistent incremental core, strongest
//!   on deepening-path queries where everything but one conjunct is already
//!   blasted and learned clauses transfer;
//! - **fresh** (worker thread): a from-scratch canonical blast, strongest
//!   when the session's accumulated search state is a liability (its model,
//!   when it wins, is the canonical one for the key and is memoized as
//!   such);
//! - **probe** (worker thread): a shared-cache consultation (exact entry,
//!   UNSAT-subset subsumption, counterexample-ring evaluation) — in a
//!   multi-worker run a sibling may have deposited the answer after this
//!   worker's own pre-solve lookup missed.
//!
//! Cancellation order: a lane that produces an answer first *sends* it on
//! the result channel, then raises the shared cancel flag; the SAT cores
//! poll the flag between conflicts ([`crate::sat::CANCEL_POLL_CONFLICTS`])
//! and abandon their search. Send-before-cancel means the channel always
//! holds a message by the time any lane observes the flag, so the
//! block-for-answer path below cannot deadlock. An aborted lane's outcome is
//! discarded — [`SatSolver::aborted`] marks it meaningless — and the race
//! joins every lane before returning, so no solver thread outlives its
//! query.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use ddt_expr::{Assignment, Expr, SymId};

use crate::blast::Blaster;
use crate::cache::{CacheAnswer, QueryCache, QueryGrade};
use crate::sat::{SatOutcome, SatSolver};
use crate::session::{ProbeAnswer, Session};
use crate::SatResult;

/// Which lane answered first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Lane {
    Session,
    Fresh,
    Probe,
}

/// Result of one portfolio race.
pub(crate) struct RaceOutcome {
    pub result: SatResult,
    pub winner: Lane,
    /// SAT conflicts spent by the winning lane. Losing lanes' conflicts are
    /// not counted: their work is discarded by design, and the counter
    /// feeds per-verdict cost stats.
    pub conflicts: u64,
}

/// Message sent by a finishing lane: (lane, result, conflicts).
type LaneMsg = (Lane, SatResult, u64);

/// Races `part` (a canonical verdict-grade component key) across the
/// available lanes. The session lane runs on the caller's thread because it
/// borrows the solver's persistent core; the fresh and probe lanes run on
/// scoped worker threads. Always returns a decided verdict: the fresh lane
/// is complete and only aborts once another lane has already answered.
pub(crate) fn race(
    part: &[Expr],
    part_syms: &BTreeSet<SymId>,
    session: Option<&mut Session>,
    cache: Option<&Arc<QueryCache>>,
) -> RaceOutcome {
    let cancel = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<LaneMsg>();
    std::thread::scope(|scope| {
        // Fresh canonical blast lane.
        {
            let cancel = cancel.clone();
            let tx = tx.clone();
            scope.spawn(move || {
                let mut sat = SatSolver::new();
                sat.set_cancel(cancel.clone());
                let mut blaster = Blaster::new(&mut sat);
                for c in part {
                    blaster.assert_true(&mut sat, c);
                }
                let outcome = sat.solve();
                if sat.aborted() {
                    return; // Lost the race; outcome is meaningless.
                }
                let result = match outcome {
                    SatOutcome::Unsat => SatResult::Unsat,
                    SatOutcome::Sat => {
                        let mut model = Assignment::new();
                        for id in part_syms {
                            model.set(*id, blaster.sym_model(&sat, *id).unwrap_or(0));
                        }
                        SatResult::Sat(model)
                    }
                };
                let conflicts = sat.conflicts;
                let _ = tx.send((Lane::Fresh, result, conflicts));
                cancel.store(true, Ordering::Relaxed);
            });
        }
        // Cached-answer probe lane.
        if let Some(cache) = cache {
            let cancel = cancel.clone();
            let tx = tx.clone();
            let cache = Arc::clone(cache);
            scope.spawn(move || {
                if cancel.load(Ordering::Relaxed) {
                    return;
                }
                let result = match cache.lookup(part, QueryGrade::Verdict) {
                    CacheAnswer::Exact(hit) => hit,
                    CacheAnswer::UnsatSubset => SatResult::Unsat,
                    CacheAnswer::ModelReuse(m) => SatResult::Sat(m),
                    CacheAnswer::Miss => return, // Nothing to contribute.
                };
                let _ = tx.send((Lane::Probe, result, 0));
                cancel.store(true, Ordering::Relaxed);
            });
        }
        // Session lane, on this thread (it borrows the persistent core).
        let mut session_msg: Option<LaneMsg> = None;
        if let Some(session) = session {
            let before = session.conflicts();
            if let Some(answer) = session.probe_cancellable(part, part_syms, &cancel) {
                let conflicts = session.conflicts().saturating_sub(before);
                let result = match answer {
                    ProbeAnswer::Unsat => SatResult::Unsat,
                    ProbeAnswer::Sat(m) => SatResult::Sat(m),
                };
                session_msg = Some((Lane::Session, result, conflicts));
            }
        }
        drop(tx);
        let (winner, result, conflicts) = match session_msg {
            // The session decided; a worker lane still wins the race if its
            // answer is already in the channel (it finished first).
            Some(own) => match rx.try_recv() {
                Ok(msg) => msg,
                Err(_) => own,
            },
            // The session was cancelled mid-solve or could not answer: block
            // for the worker lanes. Send-before-cancel guarantees a message
            // is (or will be) in the channel.
            None => rx.recv().expect("a portfolio lane must answer"),
        };
        cancel.store(true, Ordering::Relaxed);
        RaceOutcome { result, winner, conflicts }
        // Scope exit joins both worker threads; cancelled cores give up at
        // their next conflict-poll.
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solver;

    fn sym(id: u32) -> Expr {
        Expr::sym(SymId(id), 32)
    }

    fn c32(v: u64) -> Expr {
        Expr::constant(v, 32)
    }

    /// A query that defeats the fast-path candidate models and slicing (one
    /// entangled component).
    fn hard_sat_query() -> Vec<Expr> {
        let x = sym(0);
        let y = sym(1);
        vec![
            x.add(&y).eq(&c32(0x1234_5678)),
            x.xor(&y).ne(&c32(0)),
            x.ult(&c32(0x9000_0000)),
            c32(0x100).ult(&y),
        ]
    }

    fn contradiction() -> Vec<Expr> {
        let x = sym(0);
        vec![x.ult(&c32(5)), c32(10).ult(&x)]
    }

    fn racing_solver() -> Solver {
        let mut s = Solver::new();
        s.set_portfolio_min_nodes(0); // Race everything.
        s
    }

    #[test]
    fn portfolio_agrees_with_plain_on_sat_and_unsat() {
        for q in [hard_sat_query(), contradiction()] {
            let mut racing = racing_solver();
            let mut plain = Solver::new();
            plain.set_portfolio(false);
            plain.set_slicing(false);
            plain.set_incremental(false);
            assert_eq!(racing.is_feasible(&q), plain.is_feasible(&q), "on {q:?}");
            assert!(racing.stats().portfolio_races > 0, "race never engaged");
        }
    }

    #[test]
    fn race_wins_are_attributed_to_exactly_one_lane() {
        let mut s = racing_solver();
        let q = hard_sat_query();
        assert!(s.is_feasible(&q));
        assert!(!s.is_feasible(&contradiction()));
        let st = s.stats();
        assert_eq!(
            st.portfolio_session_wins + st.portfolio_fresh_wins + st.portfolio_probe_wins,
            st.portfolio_races,
            "every race must have exactly one winner: {st:?}"
        );
    }

    #[test]
    fn repeated_races_stay_deterministic_in_verdict() {
        // Whatever lane wins each time, the verdict never flips.
        let q = hard_sat_query();
        for _ in 0..8 {
            let mut s = racing_solver();
            assert!(s.is_feasible(&q));
        }
    }

    #[test]
    fn race_without_session_or_cache_still_answers() {
        let mut s = Solver::uncached();
        s.set_portfolio_min_nodes(0);
        s.set_incremental(false); // Fresh lane only.
        assert!(s.is_feasible(&hard_sat_query()));
        assert!(!s.is_feasible(&contradiction()));
        let st = s.stats();
        assert_eq!(st.portfolio_fresh_wins, st.portfolio_races);
    }

    #[test]
    fn model_grade_checks_never_race() {
        let mut s = racing_solver();
        match s.check(&hard_sat_query()) {
            SatResult::Sat(m) => {
                assert!(hard_sat_query().iter().all(|c| c.eval_bool(&m)));
            }
            SatResult::Unsat => panic!("query is satisfiable"),
        }
        assert_eq!(s.stats().portfolio_races, 0, "model-grade must stay canonical");
    }
}
