//! Property-based tests: the bit-blasted decision procedure must agree with
//! direct expression evaluation on randomly generated constraint systems.

use ddt_expr::{Assignment, BinOp, CmpOp, Expr, SymId};
use ddt_solver::{SatResult, Solver};
use proptest::prelude::*;

/// A tiny generator of random 8-bit expressions over two symbols.
///
/// Small widths keep exhaustive cross-checking (2^16 assignments) cheap.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u64..=255).prop_map(|v| Expr::constant(v, 8)),
        Just(Expr::sym(SymId(0), 8)),
        Just(Expr::sym(SymId(1), 8)),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Xor),
                Just(BinOp::Shl),
                Just(BinOp::LShr),
                Just(BinOp::AShr),
                Just(BinOp::UDiv),
                Just(BinOp::URem),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::bin(op, &a, &b))
    })
    .boxed()
}

fn arb_constraint() -> BoxedStrategy<Expr> {
    (
        arb_expr(3),
        arb_expr(3),
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Ult),
            Just(CmpOp::Ule),
            Just(CmpOp::Slt),
            Just(CmpOp::Sle),
        ],
    )
        .prop_map(|(a, b, op)| Expr::cmp(op, &a, &b))
        .boxed()
}

/// Exhaustively decides satisfiability over the 2-symbol 8-bit domain.
fn brute_force_sat(constraints: &[Expr]) -> Option<(u64, u64)> {
    for a in 0u64..256 {
        for b in 0u64..256 {
            let mut asg = Assignment::new();
            asg.set(SymId(0), a);
            asg.set(SymId(1), b);
            if constraints.iter().all(|c| c.eval_bool(&asg)) {
                return Some((a, b));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The solver's verdict matches brute force, and Sat models actually
    /// satisfy the constraints.
    #[test]
    fn solver_agrees_with_brute_force(cs in prop::collection::vec(arb_constraint(), 1..4)) {
        let brute = brute_force_sat(&cs);
        let mut solver = Solver::new();
        match solver.check(&cs) {
            SatResult::Sat(model) => {
                prop_assert!(brute.is_some(), "solver says Sat, brute force says Unsat");
                for c in &cs {
                    prop_assert!(c.eval_bool(&model), "model fails constraint {c}");
                }
            }
            SatResult::Unsat => {
                prop_assert!(brute.is_none(),
                    "solver says Unsat but {brute:?} satisfies the constraints");
            }
        }
    }

    /// Expression simplification is semantics-preserving: the smart
    /// constructors must agree with a no-simplification evaluation.
    #[test]
    fn simplifier_preserves_semantics(e in arb_expr(4), a in 0u64..256, b in 0u64..256) {
        let mut asg = Assignment::new();
        asg.set(SymId(0), a);
        asg.set(SymId(1), b);
        // Substituting the assignment must fold to exactly eval's result.
        let mut map = std::collections::HashMap::new();
        map.insert(SymId(0), Expr::constant(a, 8));
        map.insert(SymId(1), Expr::constant(b, 8));
        let folded = ddt_expr::subst(&e, &map);
        prop_assert_eq!(folded.as_const(), Some(e.eval(&asg)));
    }

    /// `concretize` returns a witness consistent with the constraints.
    #[test]
    fn concretize_returns_witness(cs in prop::collection::vec(arb_constraint(), 1..3)) {
        let mut solver = Solver::new();
        let x = Expr::sym(SymId(0), 8);
        if let Some(v) = solver.concretize(&cs, &x) {
            // Check that x == v is consistent with cs.
            let mut cs2 = cs.clone();
            cs2.push(x.eq(&Expr::constant(v, 8)));
            prop_assert!(solver.is_feasible(&cs2));
        } else {
            prop_assert!(brute_force_sat(&cs).is_none());
        }
    }

    /// must_be_true and may_be_true are consistent duals.
    #[test]
    fn must_implies_may(c in arb_constraint(), probe in arb_constraint()) {
        let mut solver = Solver::new();
        let ctx = [c];
        if solver.is_feasible(&ctx) && solver.must_be_true(&ctx, &probe) {
            prop_assert!(solver.may_be_true(&ctx, &probe));
        }
    }
}
