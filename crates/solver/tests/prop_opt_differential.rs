//! Differential property tests for the verdict-grade solver optimizations:
//! independence slicing and incremental sessions must agree — in verdict and
//! in model validity — with the plain monolithic solver on random constraint
//! sets, in every flag combination, cached and uncached.
//!
//! Multi-symbol generators are biased so queries actually slice: symbols 0/1
//! and 2/3 form two families that only sometimes mix, producing a healthy
//! blend of one-, two-, and three-component partitions.

use ddt_expr::{partition_independent, Assignment, BinOp, CmpOp, Expr, SymId};
use ddt_solver::{SatResult, Solver};
use proptest::prelude::*;

const NSYMS: u32 = 4;

/// Random 6-bit expressions over one symbol *family* (a pair of symbols),
/// keeping exhaustive cross-checks over all four symbols (2^24) affordable.
fn arb_expr(family: u32, depth: u32) -> BoxedStrategy<Expr> {
    let s0 = family * 2;
    let leaf = prop_oneof![
        (0u64..64).prop_map(|v| Expr::constant(v, 6)),
        Just(Expr::sym(SymId(s0), 6)),
        Just(Expr::sym(SymId(s0 + 1), 6)),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Xor),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::bin(op, &a, &b))
    })
    .boxed()
}

/// A random constraint drawn from one family (0/1 or 2/3), so constraint
/// sets usually split into independent components.
fn family_constraint(family: u32) -> BoxedStrategy<Expr> {
    (
        arb_expr(family, 2),
        arb_expr(family, 2),
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Ult),
            Just(CmpOp::Ule),
            Just(CmpOp::Slt),
            Just(CmpOp::Sle),
        ],
    )
        .prop_map(|(a, b, op)| Expr::cmp(op, &a, &b))
        .boxed()
}

fn arb_constraint() -> BoxedStrategy<Expr> {
    prop_oneof![family_constraint(0), family_constraint(1)].boxed()
}

/// Exhaustively decides satisfiability over the four 6-bit symbols.
fn brute_force_sat(constraints: &[Expr]) -> bool {
    let mut asg = Assignment::new();
    for m in 0u64..(1 << (6 * NSYMS)) {
        for i in 0..NSYMS {
            asg.set(SymId(i), (m >> (6 * i)) & 0x3f);
        }
        if constraints.iter().all(|c| c.eval_bool(&asg)) {
            return true;
        }
    }
    false
}

/// Builds a solver with the given optimization switches (cached variant).
fn solver_with(slicing: bool, incremental: bool, cached: bool) -> Solver {
    let mut s = if cached { Solver::new() } else { Solver::uncached() };
    s.set_slicing(slicing);
    s.set_incremental(incremental);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every flag combination produces the same verdict as the plain
    /// monolithic solver, and satisfiable verdicts carry genuinely
    /// satisfying models.
    #[test]
    fn all_modes_agree_on_verdict_and_model_validity(
        cs in prop::collection::vec(arb_constraint(), 1..5),
    ) {
        let mut plain = solver_with(false, false, false);
        let expected = plain.is_feasible(&cs);
        for slicing in [false, true] {
            for incremental in [false, true] {
                for cached in [false, true] {
                    let mut s = solver_with(slicing, incremental, cached);
                    prop_assert_eq!(
                        s.is_feasible(&cs), expected,
                        "verdict flipped (slicing={}, incremental={}, cached={})",
                        slicing, incremental, cached
                    );
                    // The full SatResult's model must satisfy the query in
                    // every mode (composition and session soundness).
                    match s.check(&cs) {
                        SatResult::Sat(m) => {
                            prop_assert!(expected, "check Sat but plain infeasible");
                            for c in &cs {
                                prop_assert!(c.eval_bool(&m), "model fails {}", c);
                            }
                        }
                        SatResult::Unsat => prop_assert!(!expected),
                    }
                }
            }
        }
    }

    /// The optimized verdict agrees with brute force directly (not merely
    /// with another solver configuration).
    #[test]
    fn optimized_verdict_matches_brute_force(
        cs in prop::collection::vec(arb_constraint(), 1..4),
    ) {
        let mut s = solver_with(true, true, true);
        prop_assert_eq!(s.is_feasible(&cs), brute_force_sat(&cs));
    }

    /// Partitioning is a true independence partition: components are
    /// symbol-disjoint, cover the key, and per-component satisfiability
    /// composes to whole-query satisfiability.
    #[test]
    fn partition_soundness(cs in prop::collection::vec(arb_constraint(), 1..5)) {
        let key = ddt_expr::cache_key(&cs);
        let parts = partition_independent(&key);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, key.len());
        for (i, p) in parts.iter().enumerate() {
            let ps: std::collections::BTreeSet<_> =
                p.iter().flat_map(|e| e.syms()).collect();
            for q in parts.iter().skip(i + 1) {
                let qs: std::collections::BTreeSet<_> =
                    q.iter().flat_map(|e| e.syms()).collect();
                prop_assert!(ps.is_disjoint(&qs));
            }
        }
        // Conjunction over disjoint components: sat iff all components sat.
        let mut plain = solver_with(false, false, false);
        let whole = plain.is_feasible(&key);
        let all_parts = parts.iter().all(|p| {
            let mut s = solver_with(false, false, false);
            s.is_feasible(p)
        });
        prop_assert_eq!(whole, all_parts);
    }

    /// A long deepening-path query stream (the explorer's hot pattern) gives
    /// identical verdict sequences with sessions on and off.
    #[test]
    fn deepening_path_stream_matches(
        base in arb_constraint(),
        extras in prop::collection::vec(arb_constraint(), 1..6),
    ) {
        let mut incremental = solver_with(true, true, false);
        let mut plain = solver_with(false, false, false);
        let mut cs = vec![base];
        for e in extras {
            cs.push(e);
            prop_assert_eq!(incremental.is_feasible(&cs), plain.is_feasible(&cs));
        }
    }
}
