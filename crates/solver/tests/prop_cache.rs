//! Property tests for the counterexample-caching solver layer: for random
//! constraint sets, a cache-backed solver must agree verdict-for-verdict
//! with a fresh uncached solver, and every model the cached solver surfaces
//! must actually satisfy the query it answered.

use std::sync::Arc;

use ddt_expr::{Expr, SymId};
use ddt_solver::{QueryCache, SatResult, Solver};
use proptest::prelude::*;

/// Deterministically builds a small boolean constraint over two 32-bit
/// symbols from a seed. Shapes are chosen so random conjunctions mix Sat and
/// Unsat outcomes and regularly defeat the candidate-model fast path.
fn constraint(seed: u32) -> Expr {
    let x = Expr::sym(SymId(0), 32);
    let y = Expr::sym(SymId(1), 32);
    let k = Expr::constant((seed >> 4) as u64 & 0xff, 32);
    match seed % 8 {
        0 => x.eq(&k),
        1 => x.ult(&k),
        2 => k.ult(&x),
        3 => x.add(&y).eq(&k),
        4 => x.urem(&Expr::constant(((seed >> 4) % 7 + 1) as u64, 32)).eq(
            &Expr::constant(((seed >> 8) % 3) as u64, 32),
        ),
        5 => x.ne(&y),
        6 => y.ult(&k),
        _ => x.mul(&Expr::constant(2, 32)).eq(&k),
    }
}

fn queries_from(seeds: &[Vec<u32>]) -> Vec<Vec<Expr>> {
    seeds
        .iter()
        .map(|q| q.iter().map(|&s| constraint(s)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A shared-cache solver and a fresh uncached solver agree on every
    /// query of a random workload — including full results (models), since
    /// model-grade answers must be bit-deterministic.
    #[test]
    fn cached_check_agrees_with_uncached(
        seeds in prop::collection::vec(prop::collection::vec(any::<u32>(), 1..5), 1..12)
    ) {
        let queries = queries_from(&seeds);
        let cache = Arc::new(QueryCache::new());
        let mut cached = Solver::with_cache(cache.clone());
        let mut uncached = Solver::uncached();
        for q in &queries {
            let a = cached.check(q);
            let b = uncached.check(q);
            prop_assert_eq!(a, b, "cache diverged on {:?}", q);
        }
        // A second cached solver replaying the workload (warm cache) still
        // agrees — this is the path where exact hits dominate.
        let mut warm = Solver::with_cache(cache);
        let mut fresh = Solver::uncached();
        for q in &queries {
            prop_assert_eq!(warm.check(q), fresh.check(q));
        }
    }

    /// Verdict-grade queries agree with an uncached solver's verdicts even
    /// though the cache may answer them via counterexample reuse.
    #[test]
    fn cached_verdicts_agree_with_uncached(
        seeds in prop::collection::vec(prop::collection::vec(any::<u32>(), 1..5), 1..12)
    ) {
        let queries = queries_from(&seeds);
        let mut cached = Solver::new();
        let mut uncached = Solver::uncached();
        for q in &queries {
            prop_assert_eq!(
                cached.is_feasible(q),
                uncached.is_feasible(q),
                "feasibility verdict diverged on {:?}", q
            );
        }
    }

    /// Every model the cached solver returns genuinely satisfies the query
    /// it answered — whatever cache mechanism produced it.
    #[test]
    fn cached_models_satisfy_their_queries(
        seeds in prop::collection::vec(prop::collection::vec(any::<u32>(), 1..5), 1..12)
    ) {
        let queries = queries_from(&seeds);
        let mut solver = Solver::new();
        for q in &queries {
            if let SatResult::Sat(model) = solver.check(q) {
                for c in q {
                    prop_assert!(
                        c.eval_bool(&model),
                        "returned model violates {} in {:?}", c, q
                    );
                }
            }
        }
        // Replay against the warm cache: exact hits must satisfy too.
        let mut warm = Solver::with_cache(solver.cache().unwrap().clone());
        for q in &queries {
            if let SatResult::Sat(model) = warm.check(q) {
                prop_assert!(q.iter().all(|c| c.eval_bool(&model)));
            }
        }
    }
}
