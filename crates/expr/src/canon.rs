//! Canonical constraint-set signatures for solver-layer caching.
//!
//! A satisfiability query is a *set* of boolean constraints: conjunction is
//! commutative, associative, and idempotent, so two queries that differ only
//! in element order or duplication must map to the same cache entry. The
//! canonical form is the sorted (by the structural [`Ord`] on [`Expr`]),
//! deduplicated constraint vector — keys compare by full expression
//! equality, so hash collisions can never conflate distinct queries.

use crate::node::Expr;

/// Canonicalizes a constraint set into its cache-key form: sorted by the
/// structural order and deduplicated.
///
/// Properties the solver cache relies on (checked by property tests):
///
/// - **order-insensitive**: any permutation of `constraints` produces the
///   same key;
/// - **duplication-insensitive**: repeating a constraint does not change the
///   key;
/// - **collision-free**: structurally distinct constraint sets produce
///   distinct keys (keys carry the expressions themselves, not hashes).
pub fn cache_key(constraints: &[Expr]) -> Vec<Expr> {
    let mut key: Vec<Expr> = constraints.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

/// Partitions a canonical key into its independence components: the finest
/// partition in which constraints sharing a symbol (transitively) land in
/// the same class. Conjunction distributes over symbol-disjoint components,
/// so a query is satisfiable iff every component is, and a model of the
/// query is exactly a union of per-component models — the classic
/// constraint-independence optimization of EXE/KLEE.
///
/// Determinism: the result is a pure function of the input sequence. Each
/// component preserves the input's (canonical) element order, and the
/// components themselves are ordered by their first member's position —
/// so a canonical key always slices into the same component keys, which is
/// what lets per-component solves and cache entries stand in for the
/// monolithic ones.
///
/// Constraints without symbols (constants — the solver strips these before
/// slicing) each form a singleton component.
pub fn partition_independent(key: &[Expr]) -> Vec<Vec<Expr>> {
    use std::collections::BTreeSet;
    use std::collections::HashMap;
    use crate::{collect_syms, SymId};

    // Union-find over constraint indices.
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]]; // Path halving.
            i = parent[i];
        }
        i
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            // Root at the smaller index so representatives stay canonical.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
        }
    }

    let mut parent: Vec<usize> = (0..key.len()).collect();
    let mut owner: HashMap<SymId, usize> = HashMap::new();
    let mut syms = BTreeSet::new();
    for (i, c) in key.iter().enumerate() {
        syms.clear();
        collect_syms(c, &mut syms);
        for &s in syms.iter() {
            match owner.get(&s) {
                Some(&j) => union(&mut parent, i, j),
                None => {
                    owner.insert(s, i);
                }
            }
        }
    }

    // Emit components ordered by their root (= smallest member) index, each
    // preserving input order.
    let mut component_of_root: HashMap<usize, usize> = HashMap::new();
    let mut out: Vec<Vec<Expr>> = Vec::new();
    for (i, c) in key.iter().enumerate() {
        let root = find(&mut parent, i);
        let slot = *component_of_root.entry(root).or_insert_with(|| {
            out.push(Vec::new());
            out.len() - 1
        });
        out[slot].push(c.clone());
    }
    out
}

/// A compact 64-bit superset-filter signature of a canonical key: one hash
/// bit per constraint, OR-ed together (a Bloom filter with k = 1).
///
/// If key `A` is a subset of key `B` then `sig(A) & !sig(B) == 0`; the
/// converse does not hold, so this is only a cheap pre-filter before the
/// exact sorted-inclusion check ([`is_subset_sorted`]).
pub fn subset_signature(key: &[Expr]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut sig = 0u64;
    for e in key {
        let mut h = DefaultHasher::new();
        e.hash(&mut h);
        sig |= 1u64 << (h.finish() % 64);
    }
    sig
}

/// Returns true if sorted-deduplicated `a` is a subset of
/// sorted-deduplicated `b` (both in [`cache_key`] canonical form), by a
/// linear merge walk.
pub fn is_subset_sorted(a: &[Expr], b: &[Expr]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0usize;
    'outer: for x in a {
        while bi < b.len() {
            match b[bi].cmp(x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymId;

    fn c(v: u64) -> Expr {
        Expr::constant(v, 32)
    }

    fn s(id: u32) -> Expr {
        Expr::sym(SymId(id), 32)
    }

    #[test]
    fn key_ignores_order_and_duplicates() {
        let a = s(0).ult(&c(5));
        let b = c(3).ult(&s(1));
        let k1 = cache_key(&[a.clone(), b.clone()]);
        let k2 = cache_key(&[b.clone(), a.clone(), a.clone()]);
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 2);
    }

    #[test]
    fn distinct_sets_get_distinct_keys() {
        let a = s(0).ult(&c(5));
        let b = s(0).ult(&c(6));
        assert_ne!(cache_key(std::slice::from_ref(&a)), cache_key(std::slice::from_ref(&b)));
        assert_ne!(cache_key(std::slice::from_ref(&a)), cache_key(&[a, b]));
    }

    #[test]
    fn partition_splits_symbol_disjoint_groups() {
        // {s0,s1} chained, {s2} alone, {s3,s4} chained via a third.
        let a = s(0).ult(&s(1));
        let b = s(1).ult(&c(9));
        let d = s(2).eq(&c(1));
        let e = s(3).add(&s(4)).ult(&c(7));
        let f = s(4).ne(&c(0));
        let key = cache_key(&[a.clone(), b.clone(), d.clone(), e.clone(), f.clone()]);
        let parts = partition_independent(&key);
        assert_eq!(parts.len(), 3);
        // Every constraint lands in exactly one component.
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, key.len());
        // Components are symbol-disjoint.
        for (i, p) in parts.iter().enumerate() {
            let ps: std::collections::BTreeSet<_> =
                p.iter().flat_map(|x| x.syms()).collect();
            for (j, q) in parts.iter().enumerate() {
                if i == j {
                    continue;
                }
                let qs: std::collections::BTreeSet<_> =
                    q.iter().flat_map(|x| x.syms()).collect();
                assert!(ps.is_disjoint(&qs), "components {i} and {j} share symbols");
            }
        }
        // Concatenating components in order reproduces the key (order
        // preservation inside and across components).
        let mut flat: Vec<Expr> = parts.into_iter().flatten().collect();
        flat.sort_unstable();
        assert_eq!(flat, key);
    }

    #[test]
    fn partition_is_order_insensitive_via_canonical_key() {
        let a = s(0).ult(&c(5));
        let b = s(1).ult(&c(6));
        let d = s(0).ne(&c(0));
        let k1 = cache_key(&[a.clone(), b.clone(), d.clone()]);
        let k2 = cache_key(&[d, b, a]);
        assert_eq!(partition_independent(&k1), partition_independent(&k2));
    }

    #[test]
    fn single_component_when_all_constraints_share_symbols() {
        let a = s(0).ult(&s(1));
        let b = s(1).ult(&s(2));
        let d = s(2).ne(&c(0));
        let key = cache_key(&[a, b, d]);
        let parts = partition_independent(&key);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], key);
    }

    #[test]
    fn subset_walk_agrees_with_set_semantics() {
        let a = cache_key(&[s(0).ult(&c(5))]);
        let ab = cache_key(&[s(0).ult(&c(5)), c(3).ult(&s(1))]);
        assert!(is_subset_sorted(&a, &ab));
        assert!(!is_subset_sorted(&ab, &a));
        assert!(is_subset_sorted(&ab, &ab));
        assert!(is_subset_sorted(&[], &a));
        // The signature filter never rejects a true subset.
        assert_eq!(subset_signature(&a) & !subset_signature(&ab), 0);
    }
}
