//! Canonical constraint-set signatures for solver-layer caching.
//!
//! A satisfiability query is a *set* of boolean constraints: conjunction is
//! commutative, associative, and idempotent, so two queries that differ only
//! in element order or duplication must map to the same cache entry. The
//! canonical form is the sorted (by the structural [`Ord`] on [`Expr`]),
//! deduplicated constraint vector — keys compare by full expression
//! equality, so hash collisions can never conflate distinct queries.

use crate::node::Expr;

/// Canonicalizes a constraint set into its cache-key form: sorted by the
/// structural order and deduplicated.
///
/// Properties the solver cache relies on (checked by property tests):
///
/// - **order-insensitive**: any permutation of `constraints` produces the
///   same key;
/// - **duplication-insensitive**: repeating a constraint does not change the
///   key;
/// - **collision-free**: structurally distinct constraint sets produce
///   distinct keys (keys carry the expressions themselves, not hashes).
pub fn cache_key(constraints: &[Expr]) -> Vec<Expr> {
    let mut key: Vec<Expr> = constraints.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

/// A compact 64-bit superset-filter signature of a canonical key: one hash
/// bit per constraint, OR-ed together (a Bloom filter with k = 1).
///
/// If key `A` is a subset of key `B` then `sig(A) & !sig(B) == 0`; the
/// converse does not hold, so this is only a cheap pre-filter before the
/// exact sorted-inclusion check ([`is_subset_sorted`]).
pub fn subset_signature(key: &[Expr]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut sig = 0u64;
    for e in key {
        let mut h = DefaultHasher::new();
        e.hash(&mut h);
        sig |= 1u64 << (h.finish() % 64);
    }
    sig
}

/// Returns true if sorted-deduplicated `a` is a subset of
/// sorted-deduplicated `b` (both in [`cache_key`] canonical form), by a
/// linear merge walk.
pub fn is_subset_sorted(a: &[Expr], b: &[Expr]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0usize;
    'outer: for x in a {
        while bi < b.len() {
            match b[bi].cmp(x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymId;

    fn c(v: u64) -> Expr {
        Expr::constant(v, 32)
    }

    fn s(id: u32) -> Expr {
        Expr::sym(SymId(id), 32)
    }

    #[test]
    fn key_ignores_order_and_duplicates() {
        let a = s(0).ult(&c(5));
        let b = c(3).ult(&s(1));
        let k1 = cache_key(&[a.clone(), b.clone()]);
        let k2 = cache_key(&[b.clone(), a.clone(), a.clone()]);
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 2);
    }

    #[test]
    fn distinct_sets_get_distinct_keys() {
        let a = s(0).ult(&c(5));
        let b = s(0).ult(&c(6));
        assert_ne!(cache_key(std::slice::from_ref(&a)), cache_key(std::slice::from_ref(&b)));
        assert_ne!(cache_key(std::slice::from_ref(&a)), cache_key(&[a, b]));
    }

    #[test]
    fn subset_walk_agrees_with_set_semantics() {
        let a = cache_key(&[s(0).ult(&c(5))]);
        let ab = cache_key(&[s(0).ult(&c(5)), c(3).ult(&s(1))]);
        assert!(is_subset_sorted(&a, &ab));
        assert!(!is_subset_sorted(&ab, &a));
        assert!(is_subset_sorted(&ab, &ab));
        assert!(is_subset_sorted(&[], &a));
        // The signature filter never rejects a true subset.
        assert_eq!(subset_signature(&a) & !subset_signature(&ab), 0);
    }
}
