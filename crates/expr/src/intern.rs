//! The hash-consing interner: one shared allocation per distinct subtree.
//!
//! Every [`Expr`] in the process is built through [`intern`], so two
//! structurally identical expressions always share one `Arc` allocation.
//! That invariant is what lets `Expr::eq` be a pointer comparison and
//! `Expr::hash` a single precomputed-word write: the solver's bit-blast
//! memo table, the query cache's canonical keys, and `cache_key`'s sort all
//! become O(1) per node instead of O(tree).
//!
//! The table is sharded to keep construction cheap under the parallel
//! explorer, and stores [`Weak`] handles so dropping the last user of a
//! subtree reclaims it: the interner never pins expression memory beyond
//! its natural lifetime. Dead weak entries are pruned opportunistically on
//! the inserts that encounter them.
//!
//! Hashing is *shallow*: a node's hash mixes its variant tag and scalar
//! fields with the precomputed hashes of its (already interned) children,
//! so interning one node is O(1) regardless of subtree depth. The hash is
//! a pure function of the expression's structure (no pointers), hence
//! stable across processes — the cache's Bloom signatures derived from it
//! are deterministic.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, Weak};

use crate::node::{Expr, ExprNode, Interned};

/// Shard count; a power of two so shard selection is a mask.
const SHARDS: usize = 64;

/// One shard: hash -> bucket of weak handles to live interned nodes.
type Shard = Mutex<HashMap<u64, Vec<Weak<Interned>>>>;

static TABLE: OnceLock<Vec<Shard>> = OnceLock::new();

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn table() -> &'static [Shard] {
    TABLE.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect())
}

/// Locks a shard, tolerating poison: an interning caller that panicked
/// (the explorer isolates such panics per-state) cannot have left the map
/// itself inconsistent — every mutation is a single `retain`/`push`.
fn lock(shard: &Shard) -> MutexGuard<'_, HashMap<u64, Vec<Weak<Interned>>>> {
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shallow structural hash of a node whose children are already interned:
/// the children contribute their stored hashes, not a traversal.
pub(crate) fn shallow_hash(node: &ExprNode) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

/// Interns a node (children must already be interned `Expr`s): returns the
/// canonical shared handle for this structure, allocating only on first
/// sight.
pub(crate) fn intern(node: ExprNode) -> Expr {
    let hash = shallow_hash(&node);
    let shard = &table()[(hash as usize) & (SHARDS - 1)];
    let mut map = lock(shard);
    let bucket = map.entry(hash).or_default();
    let mut saw_dead = false;
    for w in bucket.iter() {
        match w.upgrade() {
            // Children are interned, so the derived (shallow) node equality
            // compares child pointers — O(1) per candidate.
            Some(arc) if arc.node == node => {
                HITS.fetch_add(1, Ordering::Relaxed);
                return Expr::from_interned(arc);
            }
            Some(_) => {}
            None => saw_dead = true,
        }
    }
    if saw_dead {
        bucket.retain(|w| w.strong_count() > 0);
    }
    let arc = Expr::alloc_interned(hash, node);
    bucket.push(std::sync::Arc::downgrade(&arc));
    MISSES.fetch_add(1, Ordering::Relaxed);
    Expr::from_interned(arc)
}

/// Interner counters since process start: `(hits, misses)`. A hit is an
/// intern call that found the structure already live; the hit rate is the
/// sharing factor the hash-consing layer achieves.
pub fn intern_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymId;

    #[test]
    fn identical_structures_share_one_allocation() {
        let a = Expr::sym(SymId(7001), 32).add(&Expr::constant(17, 32));
        let b = Expr::sym(SymId(7001), 32).add(&Expr::constant(17, 32));
        assert!(Expr::ptr_eq(&a, &b), "hash-consed subtrees must share an Arc");
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_structures_do_not_collide() {
        let a = Expr::sym(SymId(7002), 32).add(&Expr::constant(1, 32));
        let b = Expr::sym(SymId(7002), 32).add(&Expr::constant(2, 32));
        assert!(!Expr::ptr_eq(&a, &b));
        assert_ne!(a, b);
    }

    #[test]
    fn dropped_expressions_can_be_reclaimed_and_reinterned() {
        let id = SymId(7003);
        let first = Expr::sym(id, 8).not();
        drop(first);
        // Whether or not the weak entry was pruned yet, re-interning must
        // produce a live, self-consistent handle.
        let again = Expr::sym(id, 8).not();
        assert_eq!(again.width(), 8);
        assert!(Expr::ptr_eq(&again, &Expr::sym(id, 8).not()));
    }

    #[test]
    fn stats_advance() {
        let (h0, m0) = intern_stats();
        let x = Expr::sym(SymId(7004), 16);
        let _y = Expr::sym(SymId(7004), 16);
        let (h1, m1) = intern_stats();
        assert!(h1 > h0, "second construction must hit");
        assert!(m1 > m0, "first construction must miss");
        drop(x);
    }
}
