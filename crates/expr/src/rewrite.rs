//! Algebraic pre-blast rewriting: a fixpoint simplifier over the interned
//! expression DAG, run ahead of bit-blasting (DESIGN.md §4.12).
//!
//! The smart constructors in [`crate::node`] already fold constants and apply
//! local identities *at build time*. This pass goes further, with context the
//! constructors cannot see at a single node:
//!
//! - **known-bits propagation**: a dataflow over the DAG tracking which bits
//!   of every subterm are provably zero or provably one, collapsing
//!   fully-determined terms to constants and absorbing masked `And`/`Or`
//!   operands;
//! - **bit-width narrowing**: comparisons of zero-extended operands (the
//!   shape every sub-word hardware read produces) are narrowed back to the
//!   original width, and low-bit extracts distribute into the operands of
//!   width-local operators — smaller widths mean fewer Tseitin variables;
//! - **ite collapse**: nested if-then-else on one condition drops the
//!   unreachable arm;
//! - **concat/constant equality splitting**: `concat(hi, lo) == c` becomes a
//!   conjunction of narrower equalities, which also feeds independence
//!   slicing downstream.
//!
//! Every rule is *evaluation-preserving*: for every assignment, the
//! rewritten expression evaluates bit-identically to the original (pinned by
//! the property tests in [`crate::prop_tests`]). That is the contract that
//! makes the pass verdict-sound in the solver: a model of a rewritten key is
//! a model of the original key and vice versa. Rewriting is also idempotent —
//! `rewrite(rewrite(e)) == rewrite(e)` — because replacements are themselves
//! rewritten to fixpoint before being returned.

use std::collections::HashMap;

use crate::node::{BinOp, CmpOp, Expr, ExprNode};
use crate::{mask, MAX_WIDTH};

/// Per-call rewrite context: the rewrite memo and the known-bits memo, both
/// keyed by interned identity so shared subtrees are processed once.
#[derive(Default)]
struct Rewriter {
    memo: HashMap<Expr, Expr>,
    bits: HashMap<Expr, KnownBits>,
}

/// Which bits of a term are statically determined. `zeros` has a 1 for every
/// bit provably 0; `ones` has a 1 for every bit provably 1. Both are subsets
/// of the width mask and never overlap.
#[derive(Clone, Copy, Debug, Default)]
struct KnownBits {
    zeros: u64,
    ones: u64,
}

impl KnownBits {
    fn unknown() -> KnownBits {
        KnownBits::default()
    }

    fn of_const(bits: u64, w: u32) -> KnownBits {
        KnownBits { zeros: mask(!bits, w), ones: mask(bits, w) }
    }

    /// True when every bit in `w` is determined.
    fn fully_known(&self, w: u32) -> bool {
        self.zeros | self.ones == mask(u64::MAX, w)
    }

    /// Largest value the term can take (all undetermined bits set).
    fn max(&self, w: u32) -> u64 {
        mask(!self.zeros, w)
    }

    /// Smallest value the term can take (only the known ones set).
    fn min(&self) -> u64 {
        self.ones
    }
}

/// Rewrites one expression to its simplified fixpoint form.
pub fn rewrite(e: &Expr) -> Expr {
    let mut rw = Rewriter::default();
    rw.go(e)
}

/// Rewrites a batch of expressions sharing one memo, so common subtrees
/// across the constraints of a query key are processed once.
pub fn rewrite_all(exprs: &[Expr]) -> Vec<Expr> {
    let mut rw = Rewriter::default();
    exprs.iter().map(|e| rw.go(e)).collect()
}

/// Counts distinct DAG nodes reachable from `roots` (shared subtrees counted
/// once) — the size metric behind the `rewrite_reductions` counter.
pub fn dag_node_count(roots: &[Expr]) -> usize {
    fn walk(e: &Expr, seen: &mut std::collections::HashSet<Expr>) {
        if !seen.insert(e.clone()) {
            return;
        }
        match e.node() {
            ExprNode::Const { .. } | ExprNode::Sym { .. } => {}
            ExprNode::Not(a) | ExprNode::Neg(a) => walk(a, seen),
            ExprNode::Bin(_, a, b) | ExprNode::Cmp(_, a, b) => {
                walk(a, seen);
                walk(b, seen);
            }
            ExprNode::ZExt { e: a, .. }
            | ExprNode::SExt { e: a, .. }
            | ExprNode::Extract { e: a, .. } => walk(a, seen),
            ExprNode::Concat { hi, lo } => {
                walk(hi, seen);
                walk(lo, seen);
            }
            ExprNode::Ite { cond, then, els } => {
                walk(cond, seen);
                walk(then, seen);
                walk(els, seen);
            }
        }
    }
    let mut seen = std::collections::HashSet::new();
    for r in roots {
        walk(r, &mut seen);
    }
    seen.len()
}

impl Rewriter {
    fn go(&mut self, e: &Expr) -> Expr {
        if let Some(r) = self.memo.get(e) {
            return r.clone();
        }
        let rebuilt = self.rebuild(e);
        let out = self.apply_rules(&rebuilt);
        self.memo.insert(e.clone(), out.clone());
        // The result is its own fixpoint: replacements are rewritten before
        // being returned, so `rewrite` is idempotent by construction.
        self.memo.insert(out.clone(), out.clone());
        out
    }

    /// Rewrites the children and rebuilds the node through the smart
    /// constructors (which re-apply their build-time simplifications to the
    /// now-simpler children).
    fn rebuild(&mut self, e: &Expr) -> Expr {
        match e.node() {
            ExprNode::Const { .. } | ExprNode::Sym { .. } => e.clone(),
            ExprNode::Not(a) => self.go(a).not(),
            ExprNode::Neg(a) => self.go(a).neg(),
            ExprNode::Bin(op, a, b) => Expr::bin(*op, &self.go(a), &self.go(b)),
            ExprNode::Cmp(op, a, b) => Expr::cmp(*op, &self.go(a), &self.go(b)),
            ExprNode::ZExt { e: a, width } => self.go(a).zext(*width),
            ExprNode::SExt { e: a, width } => self.go(a).sext(*width),
            ExprNode::Extract { e: a, hi, lo } => self.go(a).extract(*hi, *lo),
            ExprNode::Concat { hi, lo } => self.go(hi).concat(&self.go(lo)),
            ExprNode::Ite { cond, then, els } => {
                Expr::ite(&self.go(cond), &self.go(then), &self.go(els))
            }
        }
    }

    /// Applies the cross-node rules to an already-rebuilt node. Whenever a
    /// rule fires, the replacement is itself rewritten to fixpoint.
    fn apply_rules(&mut self, e: &Expr) -> Expr {
        let w = e.width();
        match e.node() {
            ExprNode::Cmp(op, a, b) => {
                // Bit-width narrowing: zext(a) ⋈ zext(b) over equal source
                // widths decides at the source width (unsigned orders and
                // equality only — sign-dependent orders do not narrow).
                if let (ExprNode::ZExt { e: na, .. }, ExprNode::ZExt { e: nb, .. }) =
                    (a.node(), b.node())
                {
                    if na.width() == nb.width() && zext_narrowable(*op) {
                        return self.go(&Expr::cmp(*op, na, nb));
                    }
                }
                // zext(a) ⋈ constant: decide statically when the constant is
                // out of the source range, else narrow to the source width.
                if let (ExprNode::ZExt { e: na, .. }, Some(c)) = (a.node(), b.as_const()) {
                    if let Some(r) = self.narrow_zext_const(*op, na, c, false) {
                        return r;
                    }
                }
                if let (Some(c), ExprNode::ZExt { e: nb, .. }) = (a.as_const(), b.node()) {
                    if let Some(r) = self.narrow_zext_const(*op, nb, c, true) {
                        return r;
                    }
                }
                // concat(hi, lo) ==/!= constant splits into independent
                // narrower comparisons (feeding independence slicing).
                if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    let split = match (a.node(), b.as_const()) {
                        (ExprNode::Concat { hi, lo }, Some(c)) => Some((hi, lo, c)),
                        _ => match (a.as_const(), b.node()) {
                            (Some(c), ExprNode::Concat { hi, lo }) => Some((hi, lo, c)),
                            _ => None,
                        },
                    };
                    if let Some((hi, lo, c)) = split {
                        let ch = Expr::constant(c >> lo.width(), hi.width());
                        let cl = Expr::constant(c, lo.width());
                        let r = match op {
                            CmpOp::Eq => hi.eq(&ch).and(&lo.eq(&cl)),
                            _ => hi.ne(&ch).or(&lo.ne(&cl)),
                        };
                        return self.go(&r);
                    }
                }
                // Unsigned range rules from known bits: a ⋈ c decided when
                // the known-bits envelope of `a` excludes (or forces) it.
                if let Some(c) = b.as_const() {
                    if let Some(r) = self.known_bits_cmp(*op, a, c, false) {
                        return r;
                    }
                }
                if let Some(c) = a.as_const() {
                    if let Some(r) = self.known_bits_cmp(*op, b, c, true) {
                        return r;
                    }
                }
                e.clone()
            }
            ExprNode::Ite { cond, then, els } => {
                // Nested ite on one condition drops the unreachable arm.
                if let ExprNode::Ite { cond: c2, then: t2, .. } = then.node() {
                    if c2 == cond {
                        return self.go(&Expr::ite(cond, t2, els));
                    }
                }
                if let ExprNode::Ite { cond: c2, els: e2, .. } = els.node() {
                    if c2 == cond {
                        return self.go(&Expr::ite(cond, then, e2));
                    }
                }
                e.clone()
            }
            ExprNode::Extract { e: inner, hi, lo } => {
                // Low-bit extracts distribute into width-local operators:
                // the low `hi+1` bits of add/sub/mul depend only on the low
                // bits of the operands, and bitwise ops are bit-local at any
                // slice. Narrower operands blast to fewer variables.
                match inner.node() {
                    ExprNode::Bin(op, a, b)
                        if *lo == 0 && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) =>
                    {
                        let r = Expr::bin(*op, &a.extract(*hi, 0), &b.extract(*hi, 0));
                        self.go(&r)
                    }
                    ExprNode::Bin(op, a, b)
                        if matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) =>
                    {
                        let r = Expr::bin(*op, &a.extract(*hi, *lo), &b.extract(*hi, *lo));
                        self.go(&r)
                    }
                    ExprNode::Not(a) => self.go(&a.extract(*hi, *lo).not()),
                    _ => self.fold_known(e, w),
                }
            }
            ExprNode::Bin(op, a, b) if matches!(op, BinOp::And | BinOp::Or) => {
                let ka = self.known(a);
                let kb = self.known(b);
                let full = mask(u64::MAX, w);
                let (pa, pb) = (full & !ka.zeros, full & !kb.zeros);
                match op {
                    BinOp::And => {
                        // Disjoint possible-ones: the conjunction is zero.
                        if pa & pb == 0 {
                            return Expr::constant(0, w);
                        }
                        // Absorption: every possibly-one bit of one side is
                        // known-one on the other, so the mask is a no-op.
                        if pa & !kb.ones == 0 {
                            return a.clone();
                        }
                        if pb & !ka.ones == 0 {
                            return b.clone();
                        }
                    }
                    BinOp::Or => {
                        if pa & !kb.ones == 0 {
                            return b.clone();
                        }
                        if pb & !ka.ones == 0 {
                            return a.clone();
                        }
                    }
                    _ => unreachable!(),
                }
                self.fold_known(e, w)
            }
            _ => self.fold_known(e, w),
        }
    }

    /// Collapses `e` to a constant when known-bits fully determine it.
    fn fold_known(&mut self, e: &Expr, w: u32) -> Expr {
        if e.is_const() {
            return e.clone();
        }
        let k = self.known(e);
        if k.fully_known(w) {
            return Expr::constant(k.ones, w);
        }
        e.clone()
    }

    /// Narrows `zext(a) ⋈ c` (or `c ⋈ zext(a)` when `flipped`). Returns
    /// `None` when the comparison is signed (not narrowable under zext).
    fn narrow_zext_const(&mut self, op: CmpOp, a: &Expr, c: u64, flipped: bool) -> Option<Expr> {
        if !zext_narrowable(op) {
            return None;
        }
        let aw = a.width();
        let amax = mask(u64::MAX, aw); // zext(a) ranges over [0, amax].
        let cv = Expr::constant(c.min(amax), aw);
        let r = match (op, flipped) {
            (CmpOp::Eq, _) if c > amax => Expr::false_(),
            (CmpOp::Eq, _) => Expr::cmp(CmpOp::Eq, a, &cv),
            (CmpOp::Ne, _) if c > amax => Expr::true_(),
            (CmpOp::Ne, _) => Expr::cmp(CmpOp::Ne, a, &cv),
            // zext(a) <u c
            (CmpOp::Ult, false) if c > amax => Expr::true_(),
            (CmpOp::Ult, false) => Expr::cmp(CmpOp::Ult, a, &cv),
            // zext(a) <=u c
            (CmpOp::Ule, false) if c >= amax => Expr::true_(),
            (CmpOp::Ule, false) => Expr::cmp(CmpOp::Ule, a, &cv),
            // c <u zext(a)
            (CmpOp::Ult, true) if c >= amax => Expr::false_(),
            (CmpOp::Ult, true) => Expr::cmp(CmpOp::Ult, &cv, a),
            // c <=u zext(a)
            (CmpOp::Ule, true) if c > amax => Expr::false_(),
            (CmpOp::Ule, true) => Expr::cmp(CmpOp::Ule, &cv, a),
            (CmpOp::Slt | CmpOp::Sle, _) => return None,
        };
        Some(self.go(&r))
    }

    /// Decides `a ⋈ c` (or `c ⋈ a` when `flipped`) from the known-bits
    /// envelope `[min, max]` of `a`, for the unsigned orders and equality.
    fn known_bits_cmp(&mut self, op: CmpOp, a: &Expr, c: u64, flipped: bool) -> Option<Expr> {
        let w = a.width();
        let k = self.known(a);
        if k.zeros == 0 && k.ones == 0 {
            return None; // Nothing known; skip the arithmetic.
        }
        let (min, max) = (k.min(), k.max(w));
        match op {
            // Bit-level contradiction: c sets a known-zero bit or clears a
            // known-one bit of a.
            CmpOp::Eq if (c & k.zeros) != 0 || (!c & k.ones) != 0 => Some(Expr::false_()),
            CmpOp::Ne if (c & k.zeros) != 0 || (!c & k.ones) != 0 => Some(Expr::true_()),
            CmpOp::Ult if !flipped && max < c => Some(Expr::true_()), // a <u c
            CmpOp::Ult if !flipped && min >= c => Some(Expr::false_()),
            CmpOp::Ult if flipped && c < min => Some(Expr::true_()), // c <u a
            CmpOp::Ult if flipped && c >= max => Some(Expr::false_()),
            CmpOp::Ule if !flipped && max <= c => Some(Expr::true_()), // a <=u c
            CmpOp::Ule if !flipped && min > c => Some(Expr::false_()),
            CmpOp::Ule if flipped && c <= min => Some(Expr::true_()), // c <=u a
            CmpOp::Ule if flipped && c > max => Some(Expr::false_()),
            _ => None,
        }
    }

    /// Known-bits dataflow, memoized over the DAG.
    fn known(&mut self, e: &Expr) -> KnownBits {
        if let Some(k) = self.bits.get(e) {
            return *k;
        }
        let w = e.width();
        let full = mask(u64::MAX, w);
        let k = match e.node() {
            ExprNode::Const { bits, width } => KnownBits::of_const(*bits, *width),
            ExprNode::Sym { .. } => KnownBits::unknown(),
            ExprNode::Not(a) => {
                let ka = self.known(a);
                KnownBits { zeros: ka.ones, ones: ka.zeros }
            }
            ExprNode::Bin(op, a, b) => {
                let ka = self.known(a);
                let kb = self.known(b);
                match op {
                    BinOp::And => KnownBits {
                        zeros: (ka.zeros | kb.zeros) & full,
                        ones: ka.ones & kb.ones,
                    },
                    BinOp::Or => KnownBits {
                        zeros: ka.zeros & kb.zeros,
                        ones: (ka.ones | kb.ones) & full,
                    },
                    BinOp::Xor => KnownBits {
                        zeros: (ka.zeros & kb.zeros) | (ka.ones & kb.ones),
                        ones: (ka.zeros & kb.ones) | (ka.ones & kb.zeros),
                    },
                    BinOp::Shl => match b.as_const() {
                        Some(c) if c >= w as u64 => KnownBits::of_const(0, w),
                        Some(c) => {
                            // The c vacated low bits are known zero.
                            let low = (1u64 << c) - 1;
                            KnownBits {
                                zeros: ((ka.zeros << c) | low) & full,
                                ones: (ka.ones << c) & full,
                            }
                        }
                        None => KnownBits::unknown(),
                    },
                    BinOp::LShr => match b.as_const() {
                        Some(c) if c >= w as u64 => KnownBits::of_const(0, w),
                        Some(c) => KnownBits {
                            zeros: ((ka.zeros >> c) | !(full >> c)) & full,
                            ones: (ka.ones & full) >> c,
                        },
                        None => KnownBits::unknown(),
                    },
                    _ => KnownBits::unknown(),
                }
            }
            ExprNode::Cmp(..) => KnownBits::unknown(),
            ExprNode::ZExt { e: a, .. } => {
                let ka = self.known(a);
                let aw = a.width();
                // The extension bits are known zero.
                KnownBits { zeros: ka.zeros | (full & !mask(u64::MAX, aw)), ones: ka.ones }
            }
            ExprNode::SExt { e: a, .. } => {
                let ka = self.known(a);
                let aw = a.width();
                let sign = 1u64 << (aw - 1);
                let ext = full & !mask(u64::MAX, aw);
                if ka.ones & sign != 0 {
                    KnownBits { zeros: ka.zeros, ones: ka.ones | ext }
                } else if ka.zeros & sign != 0 {
                    KnownBits { zeros: ka.zeros | ext, ones: ka.ones }
                } else {
                    KnownBits { zeros: ka.zeros, ones: ka.ones }
                }
            }
            ExprNode::Extract { e: a, hi: _, lo } => {
                let ka = self.known(a);
                KnownBits { zeros: (ka.zeros >> lo) & full, ones: (ka.ones >> lo) & full }
            }
            ExprNode::Concat { hi, lo } => {
                let kh = self.known(hi);
                let kl = self.known(lo);
                let lw = lo.width();
                KnownBits {
                    zeros: (kh.zeros << lw) | kl.zeros,
                    ones: (kh.ones << lw) | kl.ones,
                }
            }
            ExprNode::Ite { then, els, .. } => {
                let kt = self.known(then);
                let ke = self.known(els);
                KnownBits { zeros: kt.zeros & ke.zeros, ones: kt.ones & ke.ones }
            }
            ExprNode::Neg(_) => KnownBits::unknown(),
        };
        debug_assert_eq!(k.zeros & k.ones, 0, "known-bits sets overlap for {e}");
        debug_assert_eq!(k.zeros & !full, 0, "known zeros exceed width of {e}");
        debug_assert_eq!(k.ones & !full, 0, "known ones exceed width of {e}");
        self.bits.insert(e.clone(), k);
        k
    }
}

fn zext_narrowable(op: CmpOp) -> bool {
    matches!(op, CmpOp::Eq | CmpOp::Ne | CmpOp::Ult | CmpOp::Ule)
}

// Keep MAX_WIDTH referenced for the doc invariant even in release builds.
const _: () = assert!(MAX_WIDTH == 64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymId;

    fn s(id: u32, w: u32) -> Expr {
        Expr::sym(SymId(id), w)
    }

    fn c(v: u64, w: u32) -> Expr {
        Expr::constant(v, w)
    }

    #[test]
    fn narrows_zext_cmp_pairs() {
        let a = s(0, 8);
        let b = s(1, 8);
        let e = a.zext(32).ult(&b.zext(32));
        assert_eq!(rewrite(&e), a.ult(&b));
    }

    #[test]
    fn narrows_zext_cmp_const_in_range() {
        let a = s(0, 8);
        let e = a.zext(32).eq(&c(0x42, 32));
        assert_eq!(rewrite(&e), a.eq(&c(0x42, 8)));
    }

    #[test]
    fn decides_zext_cmp_const_out_of_range() {
        let a = s(0, 8);
        assert!(rewrite(&a.zext(32).eq(&c(0x1234, 32))).is_false());
        assert!(rewrite(&a.zext(32).ne(&c(0x1234, 32))).is_true());
        assert!(rewrite(&a.zext(32).ult(&c(0x100, 32))).is_true());
        assert!(rewrite(&c(0x100, 32).ult(&a.zext(32))).is_false());
    }

    #[test]
    fn splits_concat_const_equality() {
        let hi = s(0, 8);
        let lo = s(1, 8);
        let e = hi.concat(&lo).eq(&c(0xcdab, 16));
        let expect = hi.eq(&c(0xcd, 8)).and(&lo.eq(&c(0xab, 8)));
        assert_eq!(rewrite(&e), expect);
    }

    #[test]
    fn collapses_nested_ite_on_one_condition() {
        let cond = s(0, 32).ult(&c(5, 32));
        let x = s(1, 32);
        let y = s(2, 32);
        let z = s(3, 32);
        let e = Expr::ite(&cond, &Expr::ite(&cond, &x, &y), &z);
        assert_eq!(rewrite(&e), Expr::ite(&cond, &x, &z));
    }

    #[test]
    fn known_bits_collapse_masked_and() {
        // (x | 0xff00) & 0xff00 is fully determined: 0xff00.
        let x = s(0, 32);
        let e = x.or(&c(0xff00, 32)).and(&c(0xff00, 32));
        assert_eq!(rewrite(&e).as_const(), Some(0xff00));
    }

    #[test]
    fn known_bits_absorb_covering_mask() {
        // zext(x:8) & 0xff keeps every possibly-one bit: the mask is a no-op.
        let x = s(0, 8);
        let e = x.zext(32).and(&c(0xff, 32));
        assert_eq!(rewrite(&e), x.zext(32));
    }

    #[test]
    fn known_bits_decide_range_cmp() {
        // zext(x:8) << 1 is even and <= 0x1fe, so <u 0x200 is always true.
        let x = s(0, 8);
        let shifted = x.zext(32).shl(&c(1, 32));
        assert!(rewrite(&shifted.ult(&c(0x200, 32))).is_true());
        // And == 0x201 (odd, in-range bit pattern conflict) is false.
        assert!(rewrite(&shifted.eq(&c(0x201, 32))).is_false());
    }

    #[test]
    fn extract_distributes_into_add() {
        let x = s(0, 32);
        let y = s(1, 32);
        let e = x.add(&y).extract(7, 0);
        assert_eq!(rewrite(&e), x.extract(7, 0).add(&y.extract(7, 0)));
    }

    #[test]
    fn rewrite_is_idempotent_on_examples() {
        let x = s(0, 8);
        let y = s(1, 8);
        let exprs = [
            x.zext(32).ult(&y.zext(32)),
            x.concat(&y).eq(&c(0x1234, 16)),
            x.zext(32).and(&c(0xf0, 32)).or(&c(0x0f, 32)),
            x.zext(16).add(&y.zext(16)).extract(7, 0),
        ];
        for e in &exprs {
            let once = rewrite(e);
            assert_eq!(rewrite(&once), once, "not idempotent on {e}");
        }
    }

    #[test]
    fn dag_node_count_shares_subtrees() {
        let x = s(0, 32);
        let shared = x.add(&c(1, 32));
        let e1 = shared.ult(&c(10, 32));
        let e2 = shared.ult(&c(20, 32));
        // x, 1, x+1, 10, 20, cmp1, cmp2 = 7 distinct nodes.
        assert_eq!(dag_node_count(&[e1, e2]), 7);
    }
}
