//! Traversal utilities: symbol collection and substitution.

use std::collections::{BTreeSet, HashMap};

use crate::node::{Expr, ExprNode};
use crate::SymId;

/// Collects the set of symbols appearing in `e` into `out`.
pub fn collect_syms(e: &Expr, out: &mut BTreeSet<SymId>) {
    match e.node() {
        ExprNode::Const { .. } => {}
        ExprNode::Sym { id, .. } => {
            out.insert(*id);
        }
        ExprNode::Not(a) | ExprNode::Neg(a) => collect_syms(a, out),
        ExprNode::Bin(_, a, b) | ExprNode::Cmp(_, a, b) => {
            collect_syms(a, out);
            collect_syms(b, out);
        }
        ExprNode::ZExt { e, .. } | ExprNode::SExt { e, .. } | ExprNode::Extract { e, .. } => {
            collect_syms(e, out)
        }
        ExprNode::Concat { hi, lo } => {
            collect_syms(hi, out);
            collect_syms(lo, out);
        }
        ExprNode::Ite { cond, then, els } => {
            collect_syms(cond, out);
            collect_syms(then, out);
            collect_syms(els, out);
        }
    }
}

/// Collects every symbol appearing in `e` together with the width it is
/// used at. Within one well-formed path a symbol has a single width, but
/// sibling paths number their symbols independently, so consumers that
/// persist state *across* queries (the incremental solver session) use this
/// to detect when a `SymId` is being reused at a different width.
pub fn collect_sym_widths(e: &Expr, out: &mut HashMap<SymId, u32>) {
    match e.node() {
        ExprNode::Const { .. } => {}
        ExprNode::Sym { id, width } => {
            out.insert(*id, *width);
        }
        ExprNode::Not(a) | ExprNode::Neg(a) => collect_sym_widths(a, out),
        ExprNode::Bin(_, a, b) | ExprNode::Cmp(_, a, b) => {
            collect_sym_widths(a, out);
            collect_sym_widths(b, out);
        }
        ExprNode::ZExt { e, .. } | ExprNode::SExt { e, .. } | ExprNode::Extract { e, .. } => {
            collect_sym_widths(e, out)
        }
        ExprNode::Concat { hi, lo } => {
            collect_sym_widths(hi, out);
            collect_sym_widths(lo, out);
        }
        ExprNode::Ite { cond, then, els } => {
            collect_sym_widths(cond, out);
            collect_sym_widths(then, out);
            collect_sym_widths(els, out);
        }
    }
}

impl Expr {
    /// Returns the set of symbols appearing in this expression.
    pub fn syms(&self) -> BTreeSet<SymId> {
        let mut out = BTreeSet::new();
        collect_syms(self, &mut out);
        out
    }

    /// Returns true if the expression mentions `id`.
    pub fn mentions(&self, id: SymId) -> bool {
        self.syms().contains(&id)
    }
}

/// The route from the root of `e` to the first (leftmost) occurrence of
/// symbol `id`: one human-readable step per expression node traversed.
///
/// This is the trace-store provenance hook (paper §3.6: traces "identify on
/// what symbolic values the condition depended ... why they were created"):
/// a bug artifact records, for every symbol reaching the bug site, the chain
/// of expression nodes through which the raw input value (hardware read,
/// registry parameter, entry argument) flowed into the failing condition.
///
/// Returns `None` if the expression does not mention `id`.
pub fn sym_route(e: &Expr, id: SymId) -> Option<Vec<String>> {
    fn step(label: String, rest: Option<Vec<String>>) -> Option<Vec<String>> {
        rest.map(|mut route| {
            route.insert(0, label);
            route
        })
    }
    match e.node() {
        ExprNode::Const { .. } => None,
        ExprNode::Sym { id: here, width } => {
            (*here == id).then(|| vec![format!("sym {here} ({width} bits)")])
        }
        ExprNode::Not(a) => step("not".into(), sym_route(a, id)),
        ExprNode::Neg(a) => step("neg".into(), sym_route(a, id)),
        ExprNode::Bin(op, a, b) => sym_route(a, id)
            .map(|r| step(format!("{op:?}.lhs").to_lowercase(), Some(r)).unwrap())
            .or_else(|| step(format!("{op:?}.rhs").to_lowercase(), sym_route(b, id))),
        ExprNode::Cmp(op, a, b) => sym_route(a, id)
            .map(|r| step(format!("{op:?}.lhs").to_lowercase(), Some(r)).unwrap())
            .or_else(|| step(format!("{op:?}.rhs").to_lowercase(), sym_route(b, id))),
        ExprNode::ZExt { e, width } => step(format!("zext{width}"), sym_route(e, id)),
        ExprNode::SExt { e, width } => step(format!("sext{width}"), sym_route(e, id)),
        ExprNode::Extract { e, hi, lo } => {
            step(format!("extract[{hi}:{lo}]"), sym_route(e, id))
        }
        ExprNode::Concat { hi, lo } => step("concat.hi".into(), sym_route(hi, id))
            .or_else(|| step("concat.lo".into(), sym_route(lo, id))),
        ExprNode::Ite { cond, then, els } => step("ite.cond".into(), sym_route(cond, id))
            .or_else(|| step("ite.then".into(), sym_route(then, id)))
            .or_else(|| step("ite.else".into(), sym_route(els, id))),
    }
}

/// Substitutes symbols by expressions, rebuilding (and thus re-simplifying)
/// the tree bottom-up.
///
/// Replacement expressions must match the widths of the symbols they
/// replace.
///
/// # Panics
///
/// Panics if a replacement has the wrong width.
pub fn subst(e: &Expr, map: &HashMap<SymId, Expr>) -> Expr {
    match e.node() {
        ExprNode::Const { .. } => e.clone(),
        ExprNode::Sym { id, width } => match map.get(id) {
            Some(r) => {
                assert_eq!(r.width(), *width, "substitution width mismatch for {id}");
                r.clone()
            }
            None => e.clone(),
        },
        ExprNode::Not(a) => subst(a, map).not(),
        ExprNode::Neg(a) => subst(a, map).neg(),
        ExprNode::Bin(op, a, b) => Expr::bin(*op, &subst(a, map), &subst(b, map)),
        ExprNode::Cmp(op, a, b) => Expr::cmp(*op, &subst(a, map), &subst(b, map)),
        ExprNode::ZExt { e, width } => subst(e, map).zext(*width),
        ExprNode::SExt { e, width } => subst(e, map).sext(*width),
        ExprNode::Extract { e, hi, lo } => subst(e, map).extract(*hi, *lo),
        ExprNode::Concat { hi, lo } => subst(hi, map).concat(&subst(lo, map)),
        ExprNode::Ite { cond, then, els } => {
            Expr::ite(&subst(cond, map), &subst(then, map), &subst(els, map))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    #[test]
    fn collects_all_syms() {
        let a = Expr::sym(SymId(1), 32);
        let b = Expr::sym(SymId(2), 32);
        let c = Expr::sym(SymId(3), 1);
        let e = Expr::ite(&c, &a.add(&b), &b);
        let syms = e.syms();
        assert_eq!(syms.len(), 3);
        assert!(syms.contains(&SymId(1)) && syms.contains(&SymId(2)) && syms.contains(&SymId(3)));
    }

    #[test]
    fn subst_replaces_and_simplifies() {
        let a = Expr::sym(SymId(1), 32);
        let b = Expr::sym(SymId(2), 32);
        let e = a.add(&b).ult(&Expr::constant(100, 32));
        let mut map = HashMap::new();
        map.insert(SymId(1), Expr::constant(10, 32));
        map.insert(SymId(2), Expr::constant(20, 32));
        assert!(subst(&e, &map).is_true());
    }

    #[test]
    fn subst_agrees_with_eval() {
        let a = Expr::sym(SymId(1), 32);
        let b = Expr::sym(SymId(2), 32);
        let e = a.mul(&b).xor(&a.lshr(&Expr::constant(3, 32)));
        let mut map = HashMap::new();
        map.insert(SymId(1), Expr::constant(0x1234, 32));
        map.insert(SymId(2), Expr::constant(0x77, 32));
        let mut asg = Assignment::new();
        asg.set(SymId(1), 0x1234);
        asg.set(SymId(2), 0x77);
        assert_eq!(subst(&e, &map).as_const(), Some(e.eval(&asg)));
    }

    #[test]
    fn mentions_checks_membership() {
        let a = Expr::sym(SymId(1), 32);
        let e = a.add(&Expr::constant(1, 32));
        assert!(e.mentions(SymId(1)));
        assert!(!e.mentions(SymId(2)));
    }
}
