//! Traversal utilities: symbol collection and substitution.

use std::collections::{BTreeSet, HashMap};

use crate::node::{Expr, ExprNode};
use crate::SymId;

/// Collects the set of symbols appearing in `e` into `out`.
pub fn collect_syms(e: &Expr, out: &mut BTreeSet<SymId>) {
    match e.node() {
        ExprNode::Const { .. } => {}
        ExprNode::Sym { id, .. } => {
            out.insert(*id);
        }
        ExprNode::Not(a) | ExprNode::Neg(a) => collect_syms(a, out),
        ExprNode::Bin(_, a, b) | ExprNode::Cmp(_, a, b) => {
            collect_syms(a, out);
            collect_syms(b, out);
        }
        ExprNode::ZExt { e, .. } | ExprNode::SExt { e, .. } | ExprNode::Extract { e, .. } => {
            collect_syms(e, out)
        }
        ExprNode::Concat { hi, lo } => {
            collect_syms(hi, out);
            collect_syms(lo, out);
        }
        ExprNode::Ite { cond, then, els } => {
            collect_syms(cond, out);
            collect_syms(then, out);
            collect_syms(els, out);
        }
    }
}

impl Expr {
    /// Returns the set of symbols appearing in this expression.
    pub fn syms(&self) -> BTreeSet<SymId> {
        let mut out = BTreeSet::new();
        collect_syms(self, &mut out);
        out
    }

    /// Returns true if the expression mentions `id`.
    pub fn mentions(&self, id: SymId) -> bool {
        self.syms().contains(&id)
    }
}

/// Substitutes symbols by expressions, rebuilding (and thus re-simplifying)
/// the tree bottom-up.
///
/// Replacement expressions must match the widths of the symbols they
/// replace.
///
/// # Panics
///
/// Panics if a replacement has the wrong width.
pub fn subst(e: &Expr, map: &HashMap<SymId, Expr>) -> Expr {
    match e.node() {
        ExprNode::Const { .. } => e.clone(),
        ExprNode::Sym { id, width } => match map.get(id) {
            Some(r) => {
                assert_eq!(r.width(), *width, "substitution width mismatch for {id}");
                r.clone()
            }
            None => e.clone(),
        },
        ExprNode::Not(a) => subst(a, map).not(),
        ExprNode::Neg(a) => subst(a, map).neg(),
        ExprNode::Bin(op, a, b) => Expr::bin(*op, &subst(a, map), &subst(b, map)),
        ExprNode::Cmp(op, a, b) => Expr::cmp(*op, &subst(a, map), &subst(b, map)),
        ExprNode::ZExt { e, width } => subst(e, map).zext(*width),
        ExprNode::SExt { e, width } => subst(e, map).sext(*width),
        ExprNode::Extract { e, hi, lo } => subst(e, map).extract(*hi, *lo),
        ExprNode::Concat { hi, lo } => subst(hi, map).concat(&subst(lo, map)),
        ExprNode::Ite { cond, then, els } => {
            Expr::ite(&subst(cond, map), &subst(then, map), &subst(els, map))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    #[test]
    fn collects_all_syms() {
        let a = Expr::sym(SymId(1), 32);
        let b = Expr::sym(SymId(2), 32);
        let c = Expr::sym(SymId(3), 1);
        let e = Expr::ite(&c, &a.add(&b), &b);
        let syms = e.syms();
        assert_eq!(syms.len(), 3);
        assert!(syms.contains(&SymId(1)) && syms.contains(&SymId(2)) && syms.contains(&SymId(3)));
    }

    #[test]
    fn subst_replaces_and_simplifies() {
        let a = Expr::sym(SymId(1), 32);
        let b = Expr::sym(SymId(2), 32);
        let e = a.add(&b).ult(&Expr::constant(100, 32));
        let mut map = HashMap::new();
        map.insert(SymId(1), Expr::constant(10, 32));
        map.insert(SymId(2), Expr::constant(20, 32));
        assert!(subst(&e, &map).is_true());
    }

    #[test]
    fn subst_agrees_with_eval() {
        let a = Expr::sym(SymId(1), 32);
        let b = Expr::sym(SymId(2), 32);
        let e = a.mul(&b).xor(&a.lshr(&Expr::constant(3, 32)));
        let mut map = HashMap::new();
        map.insert(SymId(1), Expr::constant(0x1234, 32));
        map.insert(SymId(2), Expr::constant(0x77, 32));
        let mut asg = Assignment::new();
        asg.set(SymId(1), 0x1234);
        asg.set(SymId(2), 0x77);
        assert_eq!(subst(&e, &map).as_const(), Some(e.eval(&asg)));
    }

    #[test]
    fn mentions_checks_membership() {
        let a = Expr::sym(SymId(1), 32);
        let e = a.add(&Expr::constant(1, 32));
        assert!(e.mentions(SymId(1)));
        assert!(!e.mentions(SymId(2)));
    }
}
