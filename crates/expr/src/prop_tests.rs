//! In-crate property tests for the expression layer: algebraic identities
//! that the smart constructors must respect for every operand shape.

#![cfg(test)]

use proptest::prelude::*;

use crate::{Assignment, Expr, SymId};

fn arb_width() -> impl Strategy<Value = u32> {
    prop_oneof![Just(1u32), Just(8), Just(16), Just(32), Just(64)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Constants are always folded: operations on two constants yield a
    /// constant node.
    #[test]
    fn constants_always_fold(a in any::<u64>(), b in any::<u64>(), w in arb_width()) {
        let ea = Expr::constant(a, w);
        let eb = Expr::constant(b, w);
        for e in [
            ea.add(&eb), ea.sub(&eb), ea.mul(&eb), ea.and(&eb), ea.or(&eb),
            ea.xor(&eb), ea.shl(&eb), ea.lshr(&eb), ea.ashr(&eb),
            ea.udiv(&eb), ea.urem(&eb), ea.sdiv(&eb), ea.srem(&eb),
        ] {
            prop_assert!(e.is_const(), "{e} not folded");
            prop_assert_eq!(e.width(), w);
        }
        for c in [ea.eq(&eb), ea.ne(&eb), ea.ult(&eb), ea.slt(&eb)] {
            prop_assert!(c.is_const());
            prop_assert_eq!(c.width(), 1);
        }
    }

    /// Evaluation respects the algebraic laws the simplifier exploits.
    #[test]
    fn algebraic_laws_hold_under_eval(x in any::<u64>(), y in any::<u64>(), w in arb_width()) {
        let sx = Expr::sym(SymId(0), w);
        let sy = Expr::sym(SymId(1), w);
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        asg.set(SymId(1), y);
        // Commutativity.
        prop_assert_eq!(sx.add(&sy).eval(&asg), sy.add(&sx).eval(&asg));
        prop_assert_eq!(sx.mul(&sy).eval(&asg), sy.mul(&sx).eval(&asg));
        prop_assert_eq!(sx.xor(&sy).eval(&asg), sy.xor(&sx).eval(&asg));
        // Involution and inverses.
        prop_assert_eq!(sx.not().not().eval(&asg), sx.eval(&asg));
        prop_assert_eq!(sx.neg().neg().eval(&asg), sx.eval(&asg));
        prop_assert_eq!(sx.sub(&sy).add(&sy).eval(&asg), sx.eval(&asg));
        // De Morgan.
        prop_assert_eq!(
            sx.and(&sy).not().eval(&asg),
            sx.not().or(&sy.not()).eval(&asg)
        );
    }

    /// Zero/sign extension then extraction is the identity.
    #[test]
    fn extend_extract_roundtrip(x in any::<u64>(), w in prop_oneof![Just(8u32), Just(16), Just(32)]) {
        let sx = Expr::sym(SymId(0), w);
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        let z = sx.zext(64).extract(w - 1, 0);
        prop_assert_eq!(z.eval(&asg), sx.eval(&asg));
        let s = sx.sext(64).extract(w - 1, 0);
        prop_assert_eq!(s.eval(&asg), sx.eval(&asg));
    }

    /// Byte-splitting and re-concatenation is the identity (the memory
    /// model depends on this).
    #[test]
    fn byte_split_concat_roundtrip(x in any::<u64>()) {
        let sx = Expr::sym(SymId(0), 32);
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        let b0 = sx.extract(7, 0);
        let b1 = sx.extract(15, 8);
        let b2 = sx.extract(23, 16);
        let b3 = sx.extract(31, 24);
        let rt = b3.concat(&b2).concat(&b1).concat(&b0);
        prop_assert_eq!(rt.eval(&asg), sx.eval(&asg));
        // And the simplifier recovers the original expression exactly.
        prop_assert_eq!(rt, sx);
    }

    /// `lnot` is semantic negation for every comparison shape.
    #[test]
    fn lnot_is_negation(x in any::<u64>(), y in any::<u64>()) {
        let sx = Expr::sym(SymId(0), 32);
        let sy = Expr::sym(SymId(1), 32);
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        asg.set(SymId(1), y);
        for c in [sx.eq(&sy), sx.ne(&sy), sx.ult(&sy), sx.ule(&sy), sx.slt(&sy), sx.sle(&sy)] {
            prop_assert_eq!(c.lnot().eval_bool(&asg), !c.eval_bool(&asg));
        }
    }

    /// Substitution commutes with evaluation.
    #[test]
    fn subst_commutes_with_eval(x in any::<u64>(), y in any::<u64>()) {
        let sx = Expr::sym(SymId(0), 32);
        let sy = Expr::sym(SymId(1), 32);
        let e = sx.mul(&sy).add(&sx.lshr(&Expr::constant(5, 32))).xor(&sy.not());
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        asg.set(SymId(1), y);
        let mut map = std::collections::HashMap::new();
        map.insert(SymId(0), Expr::constant(x, 32));
        map.insert(SymId(1), Expr::constant(y, 32));
        prop_assert_eq!(crate::subst(&e, &map).as_const(), Some(e.eval(&asg)));
    }
}
