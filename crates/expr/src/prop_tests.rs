//! In-crate property tests for the expression layer: algebraic identities
//! that the smart constructors must respect for every operand shape.

#![cfg(test)]

use proptest::prelude::*;

use crate::{Assignment, Expr, SymId};

fn arb_width() -> impl Strategy<Value = u32> {
    prop_oneof![Just(1u32), Just(8), Just(16), Just(32), Just(64)]
}

/// Deterministically builds a small 32-bit expression from a seed — a
/// compact generator for structural (Ord/Hash/cache-key) properties, where
/// the value distribution matters less than cheap structural diversity.
fn arb_small_expr(seed: u32) -> Expr {
    let x = Expr::sym(SymId(0), 32);
    let y = Expr::sym(SymId(1), 32);
    let leaf = match seed % 4 {
        0 => x.clone(),
        1 => y.clone(),
        2 => Expr::constant((seed >> 2) as u64, 32),
        _ => x.add(&Expr::constant((seed >> 2) as u64 & 0xff, 32)),
    };
    match (seed >> 8) % 6 {
        0 => leaf,
        1 => leaf.mul(&y),
        2 => leaf.xor(&x).not(),
        3 => leaf.lshr(&Expr::constant((seed >> 11) as u64 % 32, 32)),
        4 => leaf.sub(&y).and(&Expr::constant(0xffff, 32)),
        _ => leaf.or(&y.shl(&Expr::constant(1, 32))),
    }
}

/// Deterministically builds an expression DAG of the given width from a
/// seed — deeper and shape-richer than [`arb_small_expr`], covering every
/// node kind the rewriter has rules for (extensions, extracts, concats,
/// ites, comparisons at mixed widths).
fn gen_deep_expr(rng: &mut u64, w: u32, depth: u32) -> Expr {
    fn next(rng: &mut u64) -> u64 {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        *rng
    }
    // Symbol ids encode the width so every (id, width) pairing is unique.
    let sym = |rng: &mut u64, w: u32| Expr::sym(SymId(100 * (1 + (next(rng) % 3) as u32) + w), w);
    if depth == 0 {
        return if next(rng) % 3 == 0 { Expr::constant(next(rng), w) } else { sym(rng, w) };
    }
    match next(rng) % 12 {
        0 => Expr::constant(next(rng), w),
        1 => sym(rng, w),
        2 => gen_deep_expr(rng, w, depth - 1).not(),
        3 => gen_deep_expr(rng, w, depth - 1).neg(),
        4..=6 => {
            use crate::BinOp::*;
            let ops = [Add, Sub, Mul, UDiv, URem, SDiv, SRem, And, Or, Xor, Shl, LShr, AShr];
            let op = ops[(next(rng) % ops.len() as u64) as usize];
            let a = gen_deep_expr(rng, w, depth - 1);
            let b = gen_deep_expr(rng, w, depth - 1);
            Expr::bin(op, &a, &b)
        }
        7 if w > 1 => {
            let iw = 1 + (next(rng) % (w as u64 - 1)) as u32;
            let inner = gen_deep_expr(rng, iw, depth - 1);
            if next(rng) % 2 == 0 {
                inner.zext(w)
            } else {
                inner.sext(w)
            }
        }
        8 if w < 64 => {
            let outer = w + 1 + (next(rng) % (64 - w) as u64) as u32;
            let inner = gen_deep_expr(rng, outer, depth - 1);
            let lo = (next(rng) % (outer - w + 1) as u64) as u32;
            inner.extract(lo + w - 1, lo)
        }
        9 if w > 1 => {
            let lw = 1 + (next(rng) % (w as u64 - 1)) as u32;
            let hi = gen_deep_expr(rng, w - lw, depth - 1);
            let lo = gen_deep_expr(rng, lw, depth - 1);
            hi.concat(&lo)
        }
        10 => {
            let cond = gen_deep_expr(rng, 1, depth - 1);
            let t = gen_deep_expr(rng, w, depth - 1);
            let e = gen_deep_expr(rng, w, depth - 1);
            Expr::ite(&cond, &t, &e)
        }
        _ => {
            use crate::CmpOp::*;
            let cw = [1u32, 8, 16, 32, 64][(next(rng) % 5) as usize];
            let ops = [Eq, Ne, Ult, Ule, Slt, Sle];
            let op = ops[(next(rng) % ops.len() as u64) as usize];
            let a = gen_deep_expr(rng, cw, depth - 1);
            let b = gen_deep_expr(rng, cw, depth - 1);
            let c = Expr::cmp(op, &a, &b);
            if w == 1 {
                c
            } else {
                c.zext(w)
            }
        }
    }
}

/// Deterministically builds a small boolean constraint from a seed.
fn arb_small_constraint(seed: u32) -> Expr {
    let a = arb_small_expr(seed);
    let b = arb_small_expr(seed.rotate_left(13) ^ 0x9e37);
    match (seed >> 16) % 4 {
        0 => a.eq(&b),
        1 => a.ne(&b),
        2 => a.ult(&b),
        _ => a.sle(&b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Constants are always folded: operations on two constants yield a
    /// constant node.
    #[test]
    fn constants_always_fold(a in any::<u64>(), b in any::<u64>(), w in arb_width()) {
        let ea = Expr::constant(a, w);
        let eb = Expr::constant(b, w);
        for e in [
            ea.add(&eb), ea.sub(&eb), ea.mul(&eb), ea.and(&eb), ea.or(&eb),
            ea.xor(&eb), ea.shl(&eb), ea.lshr(&eb), ea.ashr(&eb),
            ea.udiv(&eb), ea.urem(&eb), ea.sdiv(&eb), ea.srem(&eb),
        ] {
            prop_assert!(e.is_const(), "{e} not folded");
            prop_assert_eq!(e.width(), w);
        }
        for c in [ea.eq(&eb), ea.ne(&eb), ea.ult(&eb), ea.slt(&eb)] {
            prop_assert!(c.is_const());
            prop_assert_eq!(c.width(), 1);
        }
    }

    /// Evaluation respects the algebraic laws the simplifier exploits.
    #[test]
    fn algebraic_laws_hold_under_eval(x in any::<u64>(), y in any::<u64>(), w in arb_width()) {
        let sx = Expr::sym(SymId(0), w);
        let sy = Expr::sym(SymId(1), w);
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        asg.set(SymId(1), y);
        // Commutativity.
        prop_assert_eq!(sx.add(&sy).eval(&asg), sy.add(&sx).eval(&asg));
        prop_assert_eq!(sx.mul(&sy).eval(&asg), sy.mul(&sx).eval(&asg));
        prop_assert_eq!(sx.xor(&sy).eval(&asg), sy.xor(&sx).eval(&asg));
        // Involution and inverses.
        prop_assert_eq!(sx.not().not().eval(&asg), sx.eval(&asg));
        prop_assert_eq!(sx.neg().neg().eval(&asg), sx.eval(&asg));
        prop_assert_eq!(sx.sub(&sy).add(&sy).eval(&asg), sx.eval(&asg));
        // De Morgan.
        prop_assert_eq!(
            sx.and(&sy).not().eval(&asg),
            sx.not().or(&sy.not()).eval(&asg)
        );
    }

    /// Zero/sign extension then extraction is the identity.
    #[test]
    fn extend_extract_roundtrip(x in any::<u64>(), w in prop_oneof![Just(8u32), Just(16), Just(32)]) {
        let sx = Expr::sym(SymId(0), w);
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        let z = sx.zext(64).extract(w - 1, 0);
        prop_assert_eq!(z.eval(&asg), sx.eval(&asg));
        let s = sx.sext(64).extract(w - 1, 0);
        prop_assert_eq!(s.eval(&asg), sx.eval(&asg));
    }

    /// Byte-splitting and re-concatenation is the identity (the memory
    /// model depends on this).
    #[test]
    fn byte_split_concat_roundtrip(x in any::<u64>()) {
        let sx = Expr::sym(SymId(0), 32);
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        let b0 = sx.extract(7, 0);
        let b1 = sx.extract(15, 8);
        let b2 = sx.extract(23, 16);
        let b3 = sx.extract(31, 24);
        let rt = b3.concat(&b2).concat(&b1).concat(&b0);
        prop_assert_eq!(rt.eval(&asg), sx.eval(&asg));
        // And the simplifier recovers the original expression exactly.
        prop_assert_eq!(rt, sx);
    }

    /// `lnot` is semantic negation for every comparison shape.
    #[test]
    fn lnot_is_negation(x in any::<u64>(), y in any::<u64>()) {
        let sx = Expr::sym(SymId(0), 32);
        let sy = Expr::sym(SymId(1), 32);
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        asg.set(SymId(1), y);
        for c in [sx.eq(&sy), sx.ne(&sy), sx.ult(&sy), sx.ule(&sy), sx.slt(&sy), sx.sle(&sy)] {
            prop_assert_eq!(c.lnot().eval_bool(&asg), !c.eval_bool(&asg));
        }
    }

    /// The structural order is a total order consistent with `Eq`, and
    /// hashing is consistent with both — the invariants the solver's cache
    /// keys stand on.
    #[test]
    fn ord_hash_eq_are_consistent(seed_a in any::<u32>(), seed_b in any::<u32>()) {
        use std::cmp::Ordering;
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = arb_small_expr(seed_a);
        let b = arb_small_expr(seed_b);
        let hash = |e: &Expr| {
            let mut h = DefaultHasher::new();
            e.hash(&mut h);
            h.finish()
        };
        match a.cmp(&b) {
            Ordering::Equal => {
                prop_assert_eq!(&a, &b, "Ord-equal exprs must be Eq-equal");
                prop_assert_eq!(hash(&a), hash(&b), "equal exprs must hash equal");
            }
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
        prop_assert_eq!(a.cmp(&a), Ordering::Equal, "Ord must be reflexive");
    }

    /// `cache_key` canonicalization is order-insensitive: every rotation of
    /// a constraint list (with a duplicate thrown in) produces the same key.
    #[test]
    fn cache_key_is_order_insensitive(seeds in prop::collection::vec(any::<u32>(), 1..6), rot in any::<usize>()) {
        let cs: Vec<Expr> = seeds.iter().map(|&s| arb_small_constraint(s)).collect();
        let base = crate::cache_key(&cs);
        let mut rotated = cs.clone();
        rotated.rotate_left(rot % cs.len().max(1));
        rotated.push(cs[rot % cs.len()].clone()); // Duplicate one element.
        prop_assert_eq!(crate::cache_key(&rotated), base);
    }

    /// `cache_key` is collision-free on structurally distinct expressions:
    /// unequal singleton constraints get unequal keys, and a key always
    /// round-trips the set it was built from.
    #[test]
    fn cache_key_is_collision_free(seed_a in any::<u32>(), seed_b in any::<u32>()) {
        let a = arb_small_constraint(seed_a);
        let b = arb_small_constraint(seed_b);
        let ka = crate::cache_key(std::slice::from_ref(&a));
        let kb = crate::cache_key(std::slice::from_ref(&b));
        if a == b {
            prop_assert_eq!(&ka, &kb);
        } else {
            prop_assert!(ka != kb, "distinct constraints {} vs {} collided", a, b);
        }
        // The key preserves the member expressions exactly (no lossy hashing).
        prop_assert!(ka.contains(&a));
        let kab = crate::cache_key(&[a.clone(), b.clone()]);
        prop_assert!(kab.contains(&a) && kab.contains(&b));
        // Subset reasoning primitives agree with set semantics.
        prop_assert!(crate::is_subset_sorted(&ka, &kab));
        prop_assert_eq!(crate::subset_signature(&ka) & !crate::subset_signature(&kab), 0);
    }

    /// Rewriter soundness: for random expression DAGs and random models,
    /// the rewritten expression evaluates bit-identically to the original.
    /// This is the contract that makes pre-blast rewriting verdict-sound in
    /// the solver (DESIGN.md §4.12).
    #[test]
    fn rewrite_preserves_evaluation(
        seed in any::<u64>(),
        vals in prop::collection::vec(any::<u64>(), 9..10),
    ) {
        let mut rng = seed | 1;
        let w = [1u32, 8, 16, 32, 64][(seed % 5) as usize];
        let e = gen_deep_expr(&mut rng, w, 4);
        let mut syms = std::collections::BTreeSet::new();
        crate::collect_syms(&e, &mut syms);
        let mut asg = Assignment::new();
        for (i, id) in syms.iter().enumerate() {
            asg.set(*id, vals[i % vals.len()]);
        }
        let r = crate::rewrite(&e);
        prop_assert_eq!(r.width(), e.width(), "rewrite changed width of {}", e);
        prop_assert_eq!(r.eval(&asg), e.eval(&asg), "rewrite changed value of {}", e);
        // Idempotence: rewrite ∘ rewrite = rewrite.
        prop_assert_eq!(crate::rewrite(&r), r.clone(), "rewrite not idempotent on {}", e);
        // The batch entry point agrees with the single-expression one.
        prop_assert_eq!(crate::rewrite_all(std::slice::from_ref(&e)), vec![r]);
    }

    /// Rewriter soundness on boolean constraints specifically (the shape
    /// every solver key is made of), including under the all-zeros model the
    /// solver uses as its first fast-path candidate.
    #[test]
    fn rewrite_preserves_constraint_truth(seed in any::<u64>(), x in any::<u64>(), y in any::<u64>()) {
        let mut rng = seed | 1;
        let c = gen_deep_expr(&mut rng, 1, 5);
        let r = crate::rewrite(&c);
        let mut syms = std::collections::BTreeSet::new();
        crate::collect_syms(&c, &mut syms);
        for vals in [[0u64, 0], [x, y], [u64::MAX, 1]] {
            let mut asg = Assignment::new();
            for (i, id) in syms.iter().enumerate() {
                asg.set(*id, vals[i % 2]);
            }
            prop_assert_eq!(
                r.eval_bool(&asg),
                c.eval_bool(&asg),
                "rewrite changed truth of {} under {:?}", c, asg
            );
        }
    }

    /// Substitution commutes with evaluation.
    #[test]
    fn subst_commutes_with_eval(x in any::<u64>(), y in any::<u64>()) {
        let sx = Expr::sym(SymId(0), 32);
        let sy = Expr::sym(SymId(1), 32);
        let e = sx.mul(&sy).add(&sx.lshr(&Expr::constant(5, 32))).xor(&sy.not());
        let mut asg = Assignment::new();
        asg.set(SymId(0), x);
        asg.set(SymId(1), y);
        let mut map = std::collections::HashMap::new();
        map.insert(SymId(0), Expr::constant(x, 32));
        map.insert(SymId(1), Expr::constant(y, 32));
        prop_assert_eq!(crate::subst(&e, &map).as_const(), Some(e.eval(&asg)));
    }
}
