//! Symbolic bitvector expressions for the DDT symbolic execution engine.
//!
//! This crate is the expression layer of the Klee-equivalent substrate used
//! by DDT (see DESIGN.md §4.2). It provides:
//!
//! - [`Expr`]: an immutable, reference-counted bitvector expression tree with
//!   widths of 1–64 bits,
//! - smart constructors that aggressively constant-fold and apply algebraic
//!   simplifications at build time,
//! - [`Expr::eval`]: evaluation under a concrete [`Assignment`] of symbols,
//! - symbol collection and substitution utilities used by the solver and the
//!   trace analyzer.
//!
//! Widths are tracked dynamically: every expression knows its width in bits,
//! and mixed-width operands are a construction error (callers extend or
//! extract explicitly, as the symbolic interpreter does for sub-word loads).
//!
//! # Examples
//!
//! ```
//! use ddt_expr::{Expr, SymId};
//!
//! let a = Expr::sym(SymId(0), 32);
//! let e = a.add(&Expr::constant(5, 32)).ult(&Expr::constant(10, 32));
//! assert_eq!(e.width(), 1);
//! ```

mod canon;
mod eval;
mod intern;
mod node;
mod prop_tests;
mod rewrite;
mod visit;

pub use canon::{cache_key, is_subset_sorted, partition_independent, subset_signature};
pub use intern::intern_stats;
pub use eval::Assignment;
pub use rewrite::{dag_node_count, rewrite, rewrite_all};
pub use node::{
    fold_bin, //
    fold_cmp,
    BinOp,
    CmpOp,
    Expr,
    ExprNode,
    SymId,
};
pub use visit::{collect_sym_widths, collect_syms, subst, sym_route};

/// Maximum supported bitvector width.
pub const MAX_WIDTH: u32 = 64;

/// Masks `v` to the low `width` bits.
///
/// # Panics
///
/// Panics if `width` is zero or greater than [`MAX_WIDTH`].
#[inline]
pub fn mask(v: u64, width: u32) -> u64 {
    assert!((1..=MAX_WIDTH).contains(&width), "bad width {width}");
    if width == 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// Sign-extends the low `width` bits of `v` to an `i64`.
#[inline]
pub fn sext(v: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((mask(v, width) << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_truncates() {
        assert_eq!(mask(0x1ff, 8), 0xff);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(0b101, 1), 1);
    }

    #[test]
    fn sext_extends_sign() {
        assert_eq!(sext(0xff, 8), -1);
        assert_eq!(sext(0x7f, 8), 127);
        assert_eq!(sext(0x8000_0000, 32), i32::MIN as i64);
        assert_eq!(sext(1, 1), -1);
    }

    #[test]
    #[should_panic(expected = "bad width")]
    fn mask_rejects_zero_width() {
        mask(0, 0);
    }
}
