//! Concrete evaluation of expressions under symbol assignments.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::node::{Expr, ExprNode};
use crate::{fold_bin, fold_cmp, mask, sext, SymId};

/// A concrete assignment of values to symbolic variables.
///
/// Produced by the solver as a model of a satisfiable path condition and
/// consumed by the replay engine (concrete values for hardware reads,
/// registry parameters, entry-point arguments).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    values: HashMap<SymId, u64>,
}

impl Assignment {
    /// Creates an empty assignment (all symbols default to zero on lookup).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value of a symbol (masked to the width at evaluation time).
    pub fn set(&mut self, id: SymId, value: u64) {
        self.values.insert(id, value);
    }

    /// Returns the value of a symbol, or `None` if unassigned.
    pub fn get(&self, id: SymId) -> Option<u64> {
        self.values.get(&id).copied()
    }

    /// Returns the value of a symbol, defaulting to zero.
    ///
    /// Unassigned symbols are unconstrained, so zero is as good a model
    /// value as any; the solver always extends its models with this default.
    pub fn get_or_zero(&self, id: SymId) -> u64 {
        self.get(id).unwrap_or(0)
    }

    /// Iterates over the assigned (symbol, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SymId, u64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of assigned symbols.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no symbols are assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl FromIterator<(SymId, u64)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (SymId, u64)>>(iter: T) -> Self {
        Assignment { values: iter.into_iter().collect() }
    }
}

impl Expr {
    /// Evaluates the expression under `asg`, treating unassigned symbols as
    /// zero. The result is masked to the expression's width.
    pub fn eval(&self, asg: &Assignment) -> u64 {
        match self.node() {
            ExprNode::Const { bits, .. } => *bits,
            ExprNode::Sym { id, width } => mask(asg.get_or_zero(*id), *width),
            ExprNode::Not(e) => mask(!e.eval(asg), e.width()),
            ExprNode::Neg(e) => mask(e.eval(asg).wrapping_neg(), e.width()),
            ExprNode::Bin(op, a, b) => fold_bin(*op, a.eval(asg), b.eval(asg), a.width()),
            ExprNode::Cmp(op, a, b) => fold_cmp(*op, a.eval(asg), b.eval(asg), a.width()) as u64,
            ExprNode::ZExt { e, .. } => e.eval(asg),
            ExprNode::SExt { e, width } => mask(sext(e.eval(asg), e.width()) as u64, *width),
            ExprNode::Extract { e, hi, lo } => mask(e.eval(asg) >> lo, hi - lo + 1),
            ExprNode::Concat { hi, lo } => {
                mask((hi.eval(asg) << lo.width()) | lo.eval(asg), self.width())
            }
            ExprNode::Ite { cond, then, els } => {
                if cond.eval(asg) != 0 {
                    then.eval(asg)
                } else {
                    els.eval(asg)
                }
            }
        }
    }

    /// Evaluates a 1-bit expression as a boolean.
    ///
    /// # Panics
    ///
    /// Panics if the expression is not 1 bit wide.
    pub fn eval_bool(&self, asg: &Assignment) -> bool {
        assert_eq!(self.width(), 1, "eval_bool needs a boolean");
        self.eval(asg) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        let x = Expr::sym(SymId(1), 32);
        let e = x.add(&Expr::constant(5, 32)).mul(&Expr::constant(2, 32));
        let mut asg = Assignment::new();
        asg.set(SymId(1), 10);
        assert_eq!(e.eval(&asg), 30);
    }

    #[test]
    fn eval_defaults_to_zero() {
        let x = Expr::sym(SymId(9), 16);
        assert_eq!(x.eval(&Assignment::new()), 0);
    }

    #[test]
    fn eval_masks_oversize_assignment() {
        let x = Expr::sym(SymId(1), 8);
        let mut asg = Assignment::new();
        asg.set(SymId(1), 0x1ff);
        assert_eq!(x.eval(&asg), 0xff);
    }

    #[test]
    fn eval_ite_and_cmp() {
        let x = Expr::sym(SymId(1), 32);
        let cond = x.ult(&Expr::constant(5, 32));
        let e = Expr::ite(&cond, &Expr::constant(1, 32), &Expr::constant(2, 32));
        let mut asg = Assignment::new();
        asg.set(SymId(1), 3);
        assert_eq!(e.eval(&asg), 1);
        asg.set(SymId(1), 7);
        assert_eq!(e.eval(&asg), 2);
    }

    #[test]
    fn eval_extract_concat_roundtrip() {
        let x = Expr::sym(SymId(1), 32);
        let lo = x.extract(15, 0);
        let hi = x.extract(31, 16);
        let rt = hi.concat(&lo);
        let mut asg = Assignment::new();
        asg.set(SymId(1), 0xdead_beef);
        assert_eq!(rt.eval(&asg), 0xdead_beef);
    }

    #[test]
    fn eval_signed_ops() {
        let x = Expr::sym(SymId(1), 8);
        let mut asg = Assignment::new();
        asg.set(SymId(1), 0xfe); // -2 as i8.
        assert_eq!(x.sext(32).eval(&asg), 0xffff_fffe);
        assert!(x.slt(&Expr::constant(0, 8)).eval_bool(&asg));
        assert_eq!(x.sdiv(&Expr::constant(2, 8)).eval(&asg), 0xff); // -2/2 = -1.
    }
}
