//! Expression node definitions and simplifying smart constructors.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{mask, sext, MAX_WIDTH};

/// Identifier of a symbolic variable.
///
/// The meaning of a symbol (its provenance: hardware read, registry value,
/// entry-point argument, ...) is kept out-of-band in the symbol table of the
/// execution state; the expression layer only tracks the id and width.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SymId(pub u32);

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Binary bitvector operators (operands and result share a width).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    UDiv,
    URem,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

/// Comparison operators (operands share a width, result is 1 bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Ult,
    Ule,
    Slt,
    Sle,
}

/// The node of a bitvector expression tree.
///
/// The derived [`Ord`] is a total structural order (variant tag, then
/// fields, recursively). It carries no semantic meaning; its single purpose
/// is giving constraint sets a canonical element order for cache keys (see
/// [`crate::cache_key`]), so it must stay consistent with `Eq` and `Hash`.
///
/// Because child `Expr`s are hash-consed (see [`crate::intern`]), the
/// derived `PartialEq`/`Hash` here are *shallow*: children compare by
/// pointer and hash by their precomputed structural hash. Under the
/// interning invariant (every live `Expr` is interned) shallow equality
/// coincides with deep structural equality.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ExprNode {
    /// A constant with `width` significant bits (stored masked).
    Const { bits: u64, width: u32 },
    /// A symbolic variable.
    Sym { id: SymId, width: u32 },
    /// Bitwise negation.
    Not(Expr),
    /// Two's-complement negation.
    Neg(Expr),
    /// Binary operator.
    Bin(BinOp, Expr, Expr),
    /// Comparison; result width is 1.
    Cmp(CmpOp, Expr, Expr),
    /// Zero extension to `width` bits.
    ZExt { e: Expr, width: u32 },
    /// Sign extension to `width` bits.
    SExt { e: Expr, width: u32 },
    /// Bit slice `[hi:lo]` (inclusive); result width is `hi - lo + 1`.
    Extract { e: Expr, hi: u32, lo: u32 },
    /// Concatenation; `hi` occupies the upper bits.
    Concat { hi: Expr, lo: Expr },
    /// If-then-else on a 1-bit condition.
    Ite { cond: Expr, then: Expr, els: Expr },
}

/// The interned payload behind an [`Expr`]: the node plus its precomputed
/// structural hash and width, filled in once at intern time so that
/// `Expr::hash` and `Expr::width` are O(1) forever after.
pub(crate) struct Interned {
    pub(crate) hash: u64,
    pub(crate) width: u32,
    pub(crate) node: ExprNode,
}

/// An immutable, cheaply clonable bitvector expression.
///
/// Constructed through the associated smart constructors, which constant-fold
/// and simplify eagerly so that fully concrete computations never allocate
/// deep trees.
///
/// Expressions are **hash-consed**: identical subtrees share one allocation
/// (see [`crate::intern`]), so `==` is a pointer comparison, `Hash` writes a
/// precomputed word, and `width` is a stored field. The structural [`Ord`]
/// keeps its deep total order (with a pointer fast path at every level) —
/// canonical cache keys depend on it being a pure function of structure.
#[derive(Clone)]
pub struct Expr(Arc<Interned>);

impl PartialEq for Expr {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Interning makes structural equality and pointer equality coincide.
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Expr {}

impl std::hash::Hash for Expr {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for Expr {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Expr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        // Deep structural order; recursion re-enters this fast path at
        // every shared subtree.
        self.0.node.cmp(&other.0.node)
    }
}

impl Serialize for Expr {
    fn to_value(&self) -> serde::Value {
        // Same wire shape as the historical derived newtype impl: the node.
        self.node().to_value()
    }
}

impl Deserialize for Expr {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        // Re-intern on the way in so the process-wide invariant (every live
        // Expr is interned) survives deserialization.
        ExprNode::from_value(v).map(Expr::from_node)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl Expr {
    fn new(node: ExprNode) -> Self {
        crate::intern::intern(node)
    }

    /// Wraps an interned payload (interner internal).
    #[inline]
    pub(crate) fn from_interned(arc: Arc<Interned>) -> Self {
        Expr(arc)
    }

    /// Allocates the interned payload for a node, computing its width from
    /// the (already interned, hence O(1)-width) children.
    pub(crate) fn alloc_interned(hash: u64, node: ExprNode) -> Arc<Interned> {
        let width = match &node {
            ExprNode::Const { width, .. } | ExprNode::Sym { width, .. } => *width,
            ExprNode::Not(e) | ExprNode::Neg(e) => e.width(),
            ExprNode::Bin(_, a, _) => a.width(),
            ExprNode::Cmp(..) => 1,
            ExprNode::ZExt { width, .. } | ExprNode::SExt { width, .. } => *width,
            ExprNode::Extract { hi, lo, .. } => hi - lo + 1,
            ExprNode::Concat { hi, lo } => hi.width() + lo.width(),
            ExprNode::Ite { then, .. } => then.width(),
        };
        Arc::new(Interned { hash, width, node })
    }

    /// True when both handles point at the same interned allocation (under
    /// the interning invariant, equivalent to `==`; exposed for tests and
    /// diagnostics that want to assert the sharing itself).
    #[inline]
    pub fn ptr_eq(a: &Expr, b: &Expr) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Returns the underlying node.
    #[inline]
    pub fn node(&self) -> &ExprNode {
        &self.0.node
    }

    /// Wraps a node verbatim, without smart-constructor simplification.
    ///
    /// For codecs (binary trace encoding, serde) that must reproduce an
    /// expression tree *exactly* as stored: rebuilding through the smart
    /// constructors could rewrite the tree. The node is still interned, so
    /// decoded trees share allocations with live ones. The caller is
    /// responsible for the width invariants the constructors normally
    /// enforce.
    pub fn from_node(node: ExprNode) -> Expr {
        Expr::new(node)
    }

    /// Builds a constant of the given width; the value is masked.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn constant(bits: u64, width: u32) -> Self {
        Expr::new(ExprNode::Const { bits: mask(bits, width), width })
    }

    /// Builds the 1-bit constant `true`.
    pub fn true_() -> Self {
        Expr::constant(1, 1)
    }

    /// Builds the 1-bit constant `false`.
    pub fn false_() -> Self {
        Expr::constant(0, 1)
    }

    /// Builds a symbolic variable.
    pub fn sym(id: SymId, width: u32) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "bad width {width}");
        Expr::new(ExprNode::Sym { id, width })
    }

    /// Returns the width in bits of this expression (precomputed at intern
    /// time; O(1) even for deep trees).
    #[inline]
    pub fn width(&self) -> u32 {
        self.0.width
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_const(&self) -> Option<u64> {
        match self.node() {
            ExprNode::Const { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    /// Returns true if this expression is fully concrete (a constant).
    pub fn is_const(&self) -> bool {
        matches!(self.node(), ExprNode::Const { .. })
    }

    /// Returns true if this is the 1-bit constant `true`.
    pub fn is_true(&self) -> bool {
        self.as_const() == Some(1) && self.width() == 1
    }

    /// Returns true if this is the 1-bit constant `false`.
    pub fn is_false(&self) -> bool {
        self.as_const() == Some(0) && self.width() == 1
    }

    fn assert_same_width(&self, other: &Expr) {
        assert_eq!(
            self.width(),
            other.width(),
            "width mismatch: {} vs {} ({self} vs {other})",
            self.width(),
            other.width()
        );
    }

    /// Builds a binary operation with constant folding and identities.
    pub fn bin(op: BinOp, a: &Expr, b: &Expr) -> Expr {
        a.assert_same_width(b);
        let w = a.width();
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Expr::constant(fold_bin(op, x, y, w), w);
        }
        // Algebraic identities. `b` constant is the common case after
        // canonicalization of commutative operators below.
        let (a, b) = if op_commutes(op) && a.is_const() { (b, a) } else { (a, b) };
        if let Some(c) = b.as_const() {
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor if c == 0 => return a.clone(),
                BinOp::Shl | BinOp::LShr | BinOp::AShr if c == 0 => return a.clone(),
                BinOp::And if c == 0 => return Expr::constant(0, w),
                BinOp::And if c == mask(u64::MAX, w) => return a.clone(),
                BinOp::Or if c == mask(u64::MAX, w) => return Expr::constant(c, w),
                BinOp::Mul if c == 0 => return Expr::constant(0, w),
                BinOp::Mul if c == 1 => return a.clone(),
                BinOp::UDiv if c == 1 => return a.clone(),
                BinOp::Shl | BinOp::LShr if c >= w as u64 => return Expr::constant(0, w),
                _ => {}
            }
        }
        if a == b {
            match op {
                BinOp::Sub | BinOp::Xor => return Expr::constant(0, w),
                BinOp::And | BinOp::Or => return a.clone(),
                _ => {}
            }
        }
        // Reassociate (x + c1) + c2 => x + (c1+c2); same for Sub folded into Add.
        if let (ExprNode::Bin(BinOp::Add, x, c1), Some(c2)) = (a.node(), b.as_const()) {
            if op == BinOp::Add {
                if let Some(c1v) = c1.as_const() {
                    return Expr::bin(BinOp::Add, x, &Expr::constant(c1v.wrapping_add(c2), w));
                }
            }
        }
        Expr::new(ExprNode::Bin(op, a.clone(), b.clone()))
    }

    /// Builds a comparison with constant folding.
    pub fn cmp(op: CmpOp, a: &Expr, b: &Expr) -> Expr {
        a.assert_same_width(b);
        let w = a.width();
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Expr::constant(fold_cmp(op, x, y, w) as u64, 1);
        }
        if a == b {
            return match op {
                CmpOp::Eq | CmpOp::Ule | CmpOp::Sle => Expr::true_(),
                CmpOp::Ne | CmpOp::Ult | CmpOp::Slt => Expr::false_(),
            };
        }
        Expr::new(ExprNode::Cmp(op, a.clone(), b.clone()))
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Expr {
        match self.node() {
            ExprNode::Const { bits, width } => Expr::constant(!bits, *width),
            ExprNode::Not(inner) => inner.clone(),
            _ => Expr::new(ExprNode::Not(self.clone())),
        }
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> Expr {
        match self.node() {
            ExprNode::Const { bits, width } => Expr::constant(bits.wrapping_neg(), *width),
            ExprNode::Neg(inner) => inner.clone(),
            _ => Expr::new(ExprNode::Neg(self.clone())),
        }
    }

    /// Logical NOT of a 1-bit expression.
    ///
    /// # Panics
    ///
    /// Panics if the expression is not 1 bit wide.
    pub fn lnot(&self) -> Expr {
        assert_eq!(self.width(), 1, "lnot needs a boolean");
        // For 1-bit values logical and bitwise negation coincide; also flip
        // comparisons directly so path constraints stay in negation-normal
        // form, which helps the solver's preprocessing.
        if let ExprNode::Cmp(op, a, b) = self.node() {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Ne,
                CmpOp::Ne => CmpOp::Eq,
                CmpOp::Ult => return Expr::cmp(CmpOp::Ule, b, a),
                CmpOp::Ule => return Expr::cmp(CmpOp::Ult, b, a),
                CmpOp::Slt => return Expr::cmp(CmpOp::Sle, b, a),
                CmpOp::Sle => return Expr::cmp(CmpOp::Slt, b, a),
            };
            return Expr::cmp(flipped, a, b);
        }
        self.not()
    }

    /// Zero-extends to `width` bits (no-op if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current width.
    pub fn zext(&self, width: u32) -> Expr {
        let cur = self.width();
        assert!(width >= cur && width <= MAX_WIDTH, "bad zext {cur} -> {width}");
        if width == cur {
            return self.clone();
        }
        match self.node() {
            ExprNode::Const { bits, .. } => Expr::constant(*bits, width),
            ExprNode::ZExt { e, .. } => e.zext(width),
            _ => Expr::new(ExprNode::ZExt { e: self.clone(), width }),
        }
    }

    /// Sign-extends to `width` bits (no-op if already that width).
    pub fn sext(&self, width: u32) -> Expr {
        let cur = self.width();
        assert!(width >= cur && width <= MAX_WIDTH, "bad sext {cur} -> {width}");
        if width == cur {
            return self.clone();
        }
        match self.node() {
            ExprNode::Const { bits, width: w } => Expr::constant(sext(*bits, *w) as u64, width),
            _ => Expr::new(ExprNode::SExt { e: self.clone(), width }),
        }
    }

    /// Extracts bits `[hi:lo]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is out of range.
    pub fn extract(&self, hi: u32, lo: u32) -> Expr {
        let w = self.width();
        assert!(hi >= lo && hi < w, "bad extract [{hi}:{lo}] of width {w}");
        if lo == 0 && hi == w - 1 {
            return self.clone();
        }
        let out_w = hi - lo + 1;
        match self.node() {
            ExprNode::Const { bits, .. } => Expr::constant(bits >> lo, out_w),
            // Extract of extract composes.
            ExprNode::Extract { e, lo: lo2, .. } => e.extract(hi + lo2, lo + lo2),
            // Extract entirely within one side of a concat.
            ExprNode::Concat { hi: h, lo: l } => {
                let lw = l.width();
                if hi < lw {
                    l.extract(hi, lo)
                } else if lo >= lw {
                    h.extract(hi - lw, lo - lw)
                } else {
                    Expr::new(ExprNode::Extract { e: self.clone(), hi, lo })
                }
            }
            // Extract of zext: inside original, or pure zero bits.
            ExprNode::ZExt { e, .. } => {
                let iw = e.width();
                if hi < iw {
                    e.extract(hi, lo)
                } else if lo >= iw {
                    Expr::constant(0, out_w)
                } else if lo == 0 {
                    e.zext(out_w)
                } else {
                    Expr::new(ExprNode::Extract { e: self.clone(), hi, lo })
                }
            }
            _ => Expr::new(ExprNode::Extract { e: self.clone(), hi, lo }),
        }
    }

    /// Concatenates `self` (upper bits) with `lo` (lower bits).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(&self, lo: &Expr) -> Expr {
        let w = self.width() + lo.width();
        assert!(w <= MAX_WIDTH, "concat too wide: {w}");
        if let (Some(h), Some(l)) = (self.as_const(), lo.as_const()) {
            return Expr::constant((h << lo.width()) | l, w);
        }
        // Concat of adjacent extracts of the same source merges.
        if let (
            ExprNode::Extract { e: e1, hi: h1, lo: l1 },
            ExprNode::Extract { e: e2, hi: h2, lo: l2 },
        ) = (self.node(), lo.node())
        {
            if e1 == e2 && *l1 == h2 + 1 {
                return e1.extract(*h1, *l2);
            }
        }
        // Zero upper bits => zext.
        if self.as_const() == Some(0) {
            return lo.zext(w);
        }
        Expr::new(ExprNode::Concat { hi: self.clone(), lo: lo.clone() })
    }

    /// If-then-else on a 1-bit condition.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not 1 bit or the arms differ in width.
    pub fn ite(cond: &Expr, then: &Expr, els: &Expr) -> Expr {
        assert_eq!(cond.width(), 1, "ite condition must be boolean");
        then.assert_same_width(els);
        if cond.is_true() {
            return then.clone();
        }
        if cond.is_false() {
            return els.clone();
        }
        if then == els {
            return then.clone();
        }
        // Boolean-result ITE with constant arms collapses to the condition.
        if then.width() == 1 {
            if then.is_true() && els.is_false() {
                return cond.clone();
            }
            if then.is_false() && els.is_true() {
                return cond.lnot();
            }
        }
        Expr::new(ExprNode::Ite { cond: cond.clone(), then: then.clone(), els: els.clone() })
    }

    // Convenience wrappers (all width-preserving binary ops).

    /// Wrapping addition.
    pub fn add(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::Add, self, o)
    }
    /// Wrapping subtraction.
    pub fn sub(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, o)
    }
    /// Wrapping multiplication.
    pub fn mul(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, o)
    }
    /// Unsigned division (division by zero yields all-ones, as in SMT-LIB).
    pub fn udiv(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::UDiv, self, o)
    }
    /// Unsigned remainder (remainder by zero yields the dividend).
    pub fn urem(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::URem, self, o)
    }
    /// Signed division.
    pub fn sdiv(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::SDiv, self, o)
    }
    /// Signed remainder.
    pub fn srem(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::SRem, self, o)
    }
    /// Bitwise AND.
    pub fn and(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::And, self, o)
    }
    /// Bitwise OR.
    pub fn or(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::Or, self, o)
    }
    /// Bitwise XOR.
    pub fn xor(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::Xor, self, o)
    }
    /// Logical shift left (shift amounts >= width yield 0).
    pub fn shl(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::Shl, self, o)
    }
    /// Logical shift right.
    pub fn lshr(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::LShr, self, o)
    }
    /// Arithmetic shift right.
    pub fn ashr(&self, o: &Expr) -> Expr {
        Expr::bin(BinOp::AShr, self, o)
    }
    /// Equality.
    pub fn eq(&self, o: &Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, self, o)
    }
    /// Inequality.
    pub fn ne(&self, o: &Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, self, o)
    }
    /// Unsigned less-than.
    pub fn ult(&self, o: &Expr) -> Expr {
        Expr::cmp(CmpOp::Ult, self, o)
    }
    /// Unsigned less-or-equal.
    pub fn ule(&self, o: &Expr) -> Expr {
        Expr::cmp(CmpOp::Ule, self, o)
    }
    /// Signed less-than.
    pub fn slt(&self, o: &Expr) -> Expr {
        Expr::cmp(CmpOp::Slt, self, o)
    }
    /// Signed less-or-equal.
    pub fn sle(&self, o: &Expr) -> Expr {
        Expr::cmp(CmpOp::Sle, self, o)
    }

    /// Returns the number of nodes in the tree (diagnostics, size caps).
    pub fn size(&self) -> usize {
        match self.node() {
            ExprNode::Const { .. } | ExprNode::Sym { .. } => 1,
            ExprNode::Not(e) | ExprNode::Neg(e) => 1 + e.size(),
            ExprNode::Bin(_, a, b) | ExprNode::Cmp(_, a, b) => 1 + a.size() + b.size(),
            ExprNode::ZExt { e, .. } | ExprNode::SExt { e, .. } | ExprNode::Extract { e, .. } => {
                1 + e.size()
            }
            ExprNode::Concat { hi, lo } => 1 + hi.size() + lo.size(),
            ExprNode::Ite { cond, then, els } => 1 + cond.size() + then.size() + els.size(),
        }
    }
}

fn op_commutes(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
}

/// Concrete semantics of a binary operator at the given width.
// The explicit zero checks implement SMT-LIB division semantics (x/0 is
// all-ones, x%0 is x), which `checked_div` cannot express directly.
#[allow(clippy::manual_checked_ops)]
pub fn fold_bin(op: BinOp, a: u64, b: u64, w: u32) -> u64 {
    let a = mask(a, w);
    let b = mask(b, w);
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => {
            if b == 0 {
                u64::MAX
            } else {
                a / b
            }
        }
        BinOp::URem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        BinOp::SDiv => {
            let (sa, sb) = (sext(a, w), sext(b, w));
            if sb == 0 {
                u64::MAX
            } else {
                sa.wrapping_div(sb) as u64
            }
        }
        BinOp::SRem => {
            let (sa, sb) = (sext(a, w), sext(b, w));
            if sb == 0 {
                a
            } else {
                sa.wrapping_rem(sb) as u64
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= w as u64 {
                0
            } else {
                a << b
            }
        }
        BinOp::LShr => {
            if b >= w as u64 {
                0
            } else {
                a >> b
            }
        }
        BinOp::AShr => {
            let sa = sext(a, w);
            let sh = b.min(w as u64 - 1);
            (sa >> sh) as u64
        }
    };
    mask(r, w)
}

/// Concrete semantics of a comparison operator at the given width.
pub fn fold_cmp(op: CmpOp, a: u64, b: u64, w: u32) -> bool {
    let (ua, ub) = (mask(a, w), mask(b, w));
    match op {
        CmpOp::Eq => ua == ub,
        CmpOp::Ne => ua != ub,
        CmpOp::Ult => ua < ub,
        CmpOp::Ule => ua <= ub,
        CmpOp::Slt => sext(a, w) < sext(b, w),
        CmpOp::Sle => sext(a, w) <= sext(b, w),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            ExprNode::Const { bits, width } => write!(f, "{bits:#x}:{width}"),
            ExprNode::Sym { id, width } => write!(f, "{id}:{width}"),
            ExprNode::Not(e) => write!(f, "~{e}"),
            ExprNode::Neg(e) => write!(f, "-{e}"),
            ExprNode::Bin(op, a, b) => write!(f, "({a} {} {b})", bin_sym(*op)),
            ExprNode::Cmp(op, a, b) => write!(f, "({a} {} {b})", cmp_sym(*op)),
            ExprNode::ZExt { e, width } => write!(f, "zext({e}, {width})"),
            ExprNode::SExt { e, width } => write!(f, "sext({e}, {width})"),
            ExprNode::Extract { e, hi, lo } => write!(f, "{e}[{hi}:{lo}]"),
            ExprNode::Concat { hi, lo } => write!(f, "({hi} ++ {lo})"),
            ExprNode::Ite { cond, then, els } => write!(f, "ite({cond}, {then}, {els})"),
        }
    }
}

fn bin_sym(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::UDiv => "/u",
        BinOp::URem => "%u",
        BinOp::SDiv => "/s",
        BinOp::SRem => "%s",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::LShr => ">>u",
        BinOp::AShr => ">>s",
    }
}

fn cmp_sym(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Ult => "<u",
        CmpOp::Ule => "<=u",
        CmpOp::Slt => "<s",
        CmpOp::Sle => "<=s",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u64) -> Expr {
        Expr::constant(v, 32)
    }

    fn s(id: u32) -> Expr {
        Expr::sym(SymId(id), 32)
    }

    #[test]
    fn constants_fold() {
        assert_eq!(c(2).add(&c(3)).as_const(), Some(5));
        assert_eq!(c(2).sub(&c(3)).as_const(), Some(0xffff_ffff));
        assert_eq!(c(7).and(&c(5)).as_const(), Some(5));
        assert_eq!(c(10).udiv(&c(0)).as_const(), Some(0xffff_ffff));
        assert_eq!(c(10).urem(&c(0)).as_const(), Some(10));
    }

    #[test]
    fn identities_simplify() {
        let x = s(1);
        assert_eq!(x.add(&c(0)), x);
        assert_eq!(x.mul(&c(1)), x);
        assert_eq!(x.mul(&c(0)).as_const(), Some(0));
        assert_eq!(x.and(&c(0)).as_const(), Some(0));
        assert_eq!(x.xor(&x).as_const(), Some(0));
        assert_eq!(x.sub(&x).as_const(), Some(0));
        assert_eq!(x.or(&x), x);
        assert_eq!(c(0).add(&x), x, "commutative canonicalization");
    }

    #[test]
    fn reassociation_folds_chained_adds() {
        let x = s(1);
        let e = x.add(&c(3)).add(&c(4));
        match e.node() {
            ExprNode::Bin(BinOp::Add, a, b) => {
                assert_eq!(a, &x);
                assert_eq!(b.as_const(), Some(7));
            }
            other => panic!("expected add, got {other:?}"),
        }
    }

    #[test]
    fn comparisons_fold() {
        assert!(c(1).ult(&c(2)).is_true());
        assert!(c(2).ult(&c(1)).is_false());
        assert!(c(0xffff_ffff).slt(&c(0)).is_true(), "-1 <s 0");
        let x = s(1);
        assert!(x.eq(&x).is_true());
        assert!(x.ne(&x).is_false());
    }

    #[test]
    fn lnot_flips_comparison() {
        let x = s(1);
        let lt = x.ult(&c(5));
        let not_lt = lt.lnot();
        // !(x <u 5)  ==  5 <=u x
        match not_lt.node() {
            ExprNode::Cmp(CmpOp::Ule, a, _) => assert_eq!(a.as_const(), Some(5)),
            other => panic!("expected flipped cmp, got {other:?}"),
        }
    }

    #[test]
    fn extract_of_concat_simplifies() {
        let hi = Expr::sym(SymId(1), 8);
        let lo = Expr::sym(SymId(2), 8);
        let cc = hi.concat(&lo);
        assert_eq!(cc.width(), 16);
        assert_eq!(cc.extract(7, 0), lo);
        assert_eq!(cc.extract(15, 8), hi);
    }

    #[test]
    fn extract_of_zext_simplifies() {
        let x = Expr::sym(SymId(1), 8);
        let z = x.zext(32);
        assert_eq!(z.extract(7, 0), x);
        assert_eq!(z.extract(31, 8).as_const(), Some(0));
    }

    #[test]
    fn adjacent_extracts_merge() {
        let x = s(1);
        let lo = x.extract(7, 0);
        let hi = x.extract(15, 8);
        assert_eq!(hi.concat(&lo), x.extract(15, 0));
    }

    #[test]
    fn ite_simplifies() {
        let x = s(1);
        let y = s(2);
        let cond = x.ult(&y);
        assert_eq!(Expr::ite(&Expr::true_(), &x, &y), x);
        assert_eq!(Expr::ite(&Expr::false_(), &x, &y), y);
        assert_eq!(Expr::ite(&cond, &x, &x), x);
        assert_eq!(Expr::ite(&cond, &Expr::true_(), &Expr::false_()), cond);
    }

    #[test]
    fn double_not_cancels() {
        let x = s(1);
        assert_eq!(x.not().not(), x);
        assert_eq!(x.neg().neg(), x);
    }

    #[test]
    fn shift_semantics() {
        assert_eq!(c(1).shl(&c(33)).as_const(), Some(0), "oversize shl is 0");
        assert_eq!(c(0x8000_0000).ashr(&c(31)).as_const(), Some(0xffff_ffff));
        assert_eq!(c(0x8000_0000).lshr(&c(31)).as_const(), Some(1));
    }

    #[test]
    fn width_mismatch_panics() {
        let a = Expr::sym(SymId(1), 8);
        let b = Expr::sym(SymId(2), 16);
        let r = std::panic::catch_unwind(|| a.add(&b));
        assert!(r.is_err());
    }

    #[test]
    fn display_is_readable() {
        let x = s(1);
        let e = x.add(&c(5)).ult(&c(10));
        assert_eq!(format!("{e}"), "((s1:32 + 0x5:32) <u 0xa:32)");
    }
}
