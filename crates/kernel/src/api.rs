//! Kernel API implementations and the export dispatcher.
//!
//! Every function here is the concrete semantics of one kernel export. The
//! driver's view is Windows-shaped: out-parameters through guest memory,
//! NTSTATUS-style return codes, handles that are opaque pointers. Misuse
//! that crashes or hangs real Windows crashes this kernel too
//! ([`KernelState::bug_check`]): freeing a bad pointer, arming an
//! uninitialized timer, sleeping at raised IRQL, paged allocations at
//! dispatch level, releasing a lock that is not held.
//!
//! Calling convention: arguments in `r0`–`r3`, result in `r0`.

use crate::host::{Host, HostError};
use crate::state::{
    FaultFamily, //
    InterruptRegistration,
    Irql,
    KernelEvent,
    KernelState,
    MiniportTable,
    PoolAlloc,
    ResourceKind,
    SpinLockState,
    TimerState,
};
use crate::{
    exports, //
    Kernel,
    BUGCHECK_BAD_TIMER,
    BUGCHECK_FAULT,
    BUGCHECK_IRQL,
    BUGCHECK_SPINLOCK,
    STATUS_FAILURE,
    STATUS_RESOURCES,
    STATUS_SUCCESS,
};

/// Dispatches one kernel export invocation.
pub fn dispatch(k: &mut Kernel, export: u16, host: &mut dyn Host) {
    let name = exports::export_name(export).unwrap_or("<unknown>").to_string();
    k.state.log(KernelEvent::ApiCall {
        export_id: export,
        name: name.clone(),
        args: [0; 4], // Filled lazily by impls that read args; kept for shape.
        context: k.state.context,
        irql: k.state.irql,
    });
    let r = call(k, export, host);
    if let Err(HostError { addr }) = r {
        k.state.bug_check(
            BUGCHECK_FAULT,
            format!("kernel fault in {name}: driver passed inaccessible pointer {addr:#x}"),
        );
    }
}

fn call(k: &mut Kernel, export: u16, host: &mut dyn Host) -> Result<(), HostError> {
    let s = &mut k.state;
    match export {
        0 => ke_bug_check_ex(s, host),
        1 => {
            let v = s.irql.level() as u32;
            host.set_ret(v);
            Ok(())
        }
        2 => ke_raise_irql(s, host),
        3 => ke_lower_irql(s, host),
        4 => {
            let us = host.arg(0);
            s.now_us += us as u64;
            host.set_ret(0);
            Ok(())
        }
        5 => ex_allocate_pool_with_tag(s, host),
        6 => ex_free_pool_with_tag(s, host),
        7 => rtl_zero_memory(s, host),
        8 => rtl_copy_memory(s, host),
        9 => {
            let out = host.arg(0);
            let now = s.now_us as u32;
            host.write_u32(out, now)?;
            host.set_ret(STATUS_SUCCESS);
            Ok(())
        }
        20 => ndis_m_register_miniport(s, host),
        21 => ndis_open_configuration(s, host),
        22 => ndis_read_configuration(s, host),
        23 => ndis_close_configuration(s, host),
        24 => ndis_allocate_memory_with_tag(s, host),
        25 => ndis_free_memory(s, host),
        26 => ndis_allocate_spin_lock(s, host),
        27 => ndis_free_spin_lock(s, host),
        28 => ndis_acquire_spin_lock(s, host, false),
        29 => ndis_release_spin_lock(s, host, false),
        30 => ndis_acquire_spin_lock(s, host, true),
        31 => ndis_release_spin_lock(s, host, true),
        32 => ndis_m_register_interrupt(s, host),
        33 => ndis_m_deregister_interrupt(s, host),
        34 => ndis_m_initialize_timer(s, host),
        35 => ndis_m_set_timer(s, host),
        36 => ndis_m_cancel_timer(s, host),
        37 => {
            // NdisMSetAttributesEx(handle, ctx, hang_check_ms, flags).
            host.set_ret(STATUS_SUCCESS);
            Ok(())
        }
        38 => ndis_m_map_io_space(s, host),
        39 => ndis_m_register_io_port_range(s, host),
        40 => ndis_allocate_packet_pool(s, host),
        41 => ndis_free_packet_pool(s, host),
        42 => ndis_allocate_packet(s, host),
        43 => ndis_free_packet(s, host),
        44 => ndis_allocate_buffer_pool(s, host),
        45 => ndis_free_buffer_pool(s, host),
        46 => ndis_allocate_buffer(s, host),
        47 => ndis_free_buffer(s, host),
        48 => ndis_m_indicate_receive_packet(s, host),
        49 => {
            // NdisMSendComplete(handle, packet, status).
            let pkt = host.arg(1);
            s.completed_sends.push(pkt);
            host.set_ret(STATUS_SUCCESS);
            Ok(())
        }
        50 => {
            // NdisMIndicateStatus(handle, status, buf, len): log-only.
            host.set_ret(STATUS_SUCCESS);
            Ok(())
        }
        51 => ndis_read_pci_slot_information(s, host),
        52 => ndis_m_sleep(s, host),
        53 => ndis_read_network_address(s, host),
        60 => ndis_m_register_miniport(s, host), // PcRegisterAdapter: same shape.
        61 => pc_new_interrupt_sync(s, host),
        62 | 64 => {
            // PcRegisterSubdevice / PcUnregisterSubdevice: bookkeeping only.
            host.set_ret(STATUS_SUCCESS);
            Ok(())
        }
        63 => pc_new_dma_channel(s, host),
        65 => pc_free_dma_channel(s, host),
        66 => {
            // PcDisconnectInterrupt(sync_obj): stop interrupt delivery.
            let obj = host.arg(0);
            s.interrupt = None;
            s.log(KernelEvent::ResourceReleased { kind: ResourceKind::Interrupt, handle: obj });
            host.set_ret(STATUS_SUCCESS);
            Ok(())
        }
        67 => io_register_plug_play_notification(s, host),
        68 => {
            // IoGetDevicePowerState(out_ptr): writes 0 for D0, 3 for D3.
            let out = host.arg(0);
            let v = match s.power {
                crate::state::DevicePowerState::D0 => 0,
                crate::state::DevicePowerState::D3 => 3,
            };
            host.write_u32(out, v)?;
            host.set_ret(STATUS_SUCCESS);
            Ok(())
        }
        69 => {
            // IoIsDeviceRemoved(): TRUE once the device is gone.
            host.set_ret(!s.device_present as u32);
            Ok(())
        }
        other => {
            s.bug_check(BUGCHECK_FAULT, format!("call to unknown kernel export {other}"));
            Ok(())
        }
    }
}

// ---- Ke/Ex -----------------------------------------------------------------

fn ke_bug_check_ex(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let code = host.arg(0);
    s.bug_check(code, format!("driver called KeBugCheckEx({code:#x})"));
    Ok(())
}

fn irql_from_level(level: u32) -> Irql {
    match level {
        0..=1 => Irql::Passive,
        2..=4 => Irql::Dispatch,
        _ => Irql::Device,
    }
}

fn ke_raise_irql(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let new = irql_from_level(host.arg(0));
    let old = s.irql;
    if new < old {
        s.bug_check(BUGCHECK_IRQL, format!("KeRaiseIrql to lower level ({old:?} -> {new:?})"));
        return Ok(());
    }
    s.irql = new;
    s.log(KernelEvent::IrqlChange { from: old, to: new });
    host.set_ret(old.level() as u32);
    Ok(())
}

fn ke_lower_irql(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let new = irql_from_level(host.arg(0));
    let old = s.irql;
    if new > old {
        s.bug_check(BUGCHECK_IRQL, format!("KeLowerIrql to higher level ({old:?} -> {new:?})"));
        return Ok(());
    }
    s.irql = new;
    s.log(KernelEvent::IrqlChange { from: old, to: new });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ex_allocate_pool_with_tag(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let pool_type = host.arg(0);
    let size = host.arg(1);
    let tag = host.arg(2);
    let paged = pool_type == 1;
    if paged && s.irql >= Irql::Dispatch {
        // DDT default check: pageable memory at raised IRQL (§2 bug list).
        s.bug_check(
            BUGCHECK_IRQL,
            "ExAllocatePoolWithTag(PagedPool) at DISPATCH_LEVEL or above",
        );
        return Ok(());
    }
    if s.take_fault(FaultFamily::PoolAlloc) {
        host.set_ret(0);
        return Ok(());
    }
    match s.heap_alloc(size) {
        Some(addr) => {
            host.map_region(addr, size.max(1).next_multiple_of(16));
            s.pool.insert(addr, PoolAlloc { addr, size, tag, paged });
            s.log(KernelEvent::ResourceAcquired {
                kind: ResourceKind::PoolMemory,
                handle: addr,
                size,
            });
            host.set_ret(addr);
        }
        None => host.set_ret(0),
    }
    Ok(())
}

fn ex_free_pool_with_tag(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let ptr = host.arg(0);
    free_pool(s, host, ptr, "ExFreePoolWithTag")
}

fn free_pool(
    s: &mut KernelState,
    host: &mut dyn Host,
    ptr: u32,
    api: &str,
) -> Result<(), HostError> {
    match s.pool.remove(&ptr) {
        Some(alloc) => {
            host.unmap_region(ptr, alloc.size.max(1).next_multiple_of(16));
            s.log(KernelEvent::ResourceReleased { kind: ResourceKind::PoolMemory, handle: ptr });
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            s.bug_check(BUGCHECK_FAULT, format!("{api}: freeing invalid pool pointer {ptr:#x}"));
        }
    }
    Ok(())
}

fn rtl_zero_memory(_s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let ptr = host.arg(0);
    let len = host.arg(1).min(1 << 20);
    for i in 0..len {
        host.mem_write(ptr.wrapping_add(i), 1, 0)?;
    }
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn rtl_copy_memory(_s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let dst = host.arg(0);
    let src = host.arg(1);
    let len = host.arg(2).min(1 << 20);
    for i in 0..len {
        let b = host.mem_read(src.wrapping_add(i), 1)?;
        host.mem_write(dst.wrapping_add(i), 1, b)?;
    }
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

// ---- NDIS ------------------------------------------------------------------

fn ndis_m_register_miniport(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let table_ptr = host.arg(0);
    let mut words = [0u32; 10];
    for (i, w) in words.iter_mut().enumerate() {
        *w = host.read_u32(table_ptr + 4 * i as u32)?;
    }
    s.miniport = Some(MiniportTable::from_words(&words));
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

/// Base value for configuration handles (opaque to drivers).
const CONFIG_HANDLE_BASE: u32 = 0xC0F0_0000;

fn ndis_open_configuration(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let status_ptr = host.arg(0);
    let handle_ptr = host.arg(1);
    if s.take_fault(FaultFamily::Registry) {
        // Failure path: the handle out-parameter is NULL. Drivers that use
        // it without checking the status pass an invalid handle to the
        // configuration APIs — a bug check.
        host.write_u32(status_ptr, STATUS_FAILURE)?;
        host.write_u32(handle_ptr, 0)?;
        host.set_ret(STATUS_FAILURE);
        return Ok(());
    }
    let handle = CONFIG_HANDLE_BASE + s.config_handles.len() as u32;
    s.config_handles.insert(handle, true);
    s.log(KernelEvent::ResourceAcquired {
        kind: ResourceKind::ConfigHandle,
        handle,
        size: 0,
    });
    host.write_u32(status_ptr, STATUS_SUCCESS)?;
    host.write_u32(handle_ptr, handle)?;
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_read_configuration(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let status_ptr = host.arg(0);
    let value_ptr = host.arg(1);
    let handle = host.arg(2);
    let name_ptr = host.arg(3);
    if s.config_handles.get(&handle) != Some(&true) {
        s.bug_check(
            BUGCHECK_FAULT,
            format!("NdisReadConfiguration with closed or invalid handle {handle:#x}"),
        );
        return Ok(());
    }
    if s.take_fault(FaultFamily::Registry) {
        host.write_u32(status_ptr, STATUS_FAILURE)?;
        host.set_ret(STATUS_FAILURE);
        return Ok(());
    }
    let name = host.read_cstr(name_ptr, 64)?;
    match s.registry.get(&name).copied() {
        Some(v) => {
            // PNDIS_CONFIGURATION_PARAMETER: [0] = type (0: integer),
            // [4] = IntegerData.
            host.write_u32(value_ptr, 0)?;
            host.write_u32(value_ptr + 4, v)?;
            host.write_u32(status_ptr, STATUS_SUCCESS)?;
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            host.write_u32(status_ptr, STATUS_FAILURE)?;
            host.set_ret(STATUS_FAILURE);
        }
    }
    Ok(())
}

fn ndis_close_configuration(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let handle = host.arg(0);
    match s.config_handles.get_mut(&handle) {
        Some(open @ true) => {
            *open = false;
            s.log(KernelEvent::ResourceReleased {
                kind: ResourceKind::ConfigHandle,
                handle,
            });
            host.set_ret(STATUS_SUCCESS);
        }
        _ => {
            s.bug_check(
                BUGCHECK_FAULT,
                format!("NdisCloseConfiguration on invalid handle {handle:#x}"),
            );
        }
    }
    Ok(())
}

fn ndis_allocate_memory_with_tag(
    s: &mut KernelState,
    host: &mut dyn Host,
) -> Result<(), HostError> {
    let ptr_out = host.arg(0);
    let size = host.arg(1);
    let tag = host.arg(2);
    if s.take_fault(FaultFamily::PoolAlloc) {
        host.write_u32(ptr_out, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    match s.heap_alloc(size) {
        Some(addr) => {
            host.map_region(addr, size.max(1).next_multiple_of(16));
            s.pool.insert(addr, PoolAlloc { addr, size, tag, paged: false });
            s.log(KernelEvent::ResourceAcquired {
                kind: ResourceKind::PoolMemory,
                handle: addr,
                size,
            });
            host.write_u32(ptr_out, addr)?;
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            host.write_u32(ptr_out, 0)?;
            host.set_ret(STATUS_RESOURCES);
        }
    }
    Ok(())
}

fn ndis_free_memory(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let ptr = host.arg(0);
    free_pool(s, host, ptr, "NdisFreeMemory")
}

fn ndis_allocate_spin_lock(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let lock = host.arg(0);
    s.spinlocks.insert(lock, SpinLockState::new());
    s.log(KernelEvent::ResourceAcquired { kind: ResourceKind::SpinLock, handle: lock, size: 0 });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_free_spin_lock(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let lock = host.arg(0);
    match s.spinlocks.get(&lock) {
        Some(l) if l.held => {
            s.bug_check(BUGCHECK_SPINLOCK, format!("NdisFreeSpinLock on held lock {lock:#x}"));
        }
        Some(_) => {
            s.spinlocks.remove(&lock);
            s.log(KernelEvent::ResourceReleased { kind: ResourceKind::SpinLock, handle: lock });
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            s.bug_check(
                BUGCHECK_SPINLOCK,
                format!("NdisFreeSpinLock on unallocated lock {lock:#x}"),
            );
        }
    }
    Ok(())
}

fn ndis_acquire_spin_lock(
    s: &mut KernelState,
    host: &mut dyn Host,
    dpr: bool,
) -> Result<(), HostError> {
    let lock = host.arg(0);
    let irql = s.irql;
    let Some(l) = s.spinlocks.get_mut(&lock) else {
        s.bug_check(
            BUGCHECK_SPINLOCK,
            format!("spinlock acquire on unallocated lock {lock:#x}"),
        );
        return Ok(());
    };
    if l.held {
        // Same-context re-acquisition spins forever: a deadlock/hang. A
        // real machine wedges; we surface it as a crash-class event.
        s.bug_check(
            BUGCHECK_SPINLOCK,
            format!("deadlock: spinlock {lock:#x} acquired while already held"),
        );
        return Ok(());
    }
    l.held = true;
    l.acquired_dpr = dpr;
    l.acquisitions += 1;
    if !dpr {
        l.saved_irql = irql;
        if irql < Irql::Dispatch {
            s.irql = Irql::Dispatch;
            s.log(KernelEvent::IrqlChange { from: irql, to: Irql::Dispatch });
        }
    }
    s.log(KernelEvent::SpinAcquire { lock, dpr });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_release_spin_lock(
    s: &mut KernelState,
    host: &mut dyn Host,
    dpr: bool,
) -> Result<(), HostError> {
    let lock = host.arg(0);
    let Some(l) = s.spinlocks.get_mut(&lock) else {
        s.bug_check(
            BUGCHECK_SPINLOCK,
            format!("spinlock release on unallocated lock {lock:#x}"),
        );
        return Ok(());
    };
    if !l.held {
        s.bug_check(
            BUGCHECK_SPINLOCK,
            format!("spinlock {lock:#x} released but not held"),
        );
        return Ok(());
    }
    let variant_mismatch = l.acquired_dpr != dpr;
    l.held = false;
    let saved = l.saved_irql;
    if !dpr {
        // Non-Dpr release restores the IRQL saved by a non-Dpr acquire. If
        // the lock was acquired with the Dpr variant, `saved_irql` is stale —
        // this silently corrupts the IRQL, which is exactly the Intel
        // Pro/100 bug of Table 2 ("KeReleaseSpinLock called from DPC").
        let old = s.irql;
        s.irql = saved;
        if old != saved {
            s.log(KernelEvent::IrqlChange { from: old, to: saved });
        }
    }
    s.log(KernelEvent::SpinRelease { lock, dpr, variant_mismatch });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_m_register_interrupt(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let object = host.arg(0);
    let line = host.arg(2) as u8;
    if s.take_fault(FaultFamily::Registration) {
        host.set_ret(STATUS_FAILURE);
        return Ok(());
    }
    s.interrupt = Some(InterruptRegistration { line, object });
    s.log(KernelEvent::ResourceAcquired {
        kind: ResourceKind::Interrupt,
        handle: object,
        size: 0,
    });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_m_deregister_interrupt(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let object = host.arg(0);
    s.interrupt = None;
    s.log(KernelEvent::ResourceReleased { kind: ResourceKind::Interrupt, handle: object });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_m_initialize_timer(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let timer = host.arg(0);
    let callback = host.arg(2);
    let context = host.arg(3);
    if s.take_fault(FaultFamily::Registration) {
        // The descriptor stays uninitialized; arming it later bug-checks.
        host.set_ret(STATUS_FAILURE);
        return Ok(());
    }
    s.timers.insert(timer, TimerState { initialized: true, callback, context, due: None });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_m_set_timer(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let timer = host.arg(0);
    let ms = host.arg(1);
    let initialized = s.timers.get(&timer).map(|t| t.initialized).unwrap_or(false);
    s.log(KernelEvent::TimerSet { timer, initialized });
    if !initialized {
        // The RTL8029 race of Table 2 row 3: an interrupt arriving before
        // timer initialization makes the ISR pass an uninitialized timer
        // descriptor to the kernel — BSOD.
        s.bug_check(
            BUGCHECK_BAD_TIMER,
            format!("NdisMSetTimer on uninitialized timer descriptor {timer:#x}"),
        );
        return Ok(());
    }
    let now = s.now_us;
    if let Some(t) = s.timers.get_mut(&timer) {
        t.due = Some(now / 1000 + ms as u64);
    }
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_m_cancel_timer(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let timer = host.arg(0);
    let cancelled_ptr = host.arg(1);
    let was_armed = s
        .timers
        .get_mut(&timer)
        .map(|t| t.due.take().is_some())
        .unwrap_or(false);
    if cancelled_ptr != 0 {
        host.write_u32(cancelled_ptr, was_armed as u32)?;
    }
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_m_map_io_space(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let out_ptr = host.arg(0);
    let offset = host.arg(2);
    if s.take_fault(FaultFamily::MapRegisters) {
        host.write_u32(out_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    let va = s.device_mmio_base + offset;
    host.write_u32(out_ptr, va)?;
    s.log(KernelEvent::ResourceAcquired {
        kind: ResourceKind::IoMapping,
        handle: va,
        size: s.device.mmio_len,
    });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_m_register_io_port_range(
    s: &mut KernelState,
    host: &mut dyn Host,
) -> Result<(), HostError> {
    let out_ptr = host.arg(0);
    let start = host.arg(2);
    let _count = host.arg(3);
    if s.take_fault(FaultFamily::MapRegisters) {
        host.write_u32(out_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    let _ = &s.device;
    host.write_u32(out_ptr, start)?;
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

/// Base for packet/buffer pool handles.
const POOL_HANDLE_BASE: u32 = 0xB00C_0000;

fn ndis_allocate_packet_pool(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let status_ptr = host.arg(0);
    let pool_ptr = host.arg(1);
    let descriptors = host.arg(2);
    if s.take_fault(FaultFamily::SharedMemory) {
        host.write_u32(status_ptr, STATUS_RESOURCES)?;
        host.write_u32(pool_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    let handle = POOL_HANDLE_BASE + (s.packet_pools.len() + s.buffer_pools.len()) as u32 * 0x100;
    s.packet_pools.insert(handle, descriptors.max(1));
    s.log(KernelEvent::ResourceAcquired { kind: ResourceKind::Pool, handle, size: descriptors });
    host.write_u32(status_ptr, STATUS_SUCCESS)?;
    host.write_u32(pool_ptr, handle)?;
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_free_packet_pool(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let pool = host.arg(0);
    if s.packets.values().any(|&p| p == pool) {
        s.bug_check(
            BUGCHECK_FAULT,
            format!("NdisFreePacketPool {pool:#x} with outstanding packets"),
        );
        return Ok(());
    }
    if s.packet_pools.remove(&pool).is_none() {
        s.bug_check(BUGCHECK_FAULT, format!("NdisFreePacketPool on bad handle {pool:#x}"));
        return Ok(());
    }
    s.log(KernelEvent::ResourceReleased { kind: ResourceKind::Pool, handle: pool });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_allocate_packet(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let status_ptr = host.arg(0);
    let packet_ptr = host.arg(1);
    let pool = host.arg(2);
    let Some(&cap) = s.packet_pools.get(&pool) else {
        s.bug_check(BUGCHECK_FAULT, format!("NdisAllocatePacket from bad pool {pool:#x}"));
        return Ok(());
    };
    if s.take_fault(FaultFamily::SharedMemory) {
        host.write_u32(status_ptr, STATUS_RESOURCES)?;
        host.write_u32(packet_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    let live = s.packets.values().filter(|&&p| p == pool).count() as u32;
    if live >= cap {
        host.write_u32(status_ptr, STATUS_RESOURCES)?;
        host.write_u32(packet_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    match s.heap_alloc(64) {
        Some(desc) => {
            host.map_region(desc, 64);
            s.packets.insert(desc, pool);
            s.log(KernelEvent::ResourceAcquired {
                kind: ResourceKind::Packet,
                handle: desc,
                size: 64,
            });
            host.write_u32(status_ptr, STATUS_SUCCESS)?;
            host.write_u32(packet_ptr, desc)?;
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            host.write_u32(status_ptr, STATUS_RESOURCES)?;
            host.write_u32(packet_ptr, 0)?;
            host.set_ret(STATUS_RESOURCES);
        }
    }
    Ok(())
}

fn ndis_free_packet(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let packet = host.arg(0);
    if s.packets.remove(&packet).is_none() {
        s.bug_check(BUGCHECK_FAULT, format!("NdisFreePacket on bad packet {packet:#x}"));
        return Ok(());
    }
    s.log(KernelEvent::ResourceReleased { kind: ResourceKind::Packet, handle: packet });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_allocate_buffer_pool(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let status_ptr = host.arg(0);
    let pool_ptr = host.arg(1);
    let descriptors = host.arg(2);
    if s.take_fault(FaultFamily::SharedMemory) {
        host.write_u32(status_ptr, STATUS_RESOURCES)?;
        host.write_u32(pool_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    let handle = POOL_HANDLE_BASE
        + 0x0800_0000
        + (s.buffer_pools.len() + s.packet_pools.len()) as u32 * 0x100;
    s.buffer_pools.insert(handle, descriptors.max(1));
    s.log(KernelEvent::ResourceAcquired { kind: ResourceKind::Pool, handle, size: descriptors });
    host.write_u32(status_ptr, STATUS_SUCCESS)?;
    host.write_u32(pool_ptr, handle)?;
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_free_buffer_pool(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let pool = host.arg(0);
    if s.buffers.values().any(|&p| p == pool) {
        s.bug_check(
            BUGCHECK_FAULT,
            format!("NdisFreeBufferPool {pool:#x} with outstanding buffers"),
        );
        return Ok(());
    }
    if s.buffer_pools.remove(&pool).is_none() {
        s.bug_check(BUGCHECK_FAULT, format!("NdisFreeBufferPool on bad handle {pool:#x}"));
        return Ok(());
    }
    s.log(KernelEvent::ResourceReleased { kind: ResourceKind::Pool, handle: pool });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_allocate_buffer(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    // NdisAllocateBuffer(buffer_out_ptr, pool, va, len) -> status.
    let out_ptr = host.arg(0);
    let pool = host.arg(1);
    if !s.buffer_pools.contains_key(&pool) {
        s.bug_check(BUGCHECK_FAULT, format!("NdisAllocateBuffer from bad pool {pool:#x}"));
        return Ok(());
    }
    if s.take_fault(FaultFamily::SharedMemory) {
        host.write_u32(out_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    match s.heap_alloc(32) {
        Some(desc) => {
            host.map_region(desc, 32);
            // Buffer descriptor: [0] = va, [4] = len.
            let va = host.arg(2);
            let len = host.arg(3);
            host.write_u32(desc, va)?;
            host.write_u32(desc + 4, len)?;
            s.buffers.insert(desc, pool);
            s.log(KernelEvent::ResourceAcquired {
                kind: ResourceKind::Buffer,
                handle: desc,
                size: 32,
            });
            host.write_u32(out_ptr, desc)?;
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            host.write_u32(out_ptr, 0)?;
            host.set_ret(STATUS_RESOURCES);
        }
    }
    Ok(())
}

fn ndis_free_buffer(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let buffer = host.arg(0);
    if s.buffers.remove(&buffer).is_none() {
        s.bug_check(BUGCHECK_FAULT, format!("NdisFreeBuffer on bad buffer {buffer:#x}"));
        return Ok(());
    }
    s.log(KernelEvent::ResourceReleased { kind: ResourceKind::Buffer, handle: buffer });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_m_indicate_receive_packet(
    s: &mut KernelState,
    host: &mut dyn Host,
) -> Result<(), HostError> {
    let array_ptr = host.arg(1);
    let count = host.arg(2).min(64);
    for i in 0..count {
        let pkt = host.read_u32(array_ptr + 4 * i)?;
        if !s.packets.contains_key(&pkt) {
            s.bug_check(
                BUGCHECK_FAULT,
                format!("NdisMIndicateReceivePacket with invalid packet {pkt:#x}"),
            );
            return Ok(());
        }
    }
    s.indicated_packets += count;
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_read_pci_slot_information(
    s: &mut KernelState,
    host: &mut dyn Host,
) -> Result<(), HostError> {
    // (handle, offset, buf_ptr, len) -> bytes written.
    let offset = host.arg(1);
    let buf_ptr = host.arg(2);
    let len = host.arg(3);
    let bytes = s.device.config_bytes();
    let mut written = 0u32;
    for i in 0..len {
        let src = offset + i;
        if src as usize >= bytes.len() {
            break;
        }
        host.mem_write(buf_ptr + i, 1, bytes[src as usize] as u32)?;
        written += 1;
    }
    host.set_ret(written);
    Ok(())
}

fn ndis_m_sleep(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let us = host.arg(0);
    if s.irql >= Irql::Dispatch {
        s.bug_check(BUGCHECK_IRQL, "NdisMSleep called at DISPATCH_LEVEL or above");
        return Ok(());
    }
    s.now_us += us as u64;
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

fn ndis_read_network_address(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    // (status_ptr, buf_ptr /*6 bytes*/, handle) -> status.
    let status_ptr = host.arg(0);
    let buf_ptr = host.arg(1);
    if s.take_fault(FaultFamily::Registry) {
        host.write_u32(status_ptr, STATUS_FAILURE)?;
        host.set_ret(STATUS_FAILURE);
        return Ok(());
    }
    match s.registry.get("NetworkAddress").copied() {
        Some(seed) => {
            for i in 0..6u32 {
                host.mem_write(buf_ptr + i, 1, (seed >> (8 * (i % 4))) & 0xff)?;
            }
            host.write_u32(status_ptr, STATUS_SUCCESS)?;
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            host.write_u32(status_ptr, STATUS_FAILURE)?;
            host.set_ret(STATUS_FAILURE);
        }
    }
    Ok(())
}

// ---- WDM PnP / power -------------------------------------------------------

fn io_register_plug_play_notification(
    s: &mut KernelState,
    host: &mut dyn Host,
) -> Result<(), HostError> {
    // IoRegisterPlugPlayNotification(callback, context): the kernel invokes
    // `callback(context, event_code)` on surprise removal (1) and power
    // transitions (2 = enter D3, 3 = re-enter D0). Delivery itself is
    // orchestrated by the executor, like interrupt injection.
    let callback = host.arg(0);
    let context = host.arg(1);
    if callback == 0 {
        s.bug_check(BUGCHECK_FAULT, "IoRegisterPlugPlayNotification with NULL callback");
        return Ok(());
    }
    s.pnp_handler = callback;
    s.pnp_context = context;
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

// ---- Port-class audio ------------------------------------------------------

fn pc_new_interrupt_sync(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let out_ptr = host.arg(0);
    let line = host.arg(2) as u8;
    if s.take_fault(FaultFamily::Registration) {
        host.write_u32(out_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    match s.heap_alloc(32) {
        Some(obj) => {
            host.map_region(obj, 32);
            s.interrupt = Some(InterruptRegistration { line, object: obj });
            s.log(KernelEvent::ResourceAcquired {
                kind: ResourceKind::Interrupt,
                handle: obj,
                size: 32,
            });
            host.write_u32(out_ptr, obj)?;
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            // Failure path: out parameter gets NULL; drivers that ignore the
            // status and use the object crash (Ensoniq, Table 2 row 9).
            host.write_u32(out_ptr, 0)?;
            host.set_ret(STATUS_RESOURCES);
        }
    }
    Ok(())
}

fn pc_new_dma_channel(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let out_ptr = host.arg(0);
    let size = host.arg(2).max(16);
    if s.take_fault(FaultFamily::SharedMemory) {
        host.write_u32(out_ptr, 0)?;
        host.set_ret(STATUS_RESOURCES);
        return Ok(());
    }
    match s.heap_alloc(size) {
        Some(buf) => {
            host.map_region(buf, size.next_multiple_of(16));
            s.dma_channels.insert(buf, size);
            s.log(KernelEvent::ResourceAcquired {
                kind: ResourceKind::DmaChannel,
                handle: buf,
                size,
            });
            host.write_u32(out_ptr, buf)?;
            host.set_ret(STATUS_SUCCESS);
        }
        None => {
            host.write_u32(out_ptr, 0)?;
            host.set_ret(STATUS_RESOURCES);
        }
    }
    Ok(())
}

fn pc_free_dma_channel(s: &mut KernelState, host: &mut dyn Host) -> Result<(), HostError> {
    let buf = host.arg(0);
    if s.dma_channels.remove(&buf).is_none() {
        s.bug_check(BUGCHECK_FAULT, format!("PcFreeDmaChannel on bad channel {buf:#x}"));
        return Ok(());
    }
    s.log(KernelEvent::ResourceReleased { kind: ResourceKind::DmaChannel, handle: buf });
    host.set_ret(STATUS_SUCCESS);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::MockHost;

    fn kernel() -> Kernel {
        Kernel::new()
    }

    fn b(host: &MockHost) -> u32 {
        host.ret
    }

    #[test]
    fn irql_roundtrip() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        // Raise to dispatch.
        h.args = [2, 0, 0, 0];
        k.invoke(2, &mut h).unwrap();
        assert_eq!(b(&h), 0, "old level was passive");
        assert_eq!(k.state.irql, Irql::Dispatch);
        // Query.
        k.invoke(1, &mut h).unwrap();
        assert_eq!(b(&h), 2);
        // Lower back.
        h.args = [0, 0, 0, 0];
        k.invoke(3, &mut h).unwrap();
        assert_eq!(k.state.irql, Irql::Passive);
        // Lowering "up" crashes.
        let mut k2 = kernel();
        h.args = [5, 0, 0, 0]; // KeLowerIrql(Device) while at Passive.
        assert!(k2.invoke(3, &mut h).is_err(), "KeLowerIrql to a higher level must crash");
    }

    #[test]
    fn pool_alloc_free_cycle() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        h.args = [0, 100, 0x2054_4444, 0]; // NonPaged, 100 bytes.
        k.invoke(5, &mut h).unwrap();
        let ptr = b(&h);
        assert_ne!(ptr, 0);
        assert_eq!(k.state.live_resources(ResourceKind::PoolMemory), 1);
        assert_eq!(h.mapped.len(), 1);
        h.args = [ptr, 0x2054_4444, 0, 0];
        k.invoke(6, &mut h).unwrap();
        assert_eq!(k.state.live_resources(ResourceKind::PoolMemory), 0);
        assert!(h.mapped.is_empty(), "free unmaps");
        // Double free crashes.
        assert!(k.invoke(6, &mut h).is_err());
    }

    #[test]
    fn paged_alloc_at_dispatch_crashes() {
        let mut k = kernel();
        k.state.irql = Irql::Dispatch;
        let mut h = MockHost::new(64);
        h.args = [1, 64, 0, 0]; // PagedPool.
        let e = k.invoke(5, &mut h).unwrap_err();
        assert_eq!(e.code, BUGCHECK_IRQL);
    }

    #[test]
    fn configuration_lifecycle_and_leak_visibility() {
        let mut k = kernel();
        k.state.registry.insert("MaximumMulticastList".into(), 16);
        let mut h = MockHost::new(256);
        let base = MockHost::BASE;
        // Open: status at base, handle at base+4.
        h.args = [base, base + 4, 0, 0];
        k.invoke(21, &mut h).unwrap();
        let handle = h.mem_read(base + 4, 4).unwrap();
        assert_eq!(k.state.live_resources(ResourceKind::ConfigHandle), 1);
        // Read parameter: name string at base+0x40, value struct at base+8.
        h.mem[0x40..0x55].copy_from_slice(b"MaximumMulticastList\0");
        h.args = [base, base + 8, handle, base + 0x40];
        k.invoke(22, &mut h).unwrap();
        assert_eq!(h.mem_read(base + 8 + 4, 4).unwrap(), 16, "IntegerData");
        // Close.
        h.args = [handle, 0, 0, 0];
        k.invoke(23, &mut h).unwrap();
        assert_eq!(k.state.live_resources(ResourceKind::ConfigHandle), 0);
        // Reading on the closed handle crashes.
        h.args = [base, base + 8, handle, base + 0x40];
        assert!(k.invoke(22, &mut h).is_err());
    }

    #[test]
    fn missing_registry_parameter_fails_cleanly() {
        let mut k = kernel();
        let mut h = MockHost::new(256);
        let base = MockHost::BASE;
        h.args = [base, base + 4, 0, 0];
        k.invoke(21, &mut h).unwrap();
        let handle = h.mem_read(base + 4, 4).unwrap();
        h.mem[0x40..0x48].copy_from_slice(b"NoParam\0");
        h.args = [base, base + 8, handle, base + 0x40];
        k.invoke(22, &mut h).unwrap();
        assert_eq!(h.mem_read(base, 4).unwrap(), STATUS_FAILURE);
    }

    #[test]
    fn spinlock_correct_usage() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        let lock = 0x40_1000;
        h.args = [lock, 0, 0, 0];
        k.invoke(26, &mut h).unwrap(); // Allocate.
        k.invoke(28, &mut h).unwrap(); // Acquire.
        assert_eq!(k.state.irql, Irql::Dispatch, "acquire raises IRQL");
        k.invoke(29, &mut h).unwrap(); // Release.
        assert_eq!(k.state.irql, Irql::Passive, "release restores IRQL");
        k.invoke(27, &mut h).unwrap(); // Free.
        assert_eq!(k.state.live_resources(ResourceKind::SpinLock), 0);
    }

    #[test]
    fn dpr_release_mismatch_corrupts_irql() {
        // The Intel Pro/100 bug shape: Dpr-acquire in a DPC, then plain
        // release. IRQL silently drops to the stale saved value.
        let mut k = kernel();
        k.state.irql = Irql::Dispatch;
        k.state.context = crate::state::ExecContext::Dpc;
        let mut h = MockHost::new(64);
        let lock = 0x40_1000;
        h.args = [lock, 0, 0, 0];
        k.invoke(26, &mut h).unwrap();
        k.invoke(30, &mut h).unwrap(); // NdisDprAcquireSpinLock.
        assert_eq!(k.state.irql, Irql::Dispatch);
        k.invoke(29, &mut h).unwrap(); // NdisReleaseSpinLock: WRONG variant.
        assert_eq!(k.state.irql, Irql::Passive, "IRQL corrupted to stale saved value");
        let mismatch = k.state.events.iter().any(|e| {
            matches!(e, KernelEvent::SpinRelease { variant_mismatch: true, .. })
        });
        assert!(mismatch, "the mismatch is visible to checkers");
    }

    #[test]
    fn release_unheld_lock_crashes() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        h.args = [0x40_1000, 0, 0, 0];
        k.invoke(26, &mut h).unwrap();
        let e = k.invoke(29, &mut h).unwrap_err();
        assert_eq!(e.code, BUGCHECK_SPINLOCK);
    }

    #[test]
    fn double_acquire_is_deadlock() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        h.args = [0x40_1000, 0, 0, 0];
        k.invoke(26, &mut h).unwrap();
        k.invoke(28, &mut h).unwrap();
        let e = k.invoke(28, &mut h).unwrap_err();
        assert!(e.message.contains("deadlock"), "{}", e.message);
    }

    #[test]
    fn timer_before_init_crashes() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        h.args = [0x40_2000, 100, 0, 0];
        let e = k.invoke(35, &mut h).unwrap_err();
        assert_eq!(e.code, BUGCHECK_BAD_TIMER);
    }

    #[test]
    fn timer_lifecycle() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        // Initialize(timer, handle, callback, ctx).
        h.args = [0x40_2000, 0, 0x40_0100, 0x40_3000];
        k.invoke(34, &mut h).unwrap();
        // Set(timer, ms).
        h.args = [0x40_2000, 50, 0, 0];
        k.invoke(35, &mut h).unwrap();
        assert!(k.state.timers[&0x40_2000].due.is_some());
        // Cancel(timer, cancelled_ptr).
        h.args = [0x40_2000, MockHost::BASE, 0, 0];
        k.invoke(36, &mut h).unwrap();
        assert_eq!(h.mem_read(MockHost::BASE, 4).unwrap(), 1);
        assert!(k.state.timers[&0x40_2000].due.is_none());
    }

    #[test]
    fn miniport_registration_reads_guest_table() {
        let mut k = kernel();
        let mut h = MockHost::new(256);
        let base = MockHost::BASE;
        for (i, v) in [11u32, 22, 33, 44, 55, 66, 77, 88, 99, 0].iter().enumerate() {
            h.mem_write(base + 4 * i as u32, 4, *v).unwrap();
        }
        h.args = [base, 0, 0, 0];
        k.invoke(20, &mut h).unwrap();
        let t = k.state.miniport.as_ref().unwrap();
        assert_eq!(t.initialize, 11);
        assert_eq!(t.check_for_hang, 99);
        assert_eq!(t.entries().len(), 9);
    }

    #[test]
    fn packet_pool_and_packets() {
        let mut k = kernel();
        let mut h = MockHost::new(256);
        let base = MockHost::BASE;
        h.args = [base, base + 4, 2, 0];
        k.invoke(40, &mut h).unwrap();
        let pool = h.mem_read(base + 4, 4).unwrap();
        // Two packets fit.
        h.args = [base, base + 8, pool, 0];
        k.invoke(42, &mut h).unwrap();
        let p1 = h.mem_read(base + 8, 4).unwrap();
        k.invoke(42, &mut h).unwrap();
        let p2 = h.mem_read(base + 8, 4).unwrap();
        assert_ne!(p1, 0);
        assert_ne!(p2, 0);
        // Third exhausts the pool.
        k.invoke(42, &mut h).unwrap();
        assert_eq!(h.mem_read(base, 4).unwrap(), STATUS_RESOURCES);
        // Freeing the pool with live packets crashes.
        h.args = [pool, 0, 0, 0];
        assert!(k.invoke(41, &mut h).is_err());
        // Clean shutdown in a fresh kernel.
        let mut k2 = kernel();
        h.args = [base, base + 4, 2, 0];
        k2.invoke(40, &mut h).unwrap();
        let pool2 = h.mem_read(base + 4, 4).unwrap();
        h.args = [base, base + 8, pool2, 0];
        k2.invoke(42, &mut h).unwrap();
        let pkt = h.mem_read(base + 8, 4).unwrap();
        h.args = [pkt, 0, 0, 0];
        k2.invoke(43, &mut h).unwrap();
        h.args = [pool2, 0, 0, 0];
        k2.invoke(41, &mut h).unwrap();
        assert_eq!(k2.state.live_resources(ResourceKind::Pool), 0);
    }

    #[test]
    fn pci_descriptor_read() {
        let mut k = kernel();
        k.state.device.vendor_id = 0x8086;
        k.state.device.revision = 7;
        let mut h = MockHost::new(64);
        let base = MockHost::BASE;
        // (handle, offset, buf, len).
        h.args = [0, 0, base, 16];
        k.invoke(51, &mut h).unwrap();
        assert_eq!(h.ret, 16);
        assert_eq!(h.mem_read(base, 2).unwrap(), 0x8086);
        assert_eq!(h.mem_read(base + 4, 1).unwrap(), 7);
        // Offset past the end writes nothing.
        h.args = [0, 20, base, 4];
        k.invoke(51, &mut h).unwrap();
        assert_eq!(h.ret, 0);
    }

    #[test]
    fn sleep_at_dispatch_crashes() {
        let mut k = kernel();
        k.state.irql = Irql::Dispatch;
        let mut h = MockHost::new(64);
        h.args = [1000, 0, 0, 0];
        let e = k.invoke(52, &mut h).unwrap_err();
        assert_eq!(e.code, BUGCHECK_IRQL);
    }

    #[test]
    fn interrupt_sync_failure_writes_null() {
        let mut k = kernel();
        k.state.force_alloc_failures = 1;
        let mut h = MockHost::new(64);
        h.args = [MockHost::BASE, 0, 9, 0];
        k.invoke(61, &mut h).unwrap();
        assert_eq!(h.ret, STATUS_RESOURCES);
        assert_eq!(h.mem_read(MockHost::BASE, 4).unwrap(), 0, "out param is NULL");
        assert!(k.state.interrupt.is_none());
    }

    #[test]
    fn dma_channel_lifecycle() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        h.args = [MockHost::BASE, 0, 4096, 0];
        k.invoke(63, &mut h).unwrap();
        let buf = h.mem_read(MockHost::BASE, 4).unwrap();
        assert_ne!(buf, 0);
        assert_eq!(k.state.live_resources(ResourceKind::DmaChannel), 1);
        h.args = [buf, 0, 0, 0];
        k.invoke(65, &mut h).unwrap();
        assert_eq!(k.state.live_resources(ResourceKind::DmaChannel), 0);
    }

    #[test]
    fn rtl_memory_helpers() {
        let mut k = kernel();
        let mut h = MockHost::new(64);
        let base = MockHost::BASE;
        h.mem_write(base, 4, 0x11223344).unwrap();
        // Copy 4 bytes to base+8.
        h.args = [base + 8, base, 4, 0];
        k.invoke(8, &mut h).unwrap();
        assert_eq!(h.mem_read(base + 8, 4).unwrap(), 0x11223344);
        // Zero the source.
        h.args = [base, 4, 0, 0];
        k.invoke(7, &mut h).unwrap();
        assert_eq!(h.mem_read(base, 4).unwrap(), 0);
    }

    #[test]
    fn bad_pointer_from_driver_bugchecks() {
        let mut k = kernel();
        let mut h = MockHost::new(16);
        // NdisOpenConfiguration with an out-pointer far outside memory.
        h.args = [0xdead_0000, 0xdead_0004, 0, 0];
        let e = k.invoke(21, &mut h).unwrap_err();
        assert_eq!(e.code, BUGCHECK_FAULT);
    }

    #[test]
    fn unknown_export_bugchecks() {
        let mut k = kernel();
        let mut h = MockHost::new(16);
        assert!(k.invoke(999, &mut h).is_err());
    }

    #[test]
    fn ndis_allocate_memory_failure_path() {
        let mut k = kernel();
        k.state.force_alloc_failures = 1;
        let mut h = MockHost::new(64);
        h.args = [MockHost::BASE, 128, 0, 0];
        k.invoke(24, &mut h).unwrap();
        assert_eq!(h.ret, STATUS_RESOURCES);
        assert_eq!(h.mem_read(MockHost::BASE, 4).unwrap(), 0);
        // And the success path afterwards.
        k.invoke(24, &mut h).unwrap();
        assert_eq!(h.ret, STATUS_SUCCESS);
        assert_ne!(h.mem_read(MockHost::BASE, 4).unwrap(), 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::host::MockHost;
    use crate::state::ResourceKind;

    #[test]
    fn buffer_pool_lifecycle_and_bad_handles() {
        let mut k = Kernel::new();
        let mut h = MockHost::new(256);
        let base = MockHost::BASE;
        // Allocate a buffer pool.
        h.args = [base, base + 4, 4, 0];
        k.invoke(44, &mut h).unwrap();
        let pool = h.mem_read(base + 4, 4).unwrap();
        // Allocate a buffer over a virtual range.
        h.args = [base + 8, pool, 0x40_1000, 256];
        k.invoke(46, &mut h).unwrap();
        let buf = h.mem_read(base + 8, 4).unwrap();
        assert_ne!(buf, 0);
        // The descriptor records (va, len).
        assert_eq!(h.mem_read(buf, 4).unwrap(), 0x40_1000);
        assert_eq!(h.mem_read(buf + 4, 4).unwrap(), 256);
        // Pool with outstanding buffers cannot be freed.
        h.args = [pool, 0, 0, 0];
        assert!(k.invoke(45, &mut h).is_err());
        // Free buffer, then the pool.
        let mut k2 = Kernel::new();
        h.args = [base, base + 4, 4, 0];
        k2.invoke(44, &mut h).unwrap();
        let pool2 = h.mem_read(base + 4, 4).unwrap();
        h.args = [base + 8, pool2, 0x40_1000, 64];
        k2.invoke(46, &mut h).unwrap();
        let buf2 = h.mem_read(base + 8, 4).unwrap();
        h.args = [buf2, 0, 0, 0];
        k2.invoke(47, &mut h).unwrap();
        h.args = [pool2, 0, 0, 0];
        k2.invoke(45, &mut h).unwrap();
        assert_eq!(k2.state.live_resources(ResourceKind::Pool), 0);
        // Allocating from a bogus pool crashes.
        let mut k3 = Kernel::new();
        h.args = [base, pool2, 0, 0];
        assert!(k3.invoke(46, &mut h).is_err());
    }

    #[test]
    fn indicate_receive_validates_packets() {
        let mut k = Kernel::new();
        let mut h = MockHost::new(256);
        let base = MockHost::BASE;
        // A bogus packet pointer in the array crashes the kernel.
        h.mem_write(base + 0x10, 4, 0xdead_0000).unwrap();
        h.args = [0, base + 0x10, 1, 0];
        assert!(k.invoke(48, &mut h).is_err());
        // A real packet is accepted.
        let mut k2 = Kernel::new();
        h.args = [base, base + 4, 2, 0];
        k2.invoke(40, &mut h).unwrap();
        let pool = h.mem_read(base + 4, 4).unwrap();
        h.args = [base, base + 8, pool, 0];
        k2.invoke(42, &mut h).unwrap();
        let pkt = h.mem_read(base + 8, 4).unwrap();
        h.mem_write(base + 0x10, 4, pkt).unwrap();
        h.args = [0, base + 0x10, 1, 0];
        k2.invoke(48, &mut h).unwrap();
        assert_eq!(k2.state.indicated_packets, 1);
    }

    #[test]
    fn network_address_from_registry() {
        let mut k = Kernel::new();
        k.state.registry.insert("NetworkAddress".into(), 0x00aa_bbcc);
        let mut h = MockHost::new(64);
        let base = MockHost::BASE;
        h.args = [base, base + 8, 0, 0];
        k.invoke(53, &mut h).unwrap();
        assert_eq!(h.mem_read(base, 4).unwrap(), STATUS_SUCCESS);
        assert_eq!(h.mem_read(base + 8, 1).unwrap(), 0xcc, "first MAC byte");
        // Without the parameter, the call fails cleanly.
        let mut k2 = Kernel::new();
        k2.invoke(53, &mut h).unwrap();
        assert_eq!(h.mem_read(base, 4).unwrap(), STATUS_FAILURE);
    }

    #[test]
    fn cancel_absent_timer_reports_not_armed() {
        let mut k = Kernel::new();
        let mut h = MockHost::new(64);
        h.args = [0x40_5000, MockHost::BASE, 0, 0];
        k.invoke(36, &mut h).unwrap();
        assert_eq!(h.mem_read(MockHost::BASE, 4).unwrap(), 0, "nothing was armed");
    }

    #[test]
    fn deregister_interrupt_clears_registration() {
        let mut k = Kernel::new();
        let mut h = MockHost::new(64);
        h.args = [0x40_6000, 0, 9, 0];
        k.invoke(32, &mut h).unwrap();
        assert!(k.state.interrupt.is_some());
        h.args = [0x40_6000, 0, 0, 0];
        k.invoke(33, &mut h).unwrap();
        assert!(k.state.interrupt.is_none());
    }

    #[test]
    fn pc_disconnect_interrupt_stops_delivery() {
        let mut k = Kernel::new();
        let mut h = MockHost::new(64);
        h.args = [MockHost::BASE, 0, 6, 0];
        k.invoke(61, &mut h).unwrap(); // PcNewInterruptSync.
        assert!(k.state.interrupt.is_some());
        let obj = h.mem_read(MockHost::BASE, 4).unwrap();
        h.args = [obj, 0, 0, 0];
        k.invoke(66, &mut h).unwrap(); // PcDisconnectInterrupt.
        assert!(k.state.interrupt.is_none());
    }

    #[test]
    fn map_io_space_returns_the_device_window() {
        let mut k = Kernel::new();
        let mut h = MockHost::new(64);
        h.args = [MockHost::BASE, 0, 0x40, 0x100];
        k.invoke(38, &mut h).unwrap();
        let va = h.mem_read(MockHost::BASE, 4).unwrap();
        assert_eq!(va, crate::state::DEVICE_MMIO_BASE + 0x40);
    }

    #[test]
    fn stall_advances_virtual_time() {
        let mut k = Kernel::new();
        let mut h = MockHost::new(64);
        h.args = [250, 0, 0, 0];
        k.invoke(4, &mut h).unwrap();
        assert_eq!(k.state.now_us, 250);
    }

    #[test]
    fn injected_registry_fault_fails_open_configuration() {
        let mut k = Kernel::new();
        k.state.inject_fault = Some(FaultFamily::Registry);
        let mut h = MockHost::new(64);
        let base = MockHost::BASE;
        h.args = [base, base + 4, 0, 0];
        k.invoke(21, &mut h).unwrap();
        assert_eq!(h.mem_read(base, 4).unwrap(), STATUS_FAILURE);
        assert_eq!(h.mem_read(base + 4, 4).unwrap(), 0, "handle out-param is NULL");
        assert_eq!(k.state.live_resources(ResourceKind::ConfigHandle), 0);
        assert!(k.state.inject_fault.is_none(), "one-shot");
        // The unchecked driver pattern: using the NULL handle bug-checks.
        h.args = [base, base + 8, 0, base + 0x20];
        assert!(k.invoke(22, &mut h).is_err());
    }

    #[test]
    fn injected_registration_fault_leaves_timer_uninitialized() {
        let mut k = Kernel::new();
        k.state.inject_fault = Some(FaultFamily::Registration);
        let mut h = MockHost::new(64);
        h.args = [0x40_2000, 0, 0x40_0100, 0x40_3000];
        k.invoke(34, &mut h).unwrap();
        assert_eq!(h.ret, STATUS_FAILURE);
        assert!(k.state.timers.is_empty());
        // Arming the never-initialized descriptor crashes.
        h.args = [0x40_2000, 50, 0, 0];
        let e = k.invoke(35, &mut h).unwrap_err();
        assert_eq!(e.code, BUGCHECK_BAD_TIMER);
    }

    #[test]
    fn injected_shared_memory_fault_fails_packet_pool() {
        let mut k = Kernel::new();
        k.state.inject_fault = Some(FaultFamily::SharedMemory);
        let mut h = MockHost::new(256);
        let base = MockHost::BASE;
        h.args = [base, base + 4, 2, 0];
        k.invoke(40, &mut h).unwrap();
        assert_eq!(h.mem_read(base, 4).unwrap(), STATUS_RESOURCES);
        assert_eq!(h.mem_read(base + 4, 4).unwrap(), 0);
        // Allocating from the NULL pool handle crashes.
        h.args = [base, base + 8, 0, 0];
        assert!(k.invoke(42, &mut h).is_err());
    }

    #[test]
    fn injected_map_registers_fault_writes_null_mapping() {
        let mut k = Kernel::new();
        k.state.inject_fault = Some(FaultFamily::MapRegisters);
        let mut h = MockHost::new(64);
        h.args = [MockHost::BASE, 0, 0x40, 0x100];
        k.invoke(38, &mut h).unwrap();
        assert_eq!(h.ret, STATUS_RESOURCES);
        assert_eq!(h.mem_read(MockHost::BASE, 4).unwrap(), 0);
    }

    #[test]
    fn injected_fault_only_fires_on_its_family() {
        let mut k = Kernel::new();
        k.state.inject_fault = Some(FaultFamily::Registration);
        let mut h = MockHost::new(64);
        // A pool allocation is unaffected by an armed Registration fault.
        h.args = [0, 100, 0, 0];
        k.invoke(5, &mut h).unwrap();
        assert_ne!(h.ret, 0);
        assert_eq!(k.state.inject_fault, Some(FaultFamily::Registration));
        // The interrupt registration then fails.
        h.args = [0x40_6000, 0, 9, 0];
        k.invoke(32, &mut h).unwrap();
        assert_eq!(h.ret, STATUS_FAILURE);
        assert!(k.state.interrupt.is_none());
        let injected = k.state.events.iter().any(|e| {
            matches!(e, KernelEvent::FaultInjected { family: FaultFamily::Registration })
        });
        assert!(injected, "consumption is logged");
    }

    #[test]
    fn pnp_notification_registration_and_removal_query() {
        let mut k = Kernel::new();
        let mut h = MockHost::new(64);
        // Register a PnP callback.
        h.args = [0x40_0200, 0x40_3000, 0, 0];
        k.invoke(67, &mut h).unwrap();
        assert_eq!(k.state.pnp_handler, 0x40_0200);
        assert_eq!(k.state.pnp_context, 0x40_3000);
        // Device still present: IoIsDeviceRemoved reports FALSE.
        k.invoke(69, &mut h).unwrap();
        assert_eq!(h.ret, 0);
        k.state.surprise_remove();
        k.invoke(69, &mut h).unwrap();
        assert_eq!(h.ret, 1);
        // NULL callback bug-checks.
        let mut k2 = Kernel::new();
        h.args = [0, 0, 0, 0];
        assert!(k2.invoke(67, &mut h).is_err());
    }

    #[test]
    fn power_state_query_tracks_transitions() {
        use crate::state::DevicePowerState;
        let mut k = Kernel::new();
        let mut h = MockHost::new(64);
        h.args = [MockHost::BASE, 0, 0, 0];
        k.invoke(68, &mut h).unwrap();
        assert_eq!(h.mem_read(MockHost::BASE, 4).unwrap(), 0, "D0");
        k.state.set_power(DevicePowerState::D3);
        h.args = [MockHost::BASE, 0, 0, 0];
        k.invoke(68, &mut h).unwrap();
        assert_eq!(h.mem_read(MockHost::BASE, 4).unwrap(), 3, "D3");
    }

    #[test]
    fn query_system_time_writes_to_guest() {
        let mut k = Kernel::new();
        k.state.now_us = 12345;
        let mut h = MockHost::new(64);
        h.args = [MockHost::BASE, 0, 0, 0];
        k.invoke(9, &mut h).unwrap();
        assert_eq!(h.mem_read(MockHost::BASE, 4).unwrap(), 12345);
    }
}
