//! Kernel state: everything the mini-OS tracks across driver interactions.
//!
//! The state is a plain `Clone` value so DDT can snapshot it with each
//! forked execution state. Sizes are tiny compared to guest memory, so an
//! eager clone is cheap (guest memory itself is chained-COW in `ddt-symvm`).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// Interrupt request levels (simplified Windows model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Irql {
    /// Normal thread execution.
    #[default]
    Passive,
    /// Dispatch level: DPCs, spinlocks held.
    Dispatch,
    /// Device interrupt level: ISRs.
    Device,
}

impl Irql {
    /// Numeric level (for comparisons in bug reports).
    pub fn level(self) -> u8 {
        match self {
            Irql::Passive => 0,
            Irql::Dispatch => 2,
            Irql::Device => 5,
        }
    }
}

/// What kind of code the kernel believes is currently running.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecContext {
    /// A normal driver entry point.
    Passive,
    /// A deferred procedure call (timer or interrupt DPC).
    Dpc,
    /// An interrupt service routine.
    Isr,
}

/// Kernel-API families whose acquisitions DDT can fail on demand.
///
/// This generalizes the annotation-driven "NULL alternative" fork (which
/// only covers allocators) to every acquisition-shaped API the kernel
/// exports: the executor arms [`KernelState::inject_fault`] on a forked
/// state, and the next call belonging to that family runs its failure path
/// instead of succeeding. Drivers that ignore the returned status and use
/// the resource anyway surface unchecked-failure bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultFamily {
    /// Pool allocators (`ExAllocatePoolWithTag`, `NdisAllocateMemoryWithTag`).
    PoolAlloc,
    /// Shared memory: packet/buffer pools, packet/buffer descriptors, DMA
    /// channels.
    SharedMemory,
    /// I/O space mappings and port-range registrations.
    MapRegisters,
    /// Interrupt and timer registration.
    Registration,
    /// Registry/configuration reads.
    Registry,
    /// Device-lifecycle events: PnP surprise removal and D0/D3 power
    /// transitions. Unlike the acquisition families, these do not fail a
    /// kernel call — they inject a lifecycle event at an execution boundary.
    Lifecycle,
}

impl FaultFamily {
    /// All injectable families.
    pub const ALL: [FaultFamily; 6] = [
        FaultFamily::PoolAlloc,
        FaultFamily::SharedMemory,
        FaultFamily::MapRegisters,
        FaultFamily::Registration,
        FaultFamily::Registry,
        FaultFamily::Lifecycle,
    ];

    /// Human-readable family name for reports.
    pub fn describe(self) -> &'static str {
        match self {
            FaultFamily::PoolAlloc => "pool allocation",
            FaultFamily::SharedMemory => "shared memory allocation",
            FaultFamily::MapRegisters => "I/O mapping",
            FaultFamily::Registration => "interrupt/timer registration",
            FaultFamily::Registry => "registry read",
            FaultFamily::Lifecycle => "device lifecycle",
        }
    }
}

impl std::fmt::Display for FaultFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// Maps a kernel export to the fault family it acquires for, if any.
///
/// This is the single source of truth for which exports are fault
/// injectable; the executor consults it when deciding where to fork an
/// injected-failure alternative, and the API implementations consume the
/// armed fault via [`KernelState::take_fault`].
pub fn fault_family(export: u16) -> Option<FaultFamily> {
    match export {
        // ExAllocatePoolWithTag, NdisAllocateMemoryWithTag.
        5 | 24 => Some(FaultFamily::PoolAlloc),
        // NdisAllocatePacketPool, NdisAllocatePacket, NdisAllocateBufferPool,
        // NdisAllocateBuffer, PcNewDmaChannel.
        40 | 42 | 44 | 46 | 63 => Some(FaultFamily::SharedMemory),
        // NdisMMapIoSpace, NdisMRegisterIoPortRange.
        38 | 39 => Some(FaultFamily::MapRegisters),
        // NdisMRegisterInterrupt, NdisMInitializeTimer, PcNewInterruptSync.
        32 | 34 | 61 => Some(FaultFamily::Registration),
        // NdisOpenConfiguration, NdisReadConfiguration,
        // NdisReadNetworkAddress.
        21 | 22 | 53 => Some(FaultFamily::Registry),
        _ => None,
    }
}

/// Device power states (simplified ACPI model: fully on or fully off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DevicePowerState {
    /// Fully powered: registers live, DMA engines may run.
    #[default]
    D0,
    /// Off: register contents are lost; the driver must reprogram the
    /// device on the next D0 transition.
    D3,
}

/// Kinds of driver-held resources the kernel accounts for (leak checking).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Pool memory (`ExAllocatePoolWithTag`, `NdisAllocateMemoryWithTag`).
    PoolMemory,
    /// An open configuration handle.
    ConfigHandle,
    /// An NDIS packet descriptor.
    Packet,
    /// An NDIS buffer descriptor.
    Buffer,
    /// A packet or buffer pool.
    Pool,
    /// A registered interrupt.
    Interrupt,
    /// A spinlock allocation.
    SpinLock,
    /// A DMA channel (audio).
    DmaChannel,
    /// Mapped I/O space.
    IoMapping,
}

/// A live pool allocation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolAlloc {
    /// Guest address of the allocation.
    pub addr: u32,
    /// Size in bytes.
    pub size: u32,
    /// Allocation tag (for reports).
    pub tag: u32,
    /// True if allocated from paged pool (illegal to touch at dispatch+).
    pub paged: bool,
}

/// A spinlock's runtime state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinLockState {
    /// Currently held.
    pub held: bool,
    /// Whether the current hold was acquired with the `Dpr` variant.
    pub acquired_dpr: bool,
    /// IRQL saved by a non-Dpr acquire (restored by non-Dpr release).
    pub saved_irql: Irql,
    /// Total acquisitions (diagnostics).
    pub acquisitions: u32,
}

impl SpinLockState {
    /// A fresh, unheld lock.
    pub fn new() -> SpinLockState {
        SpinLockState {
            held: false,
            acquired_dpr: false,
            saved_irql: Irql::Passive,
            acquisitions: 0,
        }
    }
}

/// A timer object registered by the driver.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerState {
    /// True once `NdisMInitializeTimer` ran on this descriptor.
    pub initialized: bool,
    /// Driver callback address.
    pub callback: u32,
    /// Driver context argument.
    pub context: u32,
    /// Pending expiry (virtual ms), if armed.
    pub due: Option<u64>,
}

/// A registered interrupt.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterruptRegistration {
    /// Interrupt line.
    pub line: u8,
    /// Guest address of the driver's interrupt object.
    pub object: u32,
}

/// The driver's registered entry points (NDIS miniport or audio adapter).
///
/// A zero address means "not provided".
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiniportTable {
    /// Initialize handler.
    pub initialize: u32,
    /// Send / start-playback handler.
    pub send: u32,
    /// QueryInformation / property-get handler.
    pub query_information: u32,
    /// SetInformation / property-set handler.
    pub set_information: u32,
    /// Interrupt service routine.
    pub isr: u32,
    /// HandleInterrupt DPC.
    pub handle_interrupt: u32,
    /// Reset handler.
    pub reset: u32,
    /// Halt / stop handler.
    pub halt: u32,
    /// CheckForHang handler.
    pub check_for_hang: u32,
    /// Timer-style auxiliary callback (audio: stop-DMA).
    pub aux: u32,
}

impl MiniportTable {
    /// Reads a table from ten consecutive guest words.
    pub fn from_words(w: &[u32; 10]) -> MiniportTable {
        MiniportTable {
            initialize: w[0],
            send: w[1],
            query_information: w[2],
            set_information: w[3],
            isr: w[4],
            handle_interrupt: w[5],
            reset: w[6],
            halt: w[7],
            check_for_hang: w[8],
            aux: w[9],
        }
    }

    /// Iterates the named, non-zero entry points.
    pub fn entries(&self) -> Vec<(&'static str, u32)> {
        [
            ("Initialize", self.initialize),
            ("Send", self.send),
            ("QueryInformation", self.query_information),
            ("SetInformation", self.set_information),
            ("Isr", self.isr),
            ("HandleInterrupt", self.handle_interrupt),
            ("Reset", self.reset),
            ("Halt", self.halt),
            ("CheckForHang", self.check_for_hang),
            ("Aux", self.aux),
        ]
        .into_iter()
        .filter(|&(_, a)| a != 0)
        .collect()
    }
}

/// A kernel crash (the BSOD analog).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashInfo {
    /// Bug-check code.
    pub code: u32,
    /// Human-readable description.
    pub message: String,
}

/// Events the kernel logs for DDT's guest-OS-level checkers (§3.1.2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelEvent {
    /// A kernel API was invoked.
    ApiCall {
        /// Export id.
        export_id: u16,
        /// Export name.
        name: String,
        /// The four argument registers at call time.
        args: [u32; 4],
        /// Execution context at call time.
        context: ExecContext,
        /// IRQL at call time.
        irql: Irql,
    },
    /// A resource was granted to the driver.
    ResourceAcquired {
        /// Resource class.
        kind: ResourceKind,
        /// Handle or address identifying the resource.
        handle: u32,
        /// Size, if meaningful.
        size: u32,
    },
    /// A resource was released by the driver.
    ResourceReleased {
        /// Resource class.
        kind: ResourceKind,
        /// Handle or address.
        handle: u32,
    },
    /// A spinlock acquire.
    SpinAcquire {
        /// Lock address.
        lock: u32,
        /// Dpr variant?
        dpr: bool,
    },
    /// A spinlock release.
    SpinRelease {
        /// Lock address.
        lock: u32,
        /// Dpr variant?
        dpr: bool,
        /// True if the release variant did not match the acquire variant —
        /// the Intel Pro/100 bug class (Table 2 row 13).
        variant_mismatch: bool,
    },
    /// IRQL changed.
    IrqlChange {
        /// Previous level.
        from: Irql,
        /// New level.
        to: Irql,
    },
    /// A timer was armed.
    TimerSet {
        /// Timer descriptor address.
        timer: u32,
        /// Whether it had been initialized.
        initialized: bool,
    },
    /// An armed fault was consumed: the API call it landed on ran its
    /// failure path instead of succeeding.
    FaultInjected {
        /// The family the fault belonged to.
        family: FaultFamily,
    },
    /// The device was surprise-removed: it is physically gone, every
    /// register read returns all-ones, and the driver must stop touching
    /// hardware.
    DeviceSurpriseRemoved,
    /// The device changed power state.
    PowerTransition {
        /// Previous power state.
        from: DevicePowerState,
        /// New power state.
        to: DevicePowerState,
    },
    /// The kernel crashed.
    Crash(CrashInfo),
}

/// All mutable kernel state.
#[derive(Clone, Debug)]
pub struct KernelState {
    /// Current IRQL.
    pub irql: Irql,
    /// Current execution context (set by the executor when it invokes entry
    /// points, DPCs, and ISRs).
    pub context: ExecContext,
    /// Driver configuration parameters (the registry).
    pub registry: BTreeMap<String, u32>,
    /// Live pool allocations keyed by guest address.
    pub pool: HashMap<u32, PoolAlloc>,
    /// Open configuration handles.
    pub config_handles: HashMap<u32, bool>,
    /// Spinlocks keyed by lock address.
    pub spinlocks: HashMap<u32, SpinLockState>,
    /// Timers keyed by descriptor address.
    pub timers: HashMap<u32, TimerState>,
    /// Registered interrupt, if any.
    pub interrupt: Option<InterruptRegistration>,
    /// Packet pools (handle → capacity).
    pub packet_pools: HashMap<u32, u32>,
    /// Buffer pools (handle → capacity).
    pub buffer_pools: HashMap<u32, u32>,
    /// Live packets (handle → owning pool).
    pub packets: HashMap<u32, u32>,
    /// Live buffers (handle → owning pool).
    pub buffers: HashMap<u32, u32>,
    /// DMA channels (audio).
    pub dma_channels: HashMap<u32, u32>,
    /// Registered entry points.
    pub miniport: Option<MiniportTable>,
    /// Completed sends (handle values passed to `NdisMSendComplete`).
    pub completed_sends: Vec<u32>,
    /// Packets indicated up the stack.
    pub indicated_packets: u32,
    /// Kernel crash, if one occurred.
    pub crash: Option<CrashInfo>,
    /// Event log for checkers.
    pub events: Vec<KernelEvent>,
    /// Virtual time in microseconds.
    pub now_us: u64,
    /// Bump cursor for the kernel heap.
    pub heap_cursor: u32,
    /// Forced failure of the next N allocations (set by DDT's
    /// concrete-to-symbolic annotation forks: the "NULL alternative").
    pub force_alloc_failures: u32,
    /// One-shot armed fault: the next API call of this family fails.
    pub inject_fault: Option<FaultFamily>,
    /// The PnP device descriptor for the loaded device.
    pub device: crate::loader::DeviceDescriptor,
    /// MMIO base the kernel assigned to the device.
    pub device_mmio_base: u32,
    /// Adapter handle value handed to the driver.
    pub adapter_handle: u32,
    /// False once the device has been surprise-removed.
    pub device_present: bool,
    /// Current device power state.
    pub power: DevicePowerState,
    /// Driver PnP-notification callback registered via
    /// `IoRegisterPlugPlayNotification` (0 = none).
    pub pnp_handler: u32,
    /// Context argument for the PnP-notification callback.
    pub pnp_context: u32,
}

/// Kernel heap region start.
pub const HEAP_BASE: u32 = 0x0100_0000;
/// Kernel heap region end.
pub const HEAP_END: u32 = 0x0200_0000;
/// MMIO window the kernel assigns to the device under test.
pub const DEVICE_MMIO_BASE: u32 = 0x8000_0000;

impl Default for KernelState {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelState {
    /// Fresh kernel state.
    pub fn new() -> KernelState {
        KernelState {
            irql: Irql::Passive,
            context: ExecContext::Passive,
            registry: BTreeMap::new(),
            pool: HashMap::new(),
            config_handles: HashMap::new(),
            spinlocks: HashMap::new(),
            timers: HashMap::new(),
            interrupt: None,
            packet_pools: HashMap::new(),
            buffer_pools: HashMap::new(),
            packets: HashMap::new(),
            buffers: HashMap::new(),
            dma_channels: HashMap::new(),
            miniport: None,
            completed_sends: Vec::new(),
            indicated_packets: 0,
            crash: None,
            events: Vec::new(),
            now_us: 0,
            heap_cursor: HEAP_BASE,
            force_alloc_failures: 0,
            inject_fault: None,
            device: crate::loader::DeviceDescriptor::default(),
            device_mmio_base: DEVICE_MMIO_BASE,
            adapter_handle: 0xAD4A_0000,
            device_present: true,
            power: DevicePowerState::D0,
            pnp_handler: 0,
            pnp_context: 0,
        }
    }

    /// Marks the device surprise-removed (idempotent; logs on the first
    /// removal only).
    pub fn surprise_remove(&mut self) {
        if self.device_present {
            self.device_present = false;
            self.log(KernelEvent::DeviceSurpriseRemoved);
        }
    }

    /// Transitions the device power state (no-op when already there).
    pub fn set_power(&mut self, to: DevicePowerState) {
        if self.power != to {
            let from = self.power;
            self.power = to;
            self.log(KernelEvent::PowerTransition { from, to });
        }
    }

    /// Resets to a fresh-boot state while keeping the configuration that
    /// outlives one run: the registry and the device descriptor. This is the
    /// concrete-mode recycling shim — the hybrid fuzzer re-runs thousands of
    /// workloads against one loaded image, and rebuilding only the kernel
    /// side (not the VM or the image) is what keeps iterations cheap.
    pub fn reset_for_run(&mut self) {
        let registry = std::mem::take(&mut self.registry);
        let device = self.device.clone();
        *self = KernelState::new();
        self.registry = registry;
        self.device = device;
    }

    /// Records an event.
    pub fn log(&mut self, ev: KernelEvent) {
        self.events.push(ev);
    }

    /// Raises a bug check (records the crash; idempotent — the first crash
    /// wins, like a real kernel halting at the first BSOD).
    pub fn bug_check(&mut self, code: u32, message: impl Into<String>) {
        if self.crash.is_none() {
            let info = CrashInfo { code, message: message.into() };
            self.events.push(KernelEvent::Crash(info.clone()));
            self.crash = Some(info);
        }
    }

    /// Allocates `size` bytes from the kernel heap (16-byte aligned).
    /// Returns `None` when exhausted or when a forced failure is pending.
    pub fn heap_alloc(&mut self, size: u32) -> Option<u32> {
        if self.force_alloc_failures > 0 {
            self.force_alloc_failures -= 1;
            return None;
        }
        let size = size.max(1).next_multiple_of(16);
        let addr = self.heap_cursor;
        if addr.checked_add(size)? > HEAP_END {
            return None;
        }
        self.heap_cursor += size;
        Some(addr)
    }

    /// Consumes the armed fault if it belongs to `family`.
    ///
    /// API implementations call this at the top of their body; a `true`
    /// return means "run your failure path". Consumption is logged so
    /// checkers and the replay verifier can see where the fault landed.
    pub fn take_fault(&mut self, family: FaultFamily) -> bool {
        if self.inject_fault == Some(family) {
            self.inject_fault = None;
            self.log(KernelEvent::FaultInjected { family });
            true
        } else {
            false
        }
    }

    /// Counts live resources of one kind (leak accounting).
    pub fn live_resources(&self, kind: ResourceKind) -> usize {
        match kind {
            ResourceKind::PoolMemory => self.pool.len(),
            ResourceKind::ConfigHandle => self.config_handles.values().filter(|&&o| o).count(),
            ResourceKind::Packet => self.packets.len(),
            ResourceKind::Buffer => self.buffers.len(),
            ResourceKind::Pool => self.packet_pools.len() + self.buffer_pools.len(),
            ResourceKind::Interrupt => self.interrupt.iter().count(),
            ResourceKind::SpinLock => self.spinlocks.len(),
            ResourceKind::DmaChannel => self.dma_channels.len(),
            ResourceKind::IoMapping => 0,
        }
    }

    /// Snapshot of live-resource counts across all kinds.
    pub fn resource_snapshot(&self) -> BTreeMap<ResourceKind, usize> {
        use ResourceKind::*;
        [PoolMemory, ConfigHandle, Packet, Buffer, Pool, Interrupt, SpinLock, DmaChannel]
            .into_iter()
            .map(|k| (k, self.live_resources(k)))
            .collect()
    }

    /// True if any spinlock is currently held.
    pub fn any_lock_held(&self) -> bool {
        self.spinlocks.values().any(|l| l.held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_alloc_bumps_and_aligns() {
        let mut s = KernelState::new();
        let a = s.heap_alloc(10).unwrap();
        let b = s.heap_alloc(1).unwrap();
        assert_eq!(a % 16, 0);
        assert_eq!(b, a + 16);
    }

    #[test]
    fn forced_failures_consume() {
        let mut s = KernelState::new();
        s.force_alloc_failures = 2;
        assert_eq!(s.heap_alloc(8), None);
        assert_eq!(s.heap_alloc(8), None);
        assert!(s.heap_alloc(8).is_some());
    }

    #[test]
    fn bug_check_is_first_wins() {
        let mut s = KernelState::new();
        s.bug_check(1, "first");
        s.bug_check(2, "second");
        assert_eq!(s.crash.as_ref().unwrap().code, 1);
        assert_eq!(s.events.len(), 1);
    }

    #[test]
    fn resource_snapshot_counts() {
        let mut s = KernelState::new();
        s.pool.insert(0x100, PoolAlloc { addr: 0x100, size: 32, tag: 0, paged: false });
        s.config_handles.insert(1, true);
        s.config_handles.insert(2, false); // Closed: not counted.
        let snap = s.resource_snapshot();
        assert_eq!(snap[&ResourceKind::PoolMemory], 1);
        assert_eq!(snap[&ResourceKind::ConfigHandle], 1);
        assert_eq!(snap[&ResourceKind::Packet], 0);
    }

    #[test]
    fn miniport_table_entries_skip_zero() {
        let t = MiniportTable::from_words(&[1, 2, 0, 0, 5, 0, 0, 0, 0, 0]);
        let names: Vec<&str> = t.entries().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, vec!["Initialize", "Send", "Isr"]);
    }

    #[test]
    fn take_fault_is_one_shot_and_family_selective() {
        let mut s = KernelState::new();
        s.inject_fault = Some(FaultFamily::Registration);
        assert!(!s.take_fault(FaultFamily::PoolAlloc), "wrong family leaves it armed");
        assert!(s.take_fault(FaultFamily::Registration));
        assert!(!s.take_fault(FaultFamily::Registration), "consumed");
        assert!(matches!(
            s.events.last(),
            Some(KernelEvent::FaultInjected { family: FaultFamily::Registration })
        ));
    }

    #[test]
    fn fault_family_covers_the_acquisition_exports() {
        assert_eq!(fault_family(5), Some(FaultFamily::PoolAlloc));
        assert_eq!(fault_family(24), Some(FaultFamily::PoolAlloc));
        assert_eq!(fault_family(40), Some(FaultFamily::SharedMemory));
        assert_eq!(fault_family(63), Some(FaultFamily::SharedMemory));
        assert_eq!(fault_family(38), Some(FaultFamily::MapRegisters));
        assert_eq!(fault_family(32), Some(FaultFamily::Registration));
        assert_eq!(fault_family(34), Some(FaultFamily::Registration));
        assert_eq!(fault_family(21), Some(FaultFamily::Registry));
        assert_eq!(fault_family(52), None, "NdisMSleep acquires nothing");
    }

    #[test]
    fn irql_ordering() {
        assert!(Irql::Passive < Irql::Dispatch);
        assert!(Irql::Dispatch < Irql::Device);
        assert_eq!(Irql::Dispatch.level(), 2);
    }

    #[test]
    fn surprise_remove_is_idempotent_and_logged_once() {
        let mut s = KernelState::new();
        assert!(s.device_present);
        s.surprise_remove();
        s.surprise_remove();
        assert!(!s.device_present);
        let removals = s
            .events
            .iter()
            .filter(|e| matches!(e, KernelEvent::DeviceSurpriseRemoved))
            .count();
        assert_eq!(removals, 1);
    }

    #[test]
    fn power_transitions_log_edges_only() {
        let mut s = KernelState::new();
        assert_eq!(s.power, DevicePowerState::D0);
        s.set_power(DevicePowerState::D0); // Already there: silent.
        assert!(s.events.is_empty());
        s.set_power(DevicePowerState::D3);
        s.set_power(DevicePowerState::D0);
        assert_eq!(s.events.len(), 2);
        assert!(matches!(
            s.events[1],
            KernelEvent::PowerTransition { from: DevicePowerState::D3, to: DevicePowerState::D0 }
        ));
    }

    #[test]
    fn lifecycle_family_is_in_all_and_maps_to_no_export() {
        assert!(FaultFamily::ALL.contains(&FaultFamily::Lifecycle));
        for export in 0..128u16 {
            assert_ne!(fault_family(export), Some(FaultFamily::Lifecycle));
        }
    }

    #[test]
    fn reset_for_run_restores_device_presence_and_power() {
        let mut s = KernelState::new();
        s.surprise_remove();
        s.set_power(DevicePowerState::D3);
        s.pnp_handler = 0x4000;
        s.pnp_context = 7;
        s.reset_for_run();
        assert!(s.device_present);
        assert_eq!(s.power, DevicePowerState::D0);
        assert_eq!(s.pnp_handler, 0);
        assert_eq!(s.pnp_context, 0);
    }

    #[test]
    fn reset_for_run_keeps_configuration_only() {
        let mut s = KernelState::new();
        s.registry.insert("MaximumMulticastList".into(), 8);
        s.device.vendor_id = 0x8086;
        // Dirty the run-scoped state.
        s.heap_alloc(64).unwrap();
        s.bug_check(0xdead, "boom");
        s.force_alloc_failures = 3;
        s.indicated_packets = 9;
        s.now_us = 1234;
        s.reset_for_run();
        assert_eq!(s.registry.get("MaximumMulticastList"), Some(&8));
        assert_eq!(s.device.vendor_id, 0x8086);
        assert_eq!(s.heap_cursor, HEAP_BASE);
        assert!(s.crash.is_none());
        assert!(s.events.is_empty());
        assert_eq!(s.force_alloc_failures, 0);
        assert_eq!(s.indicated_packets, 0);
        assert_eq!(s.now_us, 0);
    }
}
