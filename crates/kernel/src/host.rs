//! The [`Host`] trait: how the kernel touches machine state.
//!
//! The kernel is native code operating on guest state — the "concrete side"
//! of selective symbolic execution (§3.2). When the executor is symbolic,
//! the host implementation concretizes on demand: reading a register or a
//! memory cell that currently holds a symbolic expression picks a feasible
//! value and records the concretization constraint ("when concrete code
//! attempts to access a symbolic memory location, that location is
//! automatically concretized, and a corresponding constraint is added",
//! §4.1.1). When the executor is the concrete VM, the host is a thin
//! passthrough.

/// An error reaching guest state (unmapped memory and the like).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostError {
    /// The guest address involved.
    pub addr: u32,
}

/// Machine access used by kernel API implementations.
pub trait Host {
    /// Reads argument register `idx` (0–3) as a concrete value.
    fn arg(&mut self, idx: usize) -> u32;

    /// Writes the return value register (`r0`).
    fn set_ret(&mut self, v: u32);

    /// Reads `size` bytes (1, 2, or 4) at `addr` as a concrete value.
    fn mem_read(&mut self, addr: u32, size: u8) -> Result<u32, HostError>;

    /// Writes `size` bytes at `addr`.
    fn mem_write(&mut self, addr: u32, size: u8, v: u32) -> Result<(), HostError>;

    /// Maps `[start, start+len)` as accessible guest memory (heap grants).
    fn map_region(&mut self, start: u32, len: u32);

    /// Unmaps a region (frees).
    fn unmap_region(&mut self, start: u32, len: u32);

    /// Marks `[addr, addr+len)` as fresh symbolic data with a provenance
    /// label. No-op under concrete execution. Used by DDT annotations (e.g.
    /// making packet contents symbolic, §3.2).
    fn make_symbolic(&mut self, addr: u32, len: u32, label: &str);

    /// Reads a NUL-terminated ASCII string (bounded).
    fn read_cstr(&mut self, addr: u32, max: u32) -> Result<String, HostError> {
        let mut out = String::new();
        for i in 0..max {
            let b = self.mem_read(addr + i, 1)? as u8;
            if b == 0 {
                break;
            }
            out.push(b as char);
        }
        Ok(out)
    }

    /// Writes a 32-bit word.
    fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), HostError> {
        self.mem_write(addr, 4, v)
    }

    /// Reads a 32-bit word.
    fn read_u32(&mut self, addr: u32) -> Result<u32, HostError> {
        self.mem_read(addr, 4)
    }
}

/// A [`Host`] over plain arrays, for kernel unit tests.
#[derive(Clone, Debug)]
pub struct MockHost {
    /// Argument registers.
    pub args: [u32; 4],
    /// Captured return value.
    pub ret: u32,
    /// Flat test memory starting at [`MockHost::BASE`].
    pub mem: Vec<u8>,
    /// Regions mapped through the host.
    pub mapped: Vec<(u32, u32)>,
    /// Backing store for kernel-mapped regions (heap descriptors etc.).
    pub extra: std::collections::HashMap<u32, u8>,
    /// Symbolic grants requested.
    pub symbolic: Vec<(u32, u32, String)>,
}

impl MockHost {
    /// Base guest address of the mock memory window.
    pub const BASE: u32 = 0x10_0000;

    /// Creates a mock with `size` bytes of memory.
    pub fn new(size: usize) -> MockHost {
        MockHost {
            args: [0; 4],
            ret: 0xdead_c0de,
            mem: vec![0; size],
            mapped: Vec::new(),
            extra: std::collections::HashMap::new(),
            symbolic: Vec::new(),
        }
    }

    fn index(&self, addr: u32) -> Result<usize, HostError> {
        let off = addr.wrapping_sub(Self::BASE) as usize;
        if off < self.mem.len() {
            Ok(off)
        } else {
            Err(HostError { addr })
        }
    }

    fn in_mapped(&self, addr: u32) -> bool {
        self.mapped.iter().any(|&(s, l)| addr >= s && addr < s + l)
    }
}

impl Host for MockHost {
    fn arg(&mut self, idx: usize) -> u32 {
        self.args[idx]
    }

    fn set_ret(&mut self, v: u32) {
        self.ret = v;
    }

    fn mem_read(&mut self, addr: u32, size: u8) -> Result<u32, HostError> {
        let mut v = 0u32;
        for i in 0..size {
            let a = addr + i as u32;
            let byte = match self.index(a) {
                Ok(ix) => self.mem[ix],
                Err(e) => {
                    if self.in_mapped(a) {
                        self.extra.get(&a).copied().unwrap_or(0)
                    } else {
                        return Err(e);
                    }
                }
            };
            v |= (byte as u32) << (8 * i);
        }
        Ok(v)
    }

    fn mem_write(&mut self, addr: u32, size: u8, v: u32) -> Result<(), HostError> {
        for i in 0..size {
            let a = addr + i as u32;
            let byte = (v >> (8 * i)) as u8;
            match self.index(a) {
                Ok(ix) => self.mem[ix] = byte,
                Err(e) => {
                    if self.in_mapped(a) {
                        self.extra.insert(a, byte);
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    fn map_region(&mut self, start: u32, len: u32) {
        self.mapped.push((start, len));
    }

    fn unmap_region(&mut self, start: u32, len: u32) {
        self.mapped.retain(|&(s, l)| (s, l) != (start, len));
    }

    fn make_symbolic(&mut self, addr: u32, len: u32, label: &str) {
        self.symbolic.push((addr, len, label.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_host_memory_roundtrip() {
        let mut h = MockHost::new(64);
        h.mem_write(MockHost::BASE + 4, 4, 0xaabbccdd).unwrap();
        assert_eq!(h.mem_read(MockHost::BASE + 4, 4), Ok(0xaabbccdd));
        assert_eq!(h.mem_read(MockHost::BASE + 5, 1), Ok(0xcc));
        assert!(h.mem_read(MockHost::BASE + 64, 1).is_err());
    }

    #[test]
    fn read_cstr_stops_at_nul_and_bound() {
        let mut h = MockHost::new(64);
        h.mem[0..6].copy_from_slice(b"abc\0yz");
        assert_eq!(h.read_cstr(MockHost::BASE, 32).unwrap(), "abc");
        h.mem[0..4].copy_from_slice(b"abcd");
        assert_eq!(h.read_cstr(MockHost::BASE, 2).unwrap(), "ab", "bounded");
    }
}
