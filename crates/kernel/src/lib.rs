//! A miniature OS kernel with NDIS-flavored and WDM-flavored driver APIs.
//!
//! This crate is the Windows-kernel substrate of DESIGN.md §2. In the paper,
//! DDT runs the *real kernel binary* concretely while the driver executes
//! symbolically; here the kernel is native Rust code that manipulates guest
//! state through the [`Host`] trait — the same role, the same boundary. Both
//! the symbolic executor (`ddt-core`) and the concrete baseline (`ddt-sdv`)
//! implement [`Host`] and dispatch driver → kernel calls into
//! [`Kernel::invoke`].
//!
//! The API surface is deliberately Windows-shaped (names follow the NDIS 5
//! miniport API and the port-class audio API) because the 14 seeded bugs of
//! Table 2 are API-usage bugs: wrong spinlock release variants in DPCs,
//! unclosed configuration handles, unfreed pool allocations, timers armed
//! before initialization, and so on. See `exports` for the numbered export
//! table that driver binaries link against.
//!
//! What the kernel models:
//!
//! - pool allocation with tags and leak accounting ([`state::ResourceKind`]),
//! - spinlocks with IRQL tracking, including the `Dpr` (dispatch-level)
//!   acquire/release variants and their misuse semantics,
//! - the registry (driver configuration parameters),
//! - NDIS packet/buffer pools,
//! - timers and interrupt registration (delivery is orchestrated by the
//!   executor, like DDT asserting the virtual interrupt line, §4.1.4),
//! - PnP device descriptors readable via `NdisReadPciSlotInformation`,
//! - kernel crashes (`KeBugCheckEx` — the BSOD analog) and the consistency
//!   checks that trigger them (wrong-IRQL sleeps, pageable allocations at
//!   dispatch level, arming uninitialized timers).

pub mod api;
pub mod exports;
pub mod host;
pub mod loader;
pub mod state;

pub use exports::{export_id, export_map, export_name, Export};
pub use host::{Host, HostError};
pub use loader::{DeviceDescriptor, EntryInvocation, StackLayout};
pub use state::{
    fault_family, //
    CrashInfo,
    DevicePowerState,
    ExecContext,
    FaultFamily,
    Irql,
    KernelEvent,
    KernelState,
    MiniportTable,
    ResourceKind,
};

use ddt_isa::RETURN_TRAP;

/// NDIS_STATUS_SUCCESS.
pub const STATUS_SUCCESS: u32 = 0;
/// NDIS_STATUS_FAILURE.
pub const STATUS_FAILURE: u32 = 0xC000_0001;
/// NDIS_STATUS_RESOURCES (allocation failure).
pub const STATUS_RESOURCES: u32 = 0xC000_009A;
/// NDIS_STATUS_NOT_SUPPORTED (e.g. unknown OID).
pub const STATUS_NOT_SUPPORTED: u32 = 0xC000_00BB;

/// Bug-check code: IRQL_NOT_LESS_OR_EQUAL.
pub const BUGCHECK_IRQL: u32 = 0x0A;
/// Bug-check code: timer used before initialization.
pub const BUGCHECK_BAD_TIMER: u32 = 0xC7;
/// Bug-check code: driver-visible kernel fault (bad pointer passed in).
pub const BUGCHECK_FAULT: u32 = 0x7E;
/// Bug-check code: spinlock released that was not held.
pub const BUGCHECK_SPINLOCK: u32 = 0x81;

/// The kernel: its mutable state plus the API dispatcher.
///
/// `Kernel` is `Clone` — when DDT forks an execution state, the kernel
/// snapshot forks with it ("each execution state consists conceptually of a
/// complete system snapshot", §4.1.2).
#[derive(Clone, Debug)]
pub struct Kernel {
    /// All mutable kernel state.
    pub state: KernelState,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates a kernel with default state.
    pub fn new() -> Kernel {
        Kernel { state: KernelState::new() }
    }

    /// Dispatches a kernel export invocation.
    ///
    /// The driver's registers/memory are reachable through `host`; arguments
    /// follow the DDT-32 calling convention (`r0`–`r3`). On return the
    /// kernel has written the result to `r0` and the host must resume the
    /// driver at its saved link register.
    ///
    /// Returns `Err` with crash info if the call bug-checked the kernel.
    pub fn invoke(&mut self, export: u16, host: &mut dyn Host) -> Result<(), CrashInfo> {
        api::dispatch(self, export, host);
        match &self.state.crash {
            Some(c) => Err(c.clone()),
            None => Ok(()),
        }
    }

    /// The address driver entry points return to.
    pub fn return_trap() -> u32 {
        RETURN_TRAP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_forks_with_state() {
        let mut a = Kernel::new();
        a.state.registry.insert("NetworkAddress".into(), 7);
        let mut b = a.clone();
        b.state.registry.insert("NetworkAddress".into(), 9);
        assert_eq!(a.state.registry["NetworkAddress"], 7);
        assert_eq!(b.state.registry["NetworkAddress"], 9);
    }
}
