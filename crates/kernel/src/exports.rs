//! The kernel export table.
//!
//! Every kernel API callable from driver binaries has a fixed export id;
//! `CALL 0xF000_0000 + 8*id` invokes it (see `ddt-isa`). The assembler
//! resolves `call @Name` through [`export_map`], and DDT hooks API
//! boundaries by export id — the analog of DDT hooking "the kernel API
//! functions and driver entry points" (§3.1.1).

use ddt_isa::asm::ExportMap;

/// One kernel export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Export {
    /// Export id (determines the trap address).
    pub id: u16,
    /// Export name.
    pub name: &'static str,
}

/// The full export table, ordered by id.
///
/// Ids are stable: driver binaries encode them. Gaps are reserved.
pub const EXPORTS: &[Export] = &[
    // --- Ke/Ex core (0–19) ---
    Export { id: 0, name: "KeBugCheckEx" },
    Export { id: 1, name: "KeGetCurrentIrql" },
    Export { id: 2, name: "KeRaiseIrql" },
    Export { id: 3, name: "KeLowerIrql" },
    Export { id: 4, name: "KeStallExecutionProcessor" },
    Export { id: 5, name: "ExAllocatePoolWithTag" },
    Export { id: 6, name: "ExFreePoolWithTag" },
    Export { id: 7, name: "RtlZeroMemory" },
    Export { id: 8, name: "RtlCopyMemory" },
    Export { id: 9, name: "KeQuerySystemTime" },
    // --- NDIS (20–59) ---
    Export { id: 20, name: "NdisMRegisterMiniport" },
    Export { id: 21, name: "NdisOpenConfiguration" },
    Export { id: 22, name: "NdisReadConfiguration" },
    Export { id: 23, name: "NdisCloseConfiguration" },
    Export { id: 24, name: "NdisAllocateMemoryWithTag" },
    Export { id: 25, name: "NdisFreeMemory" },
    Export { id: 26, name: "NdisAllocateSpinLock" },
    Export { id: 27, name: "NdisFreeSpinLock" },
    Export { id: 28, name: "NdisAcquireSpinLock" },
    Export { id: 29, name: "NdisReleaseSpinLock" },
    Export { id: 30, name: "NdisDprAcquireSpinLock" },
    Export { id: 31, name: "NdisDprReleaseSpinLock" },
    Export { id: 32, name: "NdisMRegisterInterrupt" },
    Export { id: 33, name: "NdisMDeregisterInterrupt" },
    Export { id: 34, name: "NdisMInitializeTimer" },
    Export { id: 35, name: "NdisMSetTimer" },
    Export { id: 36, name: "NdisMCancelTimer" },
    Export { id: 37, name: "NdisMSetAttributesEx" },
    Export { id: 38, name: "NdisMMapIoSpace" },
    Export { id: 39, name: "NdisMRegisterIoPortRange" },
    Export { id: 40, name: "NdisAllocatePacketPool" },
    Export { id: 41, name: "NdisFreePacketPool" },
    Export { id: 42, name: "NdisAllocatePacket" },
    Export { id: 43, name: "NdisFreePacket" },
    Export { id: 44, name: "NdisAllocateBufferPool" },
    Export { id: 45, name: "NdisFreeBufferPool" },
    Export { id: 46, name: "NdisAllocateBuffer" },
    Export { id: 47, name: "NdisFreeBuffer" },
    Export { id: 48, name: "NdisMIndicateReceivePacket" },
    Export { id: 49, name: "NdisMSendComplete" },
    Export { id: 50, name: "NdisMIndicateStatus" },
    Export { id: 51, name: "NdisReadPciSlotInformation" },
    Export { id: 52, name: "NdisMSleep" },
    Export { id: 53, name: "NdisReadNetworkAddress" },
    // --- WDM / port-class audio (60–79) ---
    Export { id: 60, name: "PcRegisterAdapter" },
    Export { id: 61, name: "PcNewInterruptSync" },
    Export { id: 62, name: "PcRegisterSubdevice" },
    Export { id: 63, name: "PcNewDmaChannel" },
    Export { id: 64, name: "PcUnregisterSubdevice" },
    Export { id: 65, name: "PcFreeDmaChannel" },
    Export { id: 66, name: "PcDisconnectInterrupt" },
    // --- WDM PnP / power (67–69) ---
    Export { id: 67, name: "IoRegisterPlugPlayNotification" },
    Export { id: 68, name: "IoGetDevicePowerState" },
    Export { id: 69, name: "IoIsDeviceRemoved" },
];

/// Returns the export name for an id, if known.
pub fn export_name(id: u16) -> Option<&'static str> {
    EXPORTS.iter().find(|e| e.id == id).map(|e| e.name)
}

/// Returns the export id for a name, if known.
pub fn export_id(name: &str) -> Option<u16> {
    EXPORTS.iter().find(|e| e.name == name).map(|e| e.id)
}

/// Builds the assembler export map.
pub fn export_map() -> ExportMap {
    EXPORTS.iter().map(|e| (e.name.to_string(), e.id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for e in EXPORTS {
            assert!(seen.insert(e.id), "duplicate export id {}", e.id);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for e in EXPORTS {
            assert!(seen.insert(e.name), "duplicate export name {}", e.name);
        }
    }

    #[test]
    fn lookup_roundtrips() {
        assert_eq!(export_id("NdisMRegisterMiniport"), Some(20));
        assert_eq!(export_name(20), Some("NdisMRegisterMiniport"));
        assert_eq!(export_id("NotAnApi"), None);
        assert_eq!(export_name(999), None);
    }

    #[test]
    fn export_map_feeds_assembler() {
        let m = export_map();
        assert_eq!(m.len(), EXPORTS.len());
        assert_eq!(m["KeBugCheckEx"], 0);
    }
}
