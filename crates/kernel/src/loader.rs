//! Driver loading, fake PnP device descriptors, and entry-point invocation.
//!
//! §4.2 of the paper: "DDT provides a PCI descriptor for a fake device to
//! trick the OS into loading the driver to be tested. The fake device is an
//! empty shell consisting of a descriptor containing the vendor and device
//! IDs, as well as resource information." [`DeviceDescriptor`] is that
//! shell; the kernel exposes it through `NdisReadPciSlotInformation` and
//! uses its resource fields when assigning the MMIO window and interrupt
//! line.

use ddt_isa::image::DxeImage;
use ddt_isa::{Reg, RETURN_TRAP};
use serde::{Deserialize, Serialize};

/// The fake PCI device descriptor (PCI config space analog).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceDescriptor {
    /// PCI vendor id.
    pub vendor_id: u16,
    /// PCI device id.
    pub device_id: u16,
    /// Hardware revision (drivers branch on this; DDT's annotation makes it
    /// symbolic, §4.1.4).
    pub revision: u8,
    /// Size of the MMIO register window (BAR0).
    pub mmio_len: u32,
    /// Number of I/O ports (BAR1), if any.
    pub io_len: u32,
    /// Interrupt line assigned by the (fake) bus.
    pub irq_line: u8,
}

impl Default for DeviceDescriptor {
    fn default() -> Self {
        DeviceDescriptor {
            vendor_id: 0x10ec, // Realtek, as good a default as any.
            device_id: 0x8029,
            revision: 0,
            mmio_len: 0x100,
            io_len: 0x20,
            irq_line: 9,
        }
    }
}

impl DeviceDescriptor {
    /// Serializes the descriptor as PCI-config-space-style bytes (the layout
    /// `NdisReadPciSlotInformation` reads).
    pub fn config_bytes(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[0..2].copy_from_slice(&self.vendor_id.to_le_bytes());
        b[2..4].copy_from_slice(&self.device_id.to_le_bytes());
        b[4] = self.revision;
        b[5] = self.irq_line;
        b[8..12].copy_from_slice(&self.mmio_len.to_le_bytes());
        b[12..16].copy_from_slice(&self.io_len.to_le_bytes());
        b
    }
}

/// Stack placement for driver execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackLayout {
    /// Lowest mapped stack address.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
}

impl Default for StackLayout {
    fn default() -> Self {
        StackLayout { base: 0x7000_0000, size: 0x10_0000 }
    }
}

impl StackLayout {
    /// Initial stack pointer (top of stack).
    pub fn initial_sp(&self) -> u32 {
        self.base + self.size
    }
}

/// A prepared invocation of a driver entry point: which registers to set
/// and where execution starts. The executor (symbolic or concrete) applies
/// it to its machine state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryInvocation {
    /// Entry point name (for traces and coverage plateaus, §5.2).
    pub name: String,
    /// Address to start executing at.
    pub addr: u32,
    /// Values for `r0`–`r3`.
    pub args: [u32; 4],
    /// Stack pointer value.
    pub sp: u32,
    /// Link register: the magic return trap.
    pub lr: u32,
}

impl EntryInvocation {
    /// Builds an invocation with the default stack.
    pub fn new(name: impl Into<String>, addr: u32, args: [u32; 4]) -> EntryInvocation {
        EntryInvocation {
            name: name.into(),
            addr,
            args,
            sp: StackLayout::default().initial_sp(),
            lr: RETURN_TRAP,
        }
    }

    /// The register assignments as `(reg, value)` pairs.
    pub fn reg_values(&self) -> Vec<(Reg, u32)> {
        vec![
            (Reg(0), self.args[0]),
            (Reg(1), self.args[1]),
            (Reg(2), self.args[2]),
            (Reg(3), self.args[3]),
            (Reg::SP, self.sp),
            (Reg::LR, self.lr),
        ]
    }
}

/// Where a driver image plus its stack must be mapped; both executors
/// (symbolic and concrete) consume this to set up memory.
#[derive(Clone, Debug)]
pub struct LoadPlan {
    /// The image (mapped at `image.load_base`).
    pub image: DxeImage,
    /// Stack region.
    pub stack: StackLayout,
}

impl LoadPlan {
    /// Plans loading `image` with the default stack.
    pub fn new(image: DxeImage) -> LoadPlan {
        LoadPlan { image, stack: StackLayout::default() }
    }

    /// Regions to map: (start, len) pairs.
    pub fn regions(&self) -> Vec<(u32, u32)> {
        vec![
            (self.image.load_base, self.image.image_end() - self.image.load_base),
            (self.stack.base, self.stack.size),
        ]
    }

    /// The DriverEntry invocation (no arguments in our model; real NDIS
    /// passes DriverObject/RegistryPath, which our drivers do not consume).
    pub fn driver_entry(&self) -> EntryInvocation {
        EntryInvocation::new("DriverEntry", self.image.entry, [0; 4])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_bytes_layout() {
        let d = DeviceDescriptor {
            vendor_id: 0x8086,
            device_id: 0x100e,
            revision: 3,
            mmio_len: 0x200,
            io_len: 0x40,
            irq_line: 11,
        };
        let b = d.config_bytes();
        assert_eq!(u16::from_le_bytes([b[0], b[1]]), 0x8086);
        assert_eq!(u16::from_le_bytes([b[2], b[3]]), 0x100e);
        assert_eq!(b[4], 3);
        assert_eq!(b[5], 11);
        assert_eq!(u32::from_le_bytes([b[8], b[9], b[10], b[11]]), 0x200);
    }

    #[test]
    fn invocation_registers() {
        let inv = EntryInvocation::new("Send", 0x40_0100, [1, 2, 3, 4]);
        let regs = inv.reg_values();
        assert_eq!(regs[0], (Reg(0), 1));
        assert_eq!(regs[4].0, Reg::SP);
        assert_eq!(regs[5], (Reg::LR, RETURN_TRAP));
    }

    #[test]
    fn load_plan_regions_cover_image_and_stack() {
        let img = DxeImage {
            name: "t".into(),
            load_base: 0x40_0000,
            entry: 0x40_0000,
            text: vec![0; 16],
            data: vec![],
            bss_size: 32,
            imports: vec![],
        };
        let plan = LoadPlan::new(img);
        let rs = plan.regions();
        assert_eq!(rs[0], (0x40_0000, 16 + 32));
        assert_eq!(rs[1].1, 0x10_0000);
        assert_eq!(plan.driver_entry().name, "DriverEntry");
    }
}
