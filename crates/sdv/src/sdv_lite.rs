//! SDV-lite: a static driver verifier in the SLAM tradition.
//!
//! An abstract interpreter over the driver binary's per-function CFGs with
//! hand-written kernel API models. Like SDV, it encodes API usage rules:
//! lock acquire/release pairing, IRQL discipline, double free and
//! use-after-free of pool pointers, configuration-handle pairing, timer
//! initialization order, and unchecked allocation results.
//!
//! Design limitations — shared with the real tool and responsible for the
//! §5.1 comparison outcome:
//!
//! - **Path-insensitive**: abstract states merge (join) at CFG joins, so a
//!   lock acquired and released under the *same* condition on correlated
//!   branches degrades to "maybe held", producing a spurious
//!   release-of-unheld-lock report (SDV's one false positive).
//! - **Named objects only**: a lock reached through a pointer stored in
//!   memory (an alias) is invisible, so alias-routed deadlocks and extra
//!   releases are missed.
//! - **No ordering rule**: non-LIFO lock release is not among the encoded
//!   properties.
//!
//! The `refinement_rounds` knob re-runs the fixpoint with progressively
//! merged summaries, emulating the iterative abstraction-refinement cost
//! profile of CEGAR-style tools (SLAM's dominant cost); the verdicts come
//! from the final round.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ddt_drivers::samples::BugKind;
use ddt_isa::analysis::{analyze, CodeAnalysis};
use ddt_isa::image::DxeImage;
use ddt_isa::{trap_export_id, Insn, INSN_SIZE};
use ddt_kernel::export_id;

/// Configuration for the analyzer.
#[derive(Clone, Copy, Debug)]
pub struct SdvConfig {
    /// Number of abstraction-refinement rounds (cost emulation; verdicts
    /// are taken from the last round).
    pub refinement_rounds: u32,
}

impl Default for SdvConfig {
    fn default() -> Self {
        SdvConfig { refinement_rounds: 6 }
    }
}

/// One rule violation reported by the analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticFinding {
    /// The defect class (shared vocabulary with the sample sets).
    pub kind: BugKind,
    /// Instruction the finding is attached to.
    pub pc: u32,
    /// Human-readable explanation.
    pub detail: String,
}

/// Three-valued abstract facts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tri {
    No,
    Yes,
    Top,
}

impl Tri {
    fn join(a: Tri, b: Tri) -> Tri {
        if a == b {
            a
        } else {
            Tri::Top
        }
    }
}

/// Abstract register values: constants (from `lea`/`mov imm`) and values
/// loaded from statically-named globals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AbsVal {
    Const(u32),
    LoadedFrom(u32),
    Unknown,
}

impl AbsVal {
    fn join(a: AbsVal, b: AbsVal) -> AbsVal {
        if a == b {
            a
        } else {
            AbsVal::Unknown
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AbsIrql {
    Passive,
    Dispatch,
    Top,
}

impl AbsIrql {
    fn join(a: AbsIrql, b: AbsIrql) -> AbsIrql {
        if a == b {
            a
        } else {
            AbsIrql::Top
        }
    }
}

/// The abstract state at a program point.
#[derive(Clone, Debug, PartialEq, Eq)]
struct AbsState {
    regs: [AbsVal; 16],
    /// Lock address → held?
    locks: BTreeMap<u32, Tri>,
    irql: AbsIrql,
    /// Configuration handle open?
    config: Tri,
    /// Global cell address → "the pool pointer stored here was freed".
    freed: BTreeMap<u32, Tri>,
    /// Timer descriptor address → initialized?
    timers: BTreeMap<u32, Tri>,
    /// An allocation status is live in r0 and has not been branched on.
    unchecked_alloc: Option<u32>,
}

impl AbsState {
    fn start(irql: AbsIrql, timers_start: Tri) -> AbsState {
        AbsState {
            regs: [AbsVal::Unknown; 16],
            locks: BTreeMap::new(),
            irql,
            config: Tri::No,
            freed: BTreeMap::new(),
            timers: BTreeMap::new(),
            unchecked_alloc: None,
        }
        .with_timer_default(timers_start)
    }

    fn with_timer_default(mut self, _d: Tri) -> AbsState {
        // Timer default is handled lazily via `timer_state`; nothing to do.
        self.timers.clear();
        self
    }

    #[allow(clippy::needless_range_loop)]
    fn join(&self, other: &AbsState) -> AbsState {
        let mut regs = [AbsVal::Unknown; 16];
        for i in 0..16 {
            regs[i] = AbsVal::join(self.regs[i], other.regs[i]);
        }
        let mut locks = self.locks.clone();
        for (k, v) in &other.locks {
            let merged = Tri::join(*locks.get(k).unwrap_or(&Tri::No), *v);
            locks.insert(*k, merged);
        }
        for (k, v) in &self.locks {
            if !other.locks.contains_key(k) {
                locks.insert(*k, Tri::join(*v, Tri::No));
            }
        }
        let mut freed = self.freed.clone();
        for (k, v) in &other.freed {
            let merged = Tri::join(*freed.get(k).unwrap_or(&Tri::No), *v);
            freed.insert(*k, merged);
        }
        let mut timers = self.timers.clone();
        for (k, v) in &other.timers {
            let merged = Tri::join(*timers.get(k).unwrap_or(&Tri::No), *v);
            timers.insert(*k, merged);
        }
        AbsState {
            regs,
            locks,
            irql: AbsIrql::join(self.irql, other.irql),
            config: Tri::join(self.config, other.config),
            freed,
            timers,
            unchecked_alloc: if self.unchecked_alloc == other.unchecked_alloc {
                self.unchecked_alloc
            } else {
                None
            },
        }
    }

    fn lock_state(&self, lock: u32) -> Tri {
        *self.locks.get(&lock).unwrap_or(&Tri::No)
    }

    fn any_lock_held(&self) -> bool {
        self.locks.values().any(|&t| t == Tri::Yes)
    }
}

/// The role-specific start states SDV's API model prescribes for driver
/// entry points found in the registration table.
fn entry_roles(image: &DxeImage, analysis: &CodeAnalysis) -> Vec<(u32, &'static str)> {
    // Locate the registration table: ten consecutive data words, most of
    // which point into the text section (SDV knows the NDIS table layout).
    let names = [
        "Initialize",
        "Send",
        "QueryInformation",
        "SetInformation",
        "Isr",
        "HandleInterrupt",
        "Reset",
        "Halt",
        "CheckForHang",
        "Aux",
    ];
    let words: Vec<u32> = image
        .data
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    let in_text = |a: u32| image.text_range().contains(&a) && (a - image.load_base).is_multiple_of(8);
    for start in 0..words.len().saturating_sub(9) {
        let window = &words[start..start + 10];
        let hits = window.iter().filter(|&&w| in_text(w)).count();
        if hits >= 6 {
            let mut out = vec![(image.entry, "DriverEntry")];
            for (i, &addr) in window.iter().enumerate() {
                if in_text(addr) {
                    out.push((addr, names[i]));
                }
            }
            return out;
        }
    }
    // No table: analyze every discovered function as passive code.
    analysis.functions.iter().map(|&f| (f, "Function")).collect()
}

fn start_state_for(role: &str) -> AbsState {
    match role {
        "Isr" => AbsState::start(AbsIrql::Dispatch, Tri::No),
        "HandleInterrupt" | "Aux" => AbsState::start(AbsIrql::Dispatch, Tri::No),
        _ => AbsState::start(AbsIrql::Passive, Tri::No),
    }
}

/// Runs the analyzer on a driver binary.
pub fn analyze_driver(image: &DxeImage, config: SdvConfig) -> Vec<StaticFinding> {
    let analysis = analyze(image);
    let mut findings: Vec<StaticFinding> = Vec::new();
    for round in 0..config.refinement_rounds.max(1) {
        let last = round + 1 == config.refinement_rounds.max(1);
        let mut round_findings = Vec::new();
        for (entry, role) in entry_roles(image, &analysis) {
            analyze_function(image, entry, role, &mut round_findings);
        }
        if last {
            findings = round_findings;
        }
    }
    findings.sort_by_key(|f| (f.pc, format!("{:?}", f.kind)));
    findings.dedup();
    findings
}

/// Fetches the decoded instruction at `pc`.
fn insn_at(image: &DxeImage, pc: u32) -> Option<Insn> {
    ddt_isa::analysis::insn_at(image, pc)
}

/// Fixpoint dataflow over one function's CFG (calls are summarized: local
/// calls clobber the scratch registers, kernel calls apply the API model).
///
/// Runs in two phases: the fixpoint itself is silent, and the rules only
/// fire on a final re-walk of every block from its *converged* entry
/// state. Reporting during iteration would anchor findings to transient
/// states — a ret block visited early can carry a not-yet-joined state
/// (e.g. configuration-open on one incoming edge only) and a finding
/// issued from it could never be retracted once the join widens to Top.
fn analyze_function(image: &DxeImage, entry: u32, role: &str, findings: &mut Vec<StaticFinding>) {
    let is_initialize = role == "Initialize" || role == "DriverEntry";
    let mut states: BTreeMap<u32, AbsState> = BTreeMap::new();
    states.insert(entry, start_state_for(role));
    let mut work: VecDeque<u32> = VecDeque::from([entry]);
    let mut visited_guard = 0usize;
    while let Some(block_pc) = work.pop_front() {
        visited_guard += 1;
        if visited_guard > 50_000 {
            break; // Fixpoint safety net.
        }
        let mut st = states.get(&block_pc).cloned().expect("queued blocks have states");
        let mut sink = Vec::new();
        let mut seen = BTreeSet::new();
        let successors = walk_block(image, block_pc, &mut st, is_initialize, &mut seen, &mut sink);
        for succ in successors {
            let merged = match states.get(&succ) {
                Some(prev) => prev.join(&st),
                None => st.clone(),
            };
            if states.get(&succ) != Some(&merged) {
                states.insert(succ, merged);
                work.push_back(succ);
            }
        }
    }
    // Reporting pass: one more walk of each block with its converged state.
    // Function exit checks are applied at `Ret` inside `transfer`.
    let mut reported: BTreeSet<(u32, String)> = BTreeSet::new();
    for (&block_pc, entry_st) in &states {
        let mut st = entry_st.clone();
        walk_block(image, block_pc, &mut st, is_initialize, &mut reported, findings);
    }
}

/// Walks the straight-line run from `block_pc` to its terminator, applying
/// `transfer` to each instruction, and returns the successor block starts.
fn walk_block(
    image: &DxeImage,
    block_pc: u32,
    st: &mut AbsState,
    is_initialize: bool,
    reported: &mut BTreeSet<(u32, String)>,
    findings: &mut Vec<StaticFinding>,
) -> Vec<u32> {
    let mut pc = block_pc;
    let mut successors: Vec<u32> = Vec::new();
    while let Some(insn) = insn_at(image, pc) {
        transfer(image, pc, insn, st, is_initialize, reported, findings);
        let next = pc + INSN_SIZE;
        use Insn::*;
        match insn {
            Halt | Ret | Jr { .. } => break,
            Jmp { imm } => {
                if image.text_range().contains(&imm) {
                    successors.push(imm);
                }
                break;
            }
            Call { imm } => {
                // Both kernel and local calls return to the next insn;
                // the callee is summarized, not traversed.
                let _ = imm;
                pc = next;
                continue;
            }
            Callr { .. } => {
                pc = next;
                continue;
            }
            _ if insn.is_cond_branch() => {
                if let Some(t) = insn.static_target() {
                    if image.text_range().contains(&t) {
                        successors.push(t);
                    }
                }
                if image.text_range().contains(&next) {
                    successors.push(next);
                }
                break;
            }
            _ => {
                pc = next;
                continue;
            }
        }
    }
    successors
}

/// The abstract transfer function, including the kernel API model.
fn transfer(
    image: &DxeImage,
    pc: u32,
    insn: Insn,
    st: &mut AbsState,
    is_initialize: bool,
    reported: &mut BTreeSet<(u32, String)>,
    findings: &mut Vec<StaticFinding>,
) {
    use Insn::*;
    let mut report = |kind: BugKind, pc: u32, detail: String| {
        if reported.insert((pc, format!("{kind:?}"))) {
            findings.push(StaticFinding { kind, pc, detail });
        }
    };
    match insn {
        Movi { rd, imm } => st.regs[rd.index()] = AbsVal::Const(imm),
        Mov { rd, rs } => st.regs[rd.index()] = st.regs[rs.index()],
        Addi { rd, rs, imm } => {
            st.regs[rd.index()] = match st.regs[rs.index()] {
                AbsVal::Const(c) => AbsVal::Const(c.wrapping_add(imm)),
                _ => AbsVal::Unknown,
            };
        }
        Ldw { rd, rs, imm } => {
            // Use-after-free: load through a pointer fetched from a global
            // whose pool allocation was freed.
            if let AbsVal::LoadedFrom(g) = st.regs[rs.index()] {
                if st.freed.get(&g) == Some(&Tri::Yes) {
                    report(
                        BugKind::UseAfterFree,
                        pc,
                        format!("read through freed pool pointer from global {g:#x}"),
                    );
                }
            }
            st.regs[rd.index()] = match st.regs[rs.index()] {
                AbsVal::Const(a) => AbsVal::LoadedFrom(a.wrapping_add(imm)),
                _ => AbsVal::Unknown,
            };
        }
        Ldh { rd, .. } | Ldb { rd, .. } | Pop { rd } | In { rd, .. } | Inr { rd, .. } => {
            st.regs[rd.index()] = AbsVal::Unknown;
        }
        Stw { rt, .. } | Sth { rt, .. } | Stb { rt, .. } => {
            // Unchecked allocation result: storing through a pointer loaded
            // from the allocator's out-parameter before any status branch.
            if let Some(out_ptr) = st.unchecked_alloc {
                let base = match insn {
                    Stw { rs, .. } | Sth { rs, .. } | Stb { rs, .. } => st.regs[rs.index()],
                    _ => AbsVal::Unknown,
                };
                if base == AbsVal::LoadedFrom(out_ptr) {
                    report(
                        BugKind::NullDeref,
                        pc,
                        "allocation result dereferenced without checking the status".into(),
                    );
                }
            }
            let _ = rt;
        }
        Add { rd, .. } | Sub { rd, .. } | Mul { rd, .. } | Udiv { rd, .. } | Urem { rd, .. }
        | Sdiv { rd, .. } | And { rd, .. } | Andi { rd, .. } | Or { rd, .. } | Ori { rd, .. }
        | Xor { rd, .. } | Xori { rd, .. } | Not { rd, .. } | Shl { rd, .. }
        | Shli { rd, .. } | Shr { rd, .. } | Shri { rd, .. } | Sar { rd, .. }
        | Sari { rd, .. } => {
            st.regs[rd.index()] = AbsVal::Unknown;
        }
        Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
            // Any conditional branch is (conservatively) a status check.
            st.unchecked_alloc = None;
        }
        Ret => {
            // Exit rules: forgotten locks, unclosed configuration.
            for (lock, t) in &st.locks {
                if *t == Tri::Yes {
                    report(
                        BugKind::ForgottenRelease,
                        pc,
                        format!("function returns with lock {lock:#x} held"),
                    );
                }
            }
            if is_initialize && st.config == Tri::Yes {
                report(
                    BugKind::ConfigLeak,
                    pc,
                    "function can return without NdisCloseConfiguration".into(),
                );
            }
        }
        Call { imm } => {
            if let Some(export) = trap_export_id(imm) {
                kernel_call_model(export, pc, st, is_initialize, &mut report);
            } else if image.text_range().contains(&imm) {
                // Local helper: clobber the scratch registers, keep the
                // callee-saved ones and all rule state (summaries assume
                // balanced callees — a known SDV-style approximation).
                for r in [0usize, 1, 2, 3, 12] {
                    st.regs[r] = AbsVal::Unknown;
                }
            }
        }
        Callr { .. } => {
            for r in [0usize, 1, 2, 3, 12] {
                st.regs[r] = AbsVal::Unknown;
            }
        }
        _ => {}
    }
}

/// The hand-written kernel API model (SDV's usage rules).
fn kernel_call_model(
    export: u16,
    pc: u32,
    st: &mut AbsState,
    is_initialize: bool,
    report: &mut impl FnMut(BugKind, u32, String),
) {
    let arg = |st: &AbsState, i: usize| st.regs[i];
    let e = |name: &str| export_id(name).unwrap_or(u16::MAX);

    if export == e("NdisAllocateSpinLock") {
        if let AbsVal::Const(l) = arg(st, 0) {
            st.locks.insert(l, Tri::No);
        }
    } else if export == e("NdisAcquireSpinLock") || export == e("NdisDprAcquireSpinLock") {
        if let AbsVal::Const(l) = arg(st, 0) {
            if st.lock_state(l) == Tri::Yes {
                report(
                    BugKind::Deadlock,
                    pc,
                    format!("lock {l:#x} acquired while already held"),
                );
            }
            st.locks.insert(l, Tri::Yes);
        }
        if export == e("NdisAcquireSpinLock") {
            st.irql = AbsIrql::Dispatch;
        }
    } else if export == e("NdisReleaseSpinLock") || export == e("NdisDprReleaseSpinLock") {
        if let AbsVal::Const(l) = arg(st, 0) {
            match st.lock_state(l) {
                Tri::No => report(
                    BugKind::ExtraRelease,
                    pc,
                    format!("lock {l:#x} released but never acquired"),
                ),
                Tri::Top => report(
                    BugKind::ExtraRelease,
                    pc,
                    format!("lock {l:#x} may be released while not held"),
                ),
                Tri::Yes => {}
            }
            st.locks.insert(l, Tri::No);
        }
        // Releases through aliases (non-constant operands) are invisible.
    } else if export == e("NdisMSleep") || export == e("KeStallExecutionProcessor") {
        if export == e("NdisMSleep") && (st.irql == AbsIrql::Dispatch || st.any_lock_held()) {
            report(
                BugKind::WrongIrqlCall,
                pc,
                "blocking call at DISPATCH_LEVEL / with a spinlock held".into(),
            );
        }
    } else if export == e("ExAllocatePoolWithTag") {
        if arg(st, 0) == AbsVal::Const(1) && (st.irql == AbsIrql::Dispatch || st.any_lock_held())
        {
            report(
                BugKind::WrongIrqlCall,
                pc,
                "paged pool allocation at DISPATCH_LEVEL".into(),
            );
        }
        st.regs[0] = AbsVal::Unknown;
    } else if export == e("NdisAllocateMemoryWithTag") {
        if let AbsVal::Const(out) = arg(st, 0) {
            st.unchecked_alloc = Some(out);
        }
        st.regs[0] = AbsVal::Unknown;
    } else if export == e("NdisFreeMemory") || export == e("ExFreePoolWithTag") {
        if let AbsVal::LoadedFrom(g) = arg(st, 0) {
            if st.freed.get(&g) == Some(&Tri::Yes) {
                report(
                    BugKind::DoubleFree,
                    pc,
                    format!("pool pointer from global {g:#x} freed twice"),
                );
            }
            st.freed.insert(g, Tri::Yes);
        }
        st.regs[0] = AbsVal::Unknown;
    } else if export == e("NdisOpenConfiguration") {
        st.config = Tri::Yes;
        st.regs[0] = AbsVal::Unknown;
    } else if export == e("NdisCloseConfiguration") {
        st.config = Tri::No;
        st.regs[0] = AbsVal::Unknown;
    } else if export == e("NdisMInitializeTimer") {
        if let AbsVal::Const(t) = arg(st, 0) {
            st.timers.insert(t, Tri::Yes);
        }
        st.regs[0] = AbsVal::Unknown;
    } else if export == e("NdisMSetTimer") {
        if is_initialize {
            if let AbsVal::Const(t) = arg(st, 0) {
                if st.timers.get(&t) != Some(&Tri::Yes) {
                    report(
                        BugKind::UninitTimer,
                        pc,
                        format!("timer {t:#x} armed before NdisMInitializeTimer"),
                    );
                }
            }
        }
        st.regs[0] = AbsVal::Unknown;
    } else {
        // Any other kernel call: only the return register is clobbered.
        st.regs[0] = AbsVal::Unknown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_drivers::samples::{base_sample, sdv_sample_set, synthetic_set};

    fn kinds_found(src_image: &DxeImage) -> Vec<BugKind> {
        analyze_driver(src_image, SdvConfig::default())
            .into_iter()
            .map(|f| f.kind)
            .collect()
    }

    #[test]
    fn base_sample_is_clean() {
        let img = base_sample().build().image;
        let found = kinds_found(&img);
        assert!(found.is_empty(), "clean template flagged: {found:?}");
    }

    #[test]
    fn finds_all_eight_sample_bugs() {
        for s in sdv_sample_set() {
            let img = s.build().image;
            let found = kinds_found(&img);
            let want = s.bug_kind.unwrap();
            assert!(
                found.contains(&want),
                "{}: wanted {want:?}, found {found:?}",
                s.name
            );
        }
    }

    #[test]
    fn synthetic_outcome_matches_the_paper() {
        // §5.1: "SDV did not find the first 3 bugs, it found the last 2,
        // and produced 1 false positive."
        let mut found_count = 0;
        let mut false_positives = 0;
        for s in synthetic_set() {
            let img = s.build().image;
            let found = kinds_found(&img);
            let want = s.bug_kind.unwrap();
            if found.contains(&want) {
                found_count += 1;
            }
            false_positives += found.iter().filter(|&&k| k != want).count();
        }
        assert_eq!(found_count, 2, "the last two synthetic bugs are found");
        assert_eq!(false_positives, 1, "exactly one spurious report");
    }

    #[test]
    fn which_synthetics_are_found() {
        let results: Vec<(String, bool)> = synthetic_set()
            .iter()
            .map(|s| {
                let img = s.build().image;
                let found = kinds_found(&img);
                (s.name.clone(), found.contains(&s.bug_kind.unwrap()))
            })
            .collect();
        let found: Vec<&str> =
            results.iter().filter(|(_, f)| *f).map(|(n, _)| n.as_str()).collect();
        assert_eq!(found, vec!["syn_forgotten", "syn_wrong_irql"], "the paper's 'last 2'");
    }
}

#[cfg(test)]
mod rule_tests {
    use super::*;
    use ddt_drivers::samples::infinite_loop_sample;

    fn findings_for(s: &ddt_drivers::samples::SampleDriver) -> Vec<StaticFinding> {
        analyze_driver(&s.build().image, SdvConfig::default())
    }

    #[test]
    fn aliased_locks_are_invisible_by_design() {
        // The deadlock and extra-release variants route the lock through
        // memory; the analyzer's named-lock domain must not see them (this
        // is the documented SLAM-style blind spot, not an accident).
        for name in ["syn_deadlock", "syn_extra_release"] {
            let s = ddt_drivers::samples::synthetic_set()
                .into_iter()
                .find(|s| s.name == name)
                .unwrap();
            let found = findings_for(&s);
            assert!(
                !found.iter().any(|f| f.kind == s.bug_kind.unwrap()),
                "{name} unexpectedly found: {found:?}"
            );
        }
    }

    #[test]
    fn the_false_positive_is_a_may_release() {
        let s = ddt_drivers::samples::synthetic_set()
            .into_iter()
            .find(|s| s.name == "syn_out_of_order")
            .unwrap();
        let found = findings_for(&s);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, BugKind::ExtraRelease);
        assert!(found[0].detail.contains("may be released"), "{:?}", found[0]);
    }

    #[test]
    fn double_free_and_uaf_rules_fire_at_the_right_pcs() {
        let set = ddt_drivers::samples::sdv_sample_set();
        let df = set.iter().find(|s| s.name == "smp_double_free").unwrap();
        let found = findings_for(df);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, BugKind::DoubleFree);
        let uaf = set.iter().find(|s| s.name == "smp_use_after_free").unwrap();
        let found = findings_for(uaf);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, BugKind::UseAfterFree);
    }

    #[test]
    fn bounded_driver_analysis_terminates_on_loops() {
        // The infinite-loop sample must not hang the fixpoint.
        let found = findings_for(&infinite_loop_sample());
        // The static analyzer has no termination rule; it reports nothing.
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn refinement_rounds_do_not_change_verdicts() {
        let s = ddt_drivers::samples::sdv_sample_set()
            .into_iter()
            .find(|s| s.name == "smp_release_unheld")
            .unwrap();
        let img = s.build().image;
        let one = analyze_driver(&img, SdvConfig { refinement_rounds: 1 });
        let six = analyze_driver(&img, SdvConfig { refinement_rounds: 6 });
        assert_eq!(one, six, "rounds are a cost model, not a precision knob");
    }

    #[test]
    fn real_drivers_static_scan_smoke() {
        // SDV-lite on the six evaluation drivers: it legitimately finds the
        // statically-visible subset (e.g. rtl8029's unclosed configuration
        // path) and must not report the clean driver.
        let clean = ddt_drivers::clean_driver().build().image;
        assert!(analyze_driver(&clean, SdvConfig::default()).is_empty());
        let rtl = ddt_drivers::driver_by_name("rtl8029").unwrap().build().image;
        let findings = analyze_driver(&rtl, SdvConfig::default());
        assert!(
            findings.iter().any(|f| f.kind == BugKind::ConfigLeak),
            "the config-leak path is statically visible: {findings:?}"
        );
    }
}
