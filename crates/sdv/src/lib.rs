//! Baseline tools for the §5.1 comparisons.
//!
//! Two baselines from the paper's evaluation:
//!
//! - [`sdv_lite`]: a static analyzer in the spirit of Microsoft SDV/SLAM —
//!   an abstract interpreter over the driver binary's control-flow graph
//!   with hand-written kernel API models, checking lock/IRQL/resource usage
//!   rules. It is *path-insensitive* (abstract states merge at join points)
//!   and tracks only statically-named objects (lock addresses produced by
//!   `lea`), which is what makes it miss alias-heavy defects and report the
//!   one false positive of §5.1.
//! - [`verifier`]: a Driver-Verifier-style concrete dynamic checker: the
//!   driver runs its workload concretely against well-behaved scripted
//!   hardware, with the kernel's built-in usage checks armed. The paper's
//!   result — it finds none of the 14 Table 2 bugs — reproduces because
//!   every seeded bug needs either special hardware values, an interrupt at
//!   a precise boundary, an allocation failure, or a hostile registry
//!   value, none of which occur in a friendly concrete run.

pub mod sdv_lite;
pub mod verifier;

pub use sdv_lite::{analyze_driver, SdvConfig, StaticFinding};
pub use verifier::{friendly_hardware, run_verifier, VerifierOutcome};
