//! The Driver-Verifier-style concrete baseline.
//!
//! §5.1: "We tried to find these bugs with the Microsoft Driver Verifier
//! running the driver concretely, but did not find any of them. Furthermore,
//! since Driver Verifier crashes by default on the first bug found, looking
//! for the next bug would typically require first fixing the found bug."
//!
//! This module runs the same workload as DDT but concretely, against
//! *well-behaved* hardware (a per-driver script of the register values real
//! hardware would produce), with all kernel usage checks armed. The
//! driver's buggy paths are unreachable without symbolic hardware, symbolic
//! interrupts, forced allocation failures, or hostile registry values — so
//! the verifier comes back clean.

use ddt_core::replay::{ConcreteOutcome, ConcreteRunner};
use ddt_core::DriverUnderTest;
use ddt_kernel::KernelEvent;

/// Outcome of one concrete verifier run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifierOutcome {
    /// How the run ended.
    pub outcome: ConcreteOutcome,
    /// Bugs the verifier observed (crash messages, misuse events, leaks).
    /// The run stops at the first crash — Driver Verifier behavior.
    pub bugs_found: Vec<String>,
    /// Instructions executed.
    pub insns: u64,
}

/// The hardware read values a healthy device would produce for each driver
/// (what the physical card would answer during the standard workload).
pub fn friendly_hardware(driver: &str) -> Vec<u32> {
    match driver {
        // EEPROM checksum words (sum = 0xBABA), two self-test SCB reads,
        // two MAC words; later reads return zero (quiescent device).
        "pro100" => vec![0xBABA, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x1122, 0x3344],
        // The codec-ready bit must be set on the first global-status read.
        "ac97" => vec![0x100],
        // Link up on the status reads (bit 1).
        "pro1000" => vec![0x0002, 0x0002, 0x0002, 0x0002, 0x0002, 0x0002],
        // Everything else is happy with quiescent (zero) registers.
        _ => vec![],
    }
}

/// Runs the concrete Driver-Verifier baseline on a driver.
pub fn run_verifier(dut: &DriverUnderTest) -> VerifierOutcome {
    let mut runner = ConcreteRunner::new(dut, friendly_hardware(&dut.image.name));
    let outcome = runner.run();
    let mut bugs_found = Vec::new();
    match &outcome {
        ConcreteOutcome::Crashed(c) => {
            bugs_found.push(format!("kernel crash: {}", c.message));
        }
        ConcreteOutcome::Faulted { fault, .. } => {
            bugs_found.push(format!("driver fault: {fault:?}"));
        }
        ConcreteOutcome::InitFailureLeak { kinds } => {
            bugs_found.push(format!("resources leaked on failed init: {kinds:?}"));
        }
        ConcreteOutcome::Hung => bugs_found.push("driver hang".into()),
        ConcreteOutcome::Completed => {}
    }
    // Driver-Verifier-style event checks (API misuse that does not crash
    // the mini-kernel outright).
    for ev in &runner.kernel.state.events {
        if let KernelEvent::SpinRelease { variant_mismatch: true, lock, .. } = ev {
            bugs_found.push(format!("wrong spinlock release variant on {lock:#x}"));
        }
    }
    VerifierOutcome { outcome, bugs_found, insns: runner.vm.insns_retired }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddt_core::DriverUnderTest;

    #[test]
    fn verifier_finds_nothing_in_the_six_drivers() {
        // The headline §5.1 baseline: concrete testing with well-behaved
        // hardware finds none of the 14 bugs.
        for spec in ddt_drivers::drivers() {
            let dut = DriverUnderTest::from_spec(&spec);
            let v = run_verifier(&dut);
            assert_eq!(
                v.outcome,
                ConcreteOutcome::Completed,
                "driver {} did not complete cleanly: {:?}",
                spec.name,
                v.outcome
            );
            assert!(
                v.bugs_found.is_empty(),
                "verifier unexpectedly found bugs in {}: {:?}",
                spec.name,
                v.bugs_found
            );
        }
    }

    #[test]
    fn verifier_passes_the_clean_driver() {
        let dut = DriverUnderTest::from_spec(&ddt_drivers::clean_driver());
        let v = run_verifier(&dut);
        assert_eq!(v.outcome, ConcreteOutcome::Completed);
        assert!(v.bugs_found.is_empty());
        assert!(v.insns > 100, "the workload actually ran");
    }

    #[test]
    fn verifier_catches_a_concrete_crash() {
        // Sanity: a bug reachable on the concrete path IS caught (the
        // verifier is a real checker, just coverage-starved).
        let sample = ddt_drivers::samples::sdv_sample_set()
            .into_iter()
            .find(|s| s.name == "smp_uninit_timer")
            .unwrap();
        let built = sample.build();
        let dut = DriverUnderTest {
            image: built.image,
            class: ddt_drivers::DriverClass::Net,
            registry: vec![],
            descriptor: Default::default(),
            workload: ddt_drivers::workload::workload_for(ddt_drivers::DriverClass::Net),
        };
        let v = run_verifier(&dut);
        assert!(!v.bugs_found.is_empty(), "uninit-timer crash is concrete");
    }
}
