//! DDT vs SDV-lite on the sample + synthetic sets.
use ddt_core::{Ddt, DriverUnderTest};
use ddt_drivers::{samples, DriverClass};

fn dut_for(s: &samples::SampleDriver) -> DriverUnderTest {
    let built = s.build();
    DriverUnderTest {
        image: built.image,
        class: DriverClass::Net,
        registry: vec![],
        descriptor: Default::default(),
        workload: ddt_drivers::workload::workload_for(DriverClass::Net),
    }
}

fn main() {
    let ddt = Ddt::default();
    for (label, set) in [("samples", samples::sdv_sample_set()), ("synthetic", samples::synthetic_set())] {
        println!("== {label} ==");
        for s in &set {
            let t0 = std::time::Instant::now();
            let report = ddt.test(&dut_for(s));
            println!("{:22} want={:?} got {} bug(s) in {:?}", s.name, s.bug_kind.unwrap(), report.bugs.len(), t0.elapsed());
            for b in &report.bugs { println!("     [{}] {}", b.class, b.description); }
        }
    }
}
