//! Versioned binary codec for trace event logs.
//!
//! The on-disk event log (`trace.bin`) is a compact binary encoding rather
//! than JSON: a bug trace on the bundled drivers holds tens of thousands of
//! `Exec` events, and the paper's workflow ships these artifacts around
//! (§3.5 "development teams can collect bug traces ... and use them to
//! reproduce"). Layout:
//!
//! ```text
//! magic "DDTT" | version u32-LE
//! expression pool:  varint count, then one node per entry; child nodes are
//!                   varint back-references into the pool (strictly smaller
//!                   indices), so the pool is a topologically ordered DAG and
//!                   structurally shared subtrees are stored once
//! event log:        varint count, then tag byte + payload per event;
//!                   expressions are varint pool references
//! ```
//!
//! All integers are LEB128 varints except the version field. Decoding
//! rebuilds expressions with [`Expr::from_node`] — the raw constructor —
//! because re-running the smart constructors could simplify a node and
//! silently change the stored tree; the codec must be lossless.

use std::collections::HashMap;

use ddt_expr::{BinOp, CmpOp, Expr, ExprNode, SymId};
use ddt_symvm::{SymOrigin, TraceEvent};

/// File magic for trace event logs.
pub const TRACE_MAGIC: [u8; 4] = *b"DDTT";

/// Current format version. Bump on any layout change; the decoder rejects
/// versions it does not know.
pub const TRACE_VERSION: u32 = 1;

/// A decode failure: offset into the input plus a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------- writing

struct Writer {
    buf: Vec<u8>,
    pool: Vec<u8>,
    pool_len: u32,
    interned: HashMap<Expr, u32>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new(), pool: Vec::new(), pool_len: 0, interned: HashMap::new() }
    }

    fn varint(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    fn str(out: &mut Vec<u8>, s: &str) {
        Self::varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
        match v {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                Self::varint(out, v);
            }
        }
    }

    /// Interns `e` (and, recursively, its children) into the pool and
    /// returns its index. Shared subtrees hit the memo and are stored once.
    fn intern(&mut self, e: &Expr) -> u32 {
        if let Some(&idx) = self.interned.get(e) {
            return idx;
        }
        let node = e.node();
        // Children first: pool references always point backwards.
        let entry = match node {
            ExprNode::Const { bits, width } => {
                let mut b = vec![0u8];
                Self::varint(&mut b, *bits);
                Self::varint(&mut b, *width as u64);
                b
            }
            ExprNode::Sym { id, width } => {
                let mut b = vec![1u8];
                Self::varint(&mut b, id.0 as u64);
                Self::varint(&mut b, *width as u64);
                b
            }
            ExprNode::Not(a) => {
                let a = self.intern(a);
                let mut b = vec![2u8];
                Self::varint(&mut b, a as u64);
                b
            }
            ExprNode::Neg(a) => {
                let a = self.intern(a);
                let mut b = vec![3u8];
                Self::varint(&mut b, a as u64);
                b
            }
            ExprNode::Bin(op, a, x) => {
                let (a, x) = (self.intern(a), self.intern(x));
                let mut b = vec![4u8, bin_op_tag(*op)];
                Self::varint(&mut b, a as u64);
                Self::varint(&mut b, x as u64);
                b
            }
            ExprNode::Cmp(op, a, x) => {
                let (a, x) = (self.intern(a), self.intern(x));
                let mut b = vec![5u8, cmp_op_tag(*op)];
                Self::varint(&mut b, a as u64);
                Self::varint(&mut b, x as u64);
                b
            }
            ExprNode::ZExt { e, width } => {
                let e = self.intern(e);
                let mut b = vec![6u8];
                Self::varint(&mut b, e as u64);
                Self::varint(&mut b, *width as u64);
                b
            }
            ExprNode::SExt { e, width } => {
                let e = self.intern(e);
                let mut b = vec![7u8];
                Self::varint(&mut b, e as u64);
                Self::varint(&mut b, *width as u64);
                b
            }
            ExprNode::Extract { e, hi, lo } => {
                let e = self.intern(e);
                let mut b = vec![8u8];
                Self::varint(&mut b, e as u64);
                Self::varint(&mut b, *hi as u64);
                Self::varint(&mut b, *lo as u64);
                b
            }
            ExprNode::Concat { hi, lo } => {
                let (hi, lo) = (self.intern(hi), self.intern(lo));
                let mut b = vec![9u8];
                Self::varint(&mut b, hi as u64);
                Self::varint(&mut b, lo as u64);
                b
            }
            ExprNode::Ite { cond, then, els } => {
                let (c, t, e2) = (self.intern(cond), self.intern(then), self.intern(els));
                let mut b = vec![10u8];
                Self::varint(&mut b, c as u64);
                Self::varint(&mut b, t as u64);
                Self::varint(&mut b, e2 as u64);
                b
            }
        };
        self.pool.extend_from_slice(&entry);
        let idx = self.pool_len;
        self.pool_len += 1;
        self.interned.insert(e.clone(), idx);
        idx
    }

    fn origin(out: &mut Vec<u8>, o: &SymOrigin) {
        match o {
            SymOrigin::HardwareRead { addr } => {
                out.push(0);
                Self::varint(out, *addr as u64);
            }
            SymOrigin::PortRead { port } => {
                out.push(1);
                Self::varint(out, *port as u64);
            }
            SymOrigin::EntryArg { entry, index } => {
                out.push(2);
                Self::str(out, entry);
                Self::varint(out, *index as u64);
            }
            SymOrigin::Annotation { api } => {
                out.push(3);
                Self::str(out, api);
            }
            SymOrigin::Registry { name } => {
                out.push(4);
                Self::str(out, name);
            }
            SymOrigin::Other => out.push(5),
        }
    }

    fn event(&mut self, ev: &TraceEvent) {
        // Expressions are interned before the event bytes are laid down so
        // the pool stays topologically ordered.
        match ev {
            TraceEvent::Exec { pc } => {
                self.buf.push(0);
                Self::varint(&mut self.buf, *pc as u64);
            }
            TraceEvent::MemRead { pc, addr, size, value } => {
                self.buf.push(1);
                Self::varint(&mut self.buf, *pc as u64);
                Self::varint(&mut self.buf, *addr as u64);
                self.buf.push(*size);
                Self::opt_u64(&mut self.buf, *value);
            }
            TraceEvent::MemWrite { pc, addr, size, value } => {
                self.buf.push(2);
                Self::varint(&mut self.buf, *pc as u64);
                Self::varint(&mut self.buf, *addr as u64);
                self.buf.push(*size);
                Self::opt_u64(&mut self.buf, *value);
            }
            TraceEvent::Branch { pc, taken, forked, constraint } => {
                let c = self.intern(constraint);
                self.buf.push(3);
                Self::varint(&mut self.buf, *pc as u64);
                self.buf.push(u8::from(*taken) | (u8::from(*forked) << 1));
                Self::varint(&mut self.buf, c as u64);
            }
            TraceEvent::SymCreate { id, label, origin, width } => {
                self.buf.push(4);
                Self::varint(&mut self.buf, id.0 as u64);
                Self::str(&mut self.buf, label);
                Self::origin(&mut self.buf, origin);
                Self::varint(&mut self.buf, *width as u64);
            }
            TraceEvent::Concretize { pc, expr, value } => {
                let e = self.intern(expr);
                self.buf.push(5);
                Self::varint(&mut self.buf, *pc as u64);
                Self::varint(&mut self.buf, e as u64);
                Self::varint(&mut self.buf, *value);
            }
            TraceEvent::KernelCall { export_id, name } => {
                self.buf.push(6);
                Self::varint(&mut self.buf, *export_id as u64);
                Self::str(&mut self.buf, name);
            }
            TraceEvent::KernelReturn { export_id, ret } => {
                self.buf.push(7);
                Self::varint(&mut self.buf, *export_id as u64);
                Self::varint(&mut self.buf, *ret as u64);
            }
            TraceEvent::EntryInvoke { name, addr } => {
                self.buf.push(8);
                Self::str(&mut self.buf, name);
                Self::varint(&mut self.buf, *addr as u64);
            }
            TraceEvent::Interrupt { line, at_pc } => {
                self.buf.push(9);
                self.buf.push(*line);
                Self::varint(&mut self.buf, *at_pc as u64);
            }
            TraceEvent::HardwareRead { addr, id } => {
                self.buf.push(10);
                Self::varint(&mut self.buf, *addr as u64);
                Self::varint(&mut self.buf, id.0 as u64);
            }
            TraceEvent::HardwareWrite { addr, value } => {
                self.buf.push(11);
                Self::varint(&mut self.buf, *addr as u64);
                Self::opt_u64(&mut self.buf, *value);
            }
        }
    }
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::UDiv => 3,
        BinOp::URem => 4,
        BinOp::SDiv => 5,
        BinOp::SRem => 6,
        BinOp::And => 7,
        BinOp::Or => 8,
        BinOp::Xor => 9,
        BinOp::Shl => 10,
        BinOp::LShr => 11,
        BinOp::AShr => 12,
    }
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Ult => 2,
        CmpOp::Ule => 3,
        CmpOp::Slt => 4,
        CmpOp::Sle => 5,
    }
}

/// Encodes an event log into the versioned binary format.
pub fn encode_events(events: &[TraceEvent]) -> Vec<u8> {
    let mut w = Writer::new();
    for ev in events {
        w.event(ev);
    }
    let mut out = Vec::with_capacity(16 + w.pool.len() + w.buf.len());
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    Writer::varint(&mut out, w.pool_len as u64);
    out.extend_from_slice(&w.pool);
    Writer::varint(&mut out, events.len() as u64);
    out.extend_from_slice(&w.buf);
    out
}

// ---------------------------------------------------------------- reading

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError { offset: self.pos, message: message.into() })
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        match self.data.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return self.err("varint overflows 64 bits");
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let v = self.varint()?;
        u32::try_from(v).or_else(|_| self.err(format!("value {v} does not fit in u32")))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.varint()? as usize;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.data.len());
        let Some(end) = end else { return self.err("string runs past end of input") };
        let s = std::str::from_utf8(&self.data[self.pos..end])
            .map_err(|e| DecodeError { offset: self.pos, message: format!("bad utf-8: {e}") })?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(self.varint()?)),
            t => self.err(format!("bad Option tag {t}")),
        }
    }

    fn pool_ref(&mut self, pool: &[Expr]) -> Result<Expr, DecodeError> {
        let idx = self.varint()? as usize;
        match pool.get(idx) {
            Some(e) => Ok(e.clone()),
            None => self.err(format!("pool reference {idx} out of range ({})", pool.len())),
        }
    }

    fn node(&mut self, pool: &[Expr]) -> Result<ExprNode, DecodeError> {
        let tag = self.byte()?;
        Ok(match tag {
            0 => ExprNode::Const { bits: self.varint()?, width: self.u32()? },
            1 => ExprNode::Sym { id: SymId(self.u32()?), width: self.u32()? },
            2 => ExprNode::Not(self.pool_ref(pool)?),
            3 => ExprNode::Neg(self.pool_ref(pool)?),
            4 => {
                let op = self.bin_op()?;
                ExprNode::Bin(op, self.pool_ref(pool)?, self.pool_ref(pool)?)
            }
            5 => {
                let op = self.cmp_op()?;
                ExprNode::Cmp(op, self.pool_ref(pool)?, self.pool_ref(pool)?)
            }
            6 => ExprNode::ZExt { e: self.pool_ref(pool)?, width: self.u32()? },
            7 => ExprNode::SExt { e: self.pool_ref(pool)?, width: self.u32()? },
            8 => ExprNode::Extract {
                e: self.pool_ref(pool)?,
                hi: self.u32()?,
                lo: self.u32()?,
            },
            9 => ExprNode::Concat { hi: self.pool_ref(pool)?, lo: self.pool_ref(pool)? },
            10 => ExprNode::Ite {
                cond: self.pool_ref(pool)?,
                then: self.pool_ref(pool)?,
                els: self.pool_ref(pool)?,
            },
            t => return self.err(format!("bad expression node tag {t}")),
        })
    }

    fn bin_op(&mut self) -> Result<BinOp, DecodeError> {
        Ok(match self.byte()? {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::UDiv,
            4 => BinOp::URem,
            5 => BinOp::SDiv,
            6 => BinOp::SRem,
            7 => BinOp::And,
            8 => BinOp::Or,
            9 => BinOp::Xor,
            10 => BinOp::Shl,
            11 => BinOp::LShr,
            12 => BinOp::AShr,
            t => return self.err(format!("bad binary op tag {t}")),
        })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, DecodeError> {
        Ok(match self.byte()? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Ult,
            3 => CmpOp::Ule,
            4 => CmpOp::Slt,
            5 => CmpOp::Sle,
            t => return self.err(format!("bad comparison op tag {t}")),
        })
    }

    fn origin(&mut self) -> Result<SymOrigin, DecodeError> {
        Ok(match self.byte()? {
            0 => SymOrigin::HardwareRead { addr: self.u32()? },
            1 => SymOrigin::PortRead { port: self.u32()? },
            2 => SymOrigin::EntryArg { entry: self.str()?, index: self.varint()? as usize },
            3 => SymOrigin::Annotation { api: self.str()? },
            4 => SymOrigin::Registry { name: self.str()? },
            5 => SymOrigin::Other,
            t => return self.err(format!("bad origin tag {t}")),
        })
    }

    fn event(&mut self, pool: &[Expr]) -> Result<TraceEvent, DecodeError> {
        let tag = self.byte()?;
        Ok(match tag {
            0 => TraceEvent::Exec { pc: self.u32()? },
            1 => TraceEvent::MemRead {
                pc: self.u32()?,
                addr: self.u32()?,
                size: self.byte()?,
                value: self.opt_u64()?,
            },
            2 => TraceEvent::MemWrite {
                pc: self.u32()?,
                addr: self.u32()?,
                size: self.byte()?,
                value: self.opt_u64()?,
            },
            3 => {
                let pc = self.u32()?;
                let flags = self.byte()?;
                TraceEvent::Branch {
                    pc,
                    taken: flags & 1 != 0,
                    forked: flags & 2 != 0,
                    constraint: self.pool_ref(pool)?,
                }
            }
            4 => TraceEvent::SymCreate {
                id: SymId(self.u32()?),
                label: self.str()?,
                origin: self.origin()?,
                width: self.u32()?,
            },
            5 => TraceEvent::Concretize {
                pc: self.u32()?,
                expr: self.pool_ref(pool)?,
                value: self.varint()?,
            },
            6 => TraceEvent::KernelCall { export_id: self.u32()? as u16, name: self.str()? },
            7 => TraceEvent::KernelReturn { export_id: self.u32()? as u16, ret: self.u32()? },
            8 => TraceEvent::EntryInvoke { name: self.str()?, addr: self.u32()? },
            9 => TraceEvent::Interrupt { line: self.byte()?, at_pc: self.u32()? },
            10 => TraceEvent::HardwareRead { addr: self.u32()?, id: SymId(self.u32()?) },
            11 => TraceEvent::HardwareWrite { addr: self.u32()?, value: self.opt_u64()? },
            t => return self.err(format!("bad event tag {t}")),
        })
    }
}

/// Decodes an event log produced by [`encode_events`].
pub fn decode_events(data: &[u8]) -> Result<Vec<TraceEvent>, DecodeError> {
    let mut r = Reader { data, pos: 0 };
    if data.len() < 8 || data[..4] != TRACE_MAGIC {
        return r.err("not a DDT trace (bad magic)");
    }
    r.pos = 4;
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != TRACE_VERSION {
        return r.err(format!("unsupported trace version {version} (expected {TRACE_VERSION})"));
    }
    r.pos = 8;
    let pool_len = r.varint()? as usize;
    let mut pool: Vec<Expr> = Vec::with_capacity(pool_len.min(1 << 20));
    for _ in 0..pool_len {
        // Raw wrapping: the stored tree is reproduced exactly, not
        // re-simplified.
        let node = r.node(&pool)?;
        pool.push(Expr::from_node(node));
    }
    let count = r.varint()? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        events.push(r.event(&pool)?);
    }
    if r.pos != data.len() {
        return r.err(format!("{} trailing bytes after event log", data.len() - r.pos));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let x = Expr::sym(SymId(3), 32);
        let c = x.add(&Expr::constant(7, 32)).ult(&Expr::constant(100, 32));
        vec![
            TraceEvent::EntryInvoke { name: "Initialize".into(), addr: 0x40_0000 },
            TraceEvent::Exec { pc: 0x40_0000 },
            TraceEvent::SymCreate {
                id: SymId(3),
                label: "hw:0x8000".into(),
                origin: SymOrigin::HardwareRead { addr: 0x8000 },
                width: 32,
            },
            TraceEvent::MemRead { pc: 0x40_0004, addr: 0x1000, size: 4, value: Some(0xdead) },
            TraceEvent::MemWrite { pc: 0x40_0008, addr: 0x1004, size: 2, value: None },
            TraceEvent::Branch { pc: 0x40_000c, taken: true, forked: true, constraint: c.clone() },
            TraceEvent::Branch { pc: 0x40_0010, taken: false, forked: false, constraint: c.not() },
            TraceEvent::Concretize { pc: 0x40_0014, expr: x, value: 42 },
            TraceEvent::KernelCall { export_id: 9, name: "NdisMSleep".into() },
            TraceEvent::KernelReturn { export_id: 9, ret: 0 },
            TraceEvent::Interrupt { line: 1, at_pc: 0x40_0018 },
            TraceEvent::HardwareRead { addr: 0x8004, id: SymId(4) },
            TraceEvent::HardwareWrite { addr: 0x8008, value: Some(u64::MAX) },
        ]
    }

    #[test]
    fn roundtrip_is_lossless() {
        let events = sample_events();
        let bytes = encode_events(&events);
        let back = decode_events(&bytes).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn shared_subtrees_are_stored_once() {
        let x = Expr::sym(SymId(0), 32);
        let c = x.ult(&Expr::constant(10, 32));
        // The same constraint expression appears in 100 branch events; the
        // pool stores its nodes once.
        let events: Vec<TraceEvent> = (0..100)
            .map(|i| TraceEvent::Branch { pc: i, taken: true, forked: false, constraint: c.clone() })
            .collect();
        let bytes = encode_events(&events);
        let one = encode_events(&events[..1]);
        // 99 extra events cost ~4 bytes each (tag + pc + flags + pool ref),
        // nowhere near 99 re-encodings of the expression.
        assert!(bytes.len() < one.len() + 99 * 8, "pool did not deduplicate: {}", bytes.len());
        assert_eq!(decode_events(&bytes).unwrap(), events);
    }

    #[test]
    fn empty_log_roundtrips() {
        let bytes = encode_events(&[]);
        assert_eq!(decode_events(&bytes).unwrap(), Vec::<TraceEvent>::new());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(decode_events(b"nope").is_err());
        let mut bytes = encode_events(&[]);
        bytes[4] = 0xff; // corrupt the version
        let err = decode_events(&bytes).unwrap_err();
        assert!(err.message.contains("version"), "{err}");
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let bytes = encode_events(&sample_events());
        assert!(decode_events(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        let err = decode_events(&extended).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_forward_pool_references() {
        // Hand-build a pool whose first node references index 1 (itself
        // unseen): Not(pool[1]).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        bytes.push(1); // pool count
        bytes.push(2); // Not
        bytes.push(1); // reference to index 1 — out of range
        bytes.push(0); // event count
        let err = decode_events(&bytes).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }
}
