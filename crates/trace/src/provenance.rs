//! Provenance chains: why a symbolic value existed and how it reached the
//! bug site (§3.6).
//!
//! For every symbol involved in a bug's failing condition, the artifact
//! records where the raw value entered the system (a hardware register
//! read, an I/O port, an entry-point argument, a registry parameter, an
//! annotation fork), the expression route it travelled through to the
//! condition, and the concrete value the solver assigned to it. The chain
//! is computed from the trace alone, so stored artifacts stay
//! self-describing.

use ddt_expr::{sym_route, Assignment, Expr, SymId};
use ddt_symvm::{SymOrigin, TraceEvent};
use serde::{Deserialize, Serialize};

/// The provenance of one symbol at a bug site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceChain {
    /// The symbol.
    pub sym: SymId,
    /// Human-readable creation label ("hw:0x8000", "registry:MaxList").
    pub label: String,
    /// Structured origin — the chain's root.
    pub origin: SymOrigin,
    /// Symbol width in bits.
    pub width: u32,
    /// The concrete value the solver assigned on the failing path.
    pub value: u64,
    /// Expression route from the last condition mentioning the symbol down
    /// to the symbol itself; empty when the symbol reached the site without
    /// appearing in a recorded branch/concretization.
    pub route: Vec<String>,
}

impl ProvenanceChain {
    /// The stable root string used in trace signatures: origin only, no
    /// per-path data (values and routes vary between duplicate paths).
    pub fn root(&self) -> String {
        match &self.origin {
            SymOrigin::HardwareRead { addr } => format!("hw:{addr:#x}"),
            SymOrigin::PortRead { port } => format!("port:{port:#x}"),
            SymOrigin::EntryArg { entry, index } => format!("arg:{entry}[{index}]"),
            SymOrigin::Annotation { api } => format!("ann:{api}"),
            SymOrigin::Registry { name } => format!("reg:{name}"),
            SymOrigin::Other => "other".into(),
        }
    }

    /// One indented paragraph for reports and the `ddt triage` output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} ({}, {} bits) = {:#x}",
            self.label,
            self.root(),
            self.width,
            self.value
        );
        if !self.route.is_empty() {
            out.push_str("\n    via ");
            out.push_str(&self.route.join(" -> "));
        }
        out
    }
}

/// Computes provenance chains for `syms` from a recorded event log.
///
/// `events` supplies the creation records (label, origin, width) and the
/// branch/concretization expressions; `inputs` supplies the solved model.
/// Symbols without a creation record in the log (possible for synthetic
/// test fixtures) fall back to [`SymOrigin::Other`].
pub fn provenance_chains(
    events: &[TraceEvent],
    syms: &[SymId],
    inputs: &Assignment,
) -> Vec<ProvenanceChain> {
    syms.iter()
        .map(|&sym| {
            let mut label = format!("{sym}");
            let mut origin = SymOrigin::Other;
            let mut width = 32;
            // The last expression in the log that mentions the symbol is the
            // one closest to the bug site — its route explains how the value
            // reached the failing condition.
            let mut route: Vec<String> = Vec::new();
            for ev in events {
                match ev {
                    TraceEvent::SymCreate { id, label: l, origin: o, width: w } if *id == sym => {
                        label = l.clone();
                        origin = o.clone();
                        width = *w;
                    }
                    TraceEvent::Branch { constraint: e, .. }
                    | TraceEvent::Concretize { expr: e, .. } => {
                        if let Some(r) = route_of(e, sym) {
                            route = r;
                        }
                    }
                    _ => {}
                }
            }
            ProvenanceChain {
                sym,
                label,
                origin,
                width,
                value: inputs.get_or_zero(sym),
                route,
            }
        })
        .collect()
}

fn route_of(e: &Expr, sym: SymId) -> Option<Vec<String>> {
    sym_route(e, sym)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_resolves_origin_value_and_route() {
        let x = Expr::sym(SymId(7), 32);
        let cond = x.add(&Expr::constant(1, 32)).ult(&Expr::constant(10, 32));
        let events = vec![
            TraceEvent::SymCreate {
                id: SymId(7),
                label: "hw:0x8000".into(),
                origin: SymOrigin::HardwareRead { addr: 0x8000 },
                width: 32,
            },
            TraceEvent::Branch { pc: 4, taken: true, forked: true, constraint: cond },
        ];
        let mut inputs = Assignment::new();
        inputs.set(SymId(7), 5);
        let chains = provenance_chains(&events, &[SymId(7)], &inputs);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.label, "hw:0x8000");
        assert_eq!(c.origin, SymOrigin::HardwareRead { addr: 0x8000 });
        assert_eq!(c.value, 5);
        assert_eq!(c.root(), "hw:0x8000");
        assert!(!c.route.is_empty(), "route should trace through the branch condition");
        assert!(c.route.last().unwrap().contains("sym"), "route ends at the symbol");
    }

    #[test]
    fn unknown_symbols_fall_back_to_other() {
        let chains = provenance_chains(&[], &[SymId(99)], &Assignment::new());
        assert_eq!(chains[0].origin, SymOrigin::Other);
        assert_eq!(chains[0].root(), "other");
        assert!(chains[0].route.is_empty());
    }

    #[test]
    fn later_conditions_win_the_route() {
        let x = Expr::sym(SymId(1), 32);
        let early = x.ult(&Expr::constant(10, 32));
        let late = x.add(&Expr::constant(3, 32)).ult(&Expr::constant(20, 32));
        let events = vec![
            TraceEvent::Branch { pc: 0, taken: true, forked: false, constraint: early },
            TraceEvent::Branch { pc: 4, taken: true, forked: false, constraint: late },
        ];
        let chains = provenance_chains(&events, &[SymId(1)], &Assignment::new());
        assert!(
            chains[0].route.iter().any(|s| s.contains("add")),
            "route must come from the last condition: {:?}",
            chains[0].route
        );
    }
}
