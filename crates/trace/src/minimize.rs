//! Decision-schedule minimization.
//!
//! A bug's decision schedule accumulates every scheduling choice made on
//! the path — interrupt injections, forced allocation failures, injected
//! kernel-API faults — but usually only a subset is load-bearing: an
//! interrupt injected long before the defect, or a fault the driver
//! tolerated correctly, can be dropped without losing the verdict. The
//! minimizer greedily removes one decision at a time (newest first, since
//! late decisions most often ride along after the die is already cast) and
//! keeps a removal whenever the caller's oracle still reproduces the bug.
//!
//! The oracle is a closure so this crate stays independent of the concrete
//! replayer; `ddt-core` passes `replay_bug` and the CLI gets minimized
//! schedules in stored manifests for free.

use crate::bug::Decision;

/// Greedily minimizes `decisions` under `reproduces`.
///
/// `reproduces` is called with candidate subsequences (order preserved) and
/// must return true when the bug still fires under that schedule. The
/// result is a subsequence that still reproduces; if even the full schedule
/// does not reproduce (flaky oracle), the full schedule is returned
/// unchanged and `oracle_calls` reports a single probe.
pub fn minimize_decisions(
    decisions: &[Decision],
    mut reproduces: impl FnMut(&[Decision]) -> bool,
) -> MinimizeResult {
    let mut calls = 0u64;
    let mut probe = |d: &[Decision]| {
        calls += 1;
        reproduces(d)
    };
    if !probe(decisions) {
        return MinimizeResult { decisions: decisions.to_vec(), oracle_calls: calls, minimized: false };
    }
    let mut kept: Vec<Decision> = decisions.to_vec();
    // Newest-first: removing index i and retesting; on success the element
    // is gone for all later probes.
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        let mut candidate = kept.clone();
        candidate.remove(i);
        if probe(&candidate) {
            kept = candidate;
        }
    }
    MinimizeResult { decisions: kept, oracle_calls: calls, minimized: true }
}

/// Outcome of a minimization run.
#[derive(Clone, Debug)]
pub struct MinimizeResult {
    /// The (possibly reduced) schedule.
    pub decisions: Vec<Decision>,
    /// How many oracle probes were spent.
    pub oracle_calls: u64,
    /// False when the full schedule itself failed to reproduce (the result
    /// is then the untouched input).
    pub minimized: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> Vec<Decision> {
        vec![
            Decision::InjectInterrupt { boundary: 1 },
            Decision::ForceAllocFail { kernel_call: 2 },
            Decision::InjectInterrupt { boundary: 7 },
            Decision::ConcretizationBacktrack { kernel_call: 3 },
        ]
    }

    #[test]
    fn drops_unneeded_decisions() {
        // Only the ForceAllocFail matters.
        let needed = Decision::ForceAllocFail { kernel_call: 2 };
        let r = minimize_decisions(&schedule(), |d| d.contains(&needed));
        assert!(r.minimized);
        assert_eq!(r.decisions, vec![needed]);
    }

    #[test]
    fn keeps_jointly_required_pairs() {
        let a = Decision::InjectInterrupt { boundary: 1 };
        let b = Decision::ConcretizationBacktrack { kernel_call: 3 };
        let r = minimize_decisions(&schedule(), |d| d.contains(&a) && d.contains(&b));
        assert_eq!(r.decisions, vec![a, b], "order is preserved");
    }

    #[test]
    fn empty_schedule_when_nothing_is_needed() {
        let r = minimize_decisions(&schedule(), |_| true);
        assert!(r.decisions.is_empty());
        // 1 initial probe + one per element.
        assert_eq!(r.oracle_calls, 5);
    }

    #[test]
    fn non_reproducing_schedule_is_returned_unchanged() {
        let r = minimize_decisions(&schedule(), |_| false);
        assert!(!r.minimized);
        assert_eq!(r.decisions, schedule());
        assert_eq!(r.oracle_calls, 1);
    }
}
