//! Store-level triage: the deduplicated bug inventory.
//!
//! `ddt triage <store-dir>` renders this summary: one row per signature
//! with its occurrence count, plus totals showing how much the signature
//! scheme collapsed (raw sightings vs. distinct bugs).

use std::collections::BTreeMap;
use std::io;

use crate::artifact::BugRecord;
use crate::store::TraceStore;

/// The triage summary over one store.
#[derive(Clone, Debug)]
pub struct TriageSummary {
    /// One record per distinct signature, sorted by (driver, pc,
    /// signature) for stable output.
    pub records: Vec<BugRecord>,
    /// Total sightings across all signatures.
    pub total_occurrences: u64,
}

impl TriageSummary {
    /// Distinct bugs.
    pub fn distinct(&self) -> usize {
        self.records.len()
    }

    /// Sightings collapsed away by deduplication.
    pub fn duplicates_collapsed(&self) -> u64 {
        self.total_occurrences - self.records.len() as u64
    }

    /// Renders the human-readable triage table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.records.is_empty() {
            out.push_str("trace store is empty — no bugs triaged\n");
            return out;
        }
        // Group by driver for readability.
        let mut by_driver: BTreeMap<&str, Vec<&BugRecord>> = BTreeMap::new();
        for r in &self.records {
            by_driver.entry(r.driver.as_str()).or_default().push(r);
        }
        for (driver, records) in by_driver {
            out.push_str(&format!("{driver}:\n"));
            for r in records {
                out.push_str(&format!(
                    "  {}  [{:<18}] {:<9} pc {:#010x} x{:<4} {}\n",
                    r.signature,
                    r.class.to_string(),
                    r.origin.to_string(),
                    r.pc,
                    r.occurrences,
                    r.description
                ));
                for chain in &r.provenance {
                    out.push_str(&format!("      input {}\n", chain.render().replace('\n', "\n      ")));
                }
            }
        }
        out.push_str(&format!(
            "{} distinct bug(s), {} sighting(s) ({} duplicate(s) collapsed)\n",
            self.distinct(),
            self.total_occurrences,
            self.duplicates_collapsed()
        ));
        out
    }
}

/// Builds the triage summary for a store.
pub fn triage(store: &TraceStore) -> io::Result<TriageSummary> {
    let mut records = store.list()?;
    records.sort_by(|a, b| {
        (a.driver.as_str(), a.pc, a.signature.as_str())
            .cmp(&(b.driver.as_str(), b.pc, b.signature.as_str()))
    });
    let total_occurrences = records.iter().map(|r| r.occurrences).sum();
    Ok(TriageSummary { records, total_occurrences })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{TraceArtifact, MANIFEST_VERSION};
    use crate::bug::{BugClass, BugOrigin};
    use ddt_expr::Assignment;

    fn artifact(sig: &str, driver: &str, occurrences: u64) -> TraceArtifact {
        TraceArtifact {
            manifest: BugRecord {
                version: MANIFEST_VERSION,
                signature: sig.into(),
                driver: driver.into(),
                class: BugClass::KernelCrash,
                origin: BugOrigin::Concrete,
                description: "bugcheck".into(),
                pc: 0x40_0020,
                entry: "Initialize".into(),
                interrupted_entry: None,
                checker: "crash".into(),
                key: "crash:x".into(),
                occurrences,
                stack: vec![],
                inputs: Assignment::new(),
                decisions: vec![],
                minimized_decisions: None,
                provenance: vec![],
                event_count: 0,
            },
            events: vec![],
        }
    }

    #[test]
    fn summary_counts_and_renders() {
        let dir = std::env::temp_dir()
            .join(format!("ddt-triage-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir).unwrap();
        store.persist(&artifact("0000000000000001", "rtl8029", 3)).unwrap();
        store.persist(&artifact("0000000000000002", "pcnet", 1)).unwrap();
        let summary = triage(&store).unwrap();
        assert_eq!(summary.distinct(), 2);
        assert_eq!(summary.total_occurrences, 4);
        assert_eq!(summary.duplicates_collapsed(), 2);
        let text = summary.render();
        assert!(text.contains("rtl8029:"));
        assert!(text.contains("x3"));
        assert!(text.contains("concrete"), "triage rows show the bug origin");
        assert!(text.contains("2 distinct bug(s), 4 sighting(s)"));
    }

    #[test]
    fn empty_store_renders_cleanly() {
        let dir = std::env::temp_dir()
            .join(format!("ddt-triage-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir).unwrap();
        let summary = triage(&store).unwrap();
        assert_eq!(summary.distinct(), 0);
        assert!(summary.render().contains("empty"));
    }
}
