//! The campaign-fleet wire protocol and quarantine records (§6.1's
//! distributed extension).
//!
//! A `ddt serve` supervisor shards a bootstrapped frontier across `ddt
//! worker` subprocesses. Everything crossing the pipe is a [`FleetFrame`],
//! framed exactly like a journal record: varint payload length, payload,
//! FNV-1a checksum of the payload. The checksum matters more here than in
//! the journal — a worker that dies mid-`write` leaves a torn frame on the
//! pipe, and the supervisor must classify that as a worker crash (lease
//! reassignment) rather than misparse the stream.
//!
//! The lease unit is a [`FrontierRecord`]: the decision-prefix encoding the
//! checkpoint format already uses. A shard that exhausts its retry budget is
//! not lost — it is written into the trace store as a `DDTQ` **quarantine
//! record** ([`QuarantineRecord`]), preserving the exact prefix for offline
//! reproduction of whatever kept killing workers.

use std::io::Read;

use crate::campaign::{
    put_bytes, put_coverage, put_frontier_record, put_str, put_varint, read_coverage,
    read_frontier_record, CoverageRecord, Cursor, FrontierRecord,
};
use crate::codec::DecodeError;
use crate::signature::fnv1a64;

/// Magic prefix of a quarantine record file.
pub const QUARANTINE_MAGIC: [u8; 4] = *b"DDTQ";
/// Fleet protocol version (refused on mismatch at `Hello`).
///
/// v2: lease and result frames carry frontier records with the
/// deferred-obligation flag (campaign format v3).
pub const FLEET_VERSION: u64 = 2;

/// One message of the supervisor↔worker pipe protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetFrame {
    /// Worker → supervisor: first frame after spawn. The supervisor kills
    /// workers whose protocol version, configuration fingerprint, or driver
    /// disagree — a mismatched worker would explore a different tree.
    Hello {
        /// Worker id (assigned by the supervisor via the command line).
        worker: u64,
        /// Worker process id (diagnostics; 0 for in-process test workers).
        pid: u64,
        /// Protocol version.
        version: u64,
        /// `DdtConfig::fingerprint()` as the worker computed it.
        config_fp: u64,
        /// Driver under test.
        driver: String,
    },
    /// Supervisor → worker: lease one shard. `attempt` counts reassignments
    /// (1 = first grant) and is echoed back so a stale completion from a
    /// revoked lease can be told apart from the live one.
    Grant {
        /// Shard id.
        shard: u64,
        /// Lease attempt number (1-based).
        attempt: u32,
        /// The decision prefix to replay and explore.
        record: FrontierRecord,
    },
    /// Supervisor → worker: yield up to `max` queued (not yet started)
    /// shards back for rebalancing.
    Steal {
        /// Maximum shards to yield.
        max: u64,
    },
    /// Worker → supervisor: queued shards given back (ids only; the
    /// supervisor still holds every record it granted).
    Yielded {
        /// Shard ids returned, in queue order.
        shards: Vec<u64>,
    },
    /// Worker → supervisor: liveness + progress. `insns`/`quanta` are
    /// monotone process-lifetime counters: a worker stuck inside one
    /// quantum keeps its heartbeat thread silent (heartbeats are sent
    /// between quanta), so "frames arrive but the counters froze" and "no
    /// frames at all" both trip the supervisor's hang watchdog.
    Heartbeat {
        /// Instructions executed since the worker started.
        insns: u64,
        /// Quanta completed since the worker started.
        quanta: u64,
        /// The shard currently being explored, if any.
        active: Option<u64>,
        /// Shards granted but not yet started.
        queued: u64,
        /// Shards completed by this worker.
        done: u64,
        /// Blocks newly covered since the last heartbeat (coverage delta).
        new_blocks: u64,
    },
    /// Worker → supervisor: one shard fully explored. Stats and bugs
    /// travel as the same opaque JSON payloads the checkpoint format uses.
    ShardDone {
        /// Shard id.
        shard: u64,
        /// The lease attempt this completion belongs to.
        attempt: u32,
        /// `ExploreStats` delta for the shard subtree, as JSON.
        stats_json: Vec<u8>,
        /// Key-sorted bug list for the shard subtree, as JSON.
        bugs_json: Vec<u8>,
        /// Coverage delta (hits + covered; timeline left empty).
        coverage: CoverageRecord,
    },
    /// Worker → supervisor: a shard failed deterministically (replay
    /// divergence, fingerprint mismatch, panic). Counts against the
    /// shard's retry budget just like a worker death.
    ShardFailed {
        /// Shard id.
        shard: u64,
        /// The lease attempt that failed.
        attempt: u32,
        /// Human-readable cause.
        why: String,
    },
    /// Supervisor → worker: finish the active shard, then exit cleanly.
    Shutdown,
}

fn encode_payload(f: &FleetFrame) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    match f {
        FleetFrame::Hello { worker, pid, version, config_fp, driver } => {
            p.push(0);
            put_varint(&mut p, *worker);
            put_varint(&mut p, *pid);
            put_varint(&mut p, *version);
            put_varint(&mut p, *config_fp);
            put_str(&mut p, driver);
        }
        FleetFrame::Grant { shard, attempt, record } => {
            p.push(1);
            put_varint(&mut p, *shard);
            put_varint(&mut p, *attempt as u64);
            put_frontier_record(&mut p, record);
        }
        FleetFrame::Steal { max } => {
            p.push(2);
            put_varint(&mut p, *max);
        }
        FleetFrame::Yielded { shards } => {
            p.push(3);
            put_varint(&mut p, shards.len() as u64);
            for s in shards {
                put_varint(&mut p, *s);
            }
        }
        FleetFrame::Heartbeat { insns, quanta, active, queued, done, new_blocks } => {
            p.push(4);
            put_varint(&mut p, *insns);
            put_varint(&mut p, *quanta);
            match active {
                Some(s) => {
                    p.push(1);
                    put_varint(&mut p, *s);
                }
                None => p.push(0),
            }
            put_varint(&mut p, *queued);
            put_varint(&mut p, *done);
            put_varint(&mut p, *new_blocks);
        }
        FleetFrame::ShardDone { shard, attempt, stats_json, bugs_json, coverage } => {
            p.push(5);
            put_varint(&mut p, *shard);
            put_varint(&mut p, *attempt as u64);
            put_bytes(&mut p, stats_json);
            put_bytes(&mut p, bugs_json);
            put_coverage(&mut p, coverage);
        }
        FleetFrame::ShardFailed { shard, attempt, why } => {
            p.push(6);
            put_varint(&mut p, *shard);
            put_varint(&mut p, *attempt as u64);
            put_str(&mut p, why);
        }
        FleetFrame::Shutdown => p.push(7),
    }
    p
}

fn decode_payload(payload: &[u8]) -> Result<FleetFrame, DecodeError> {
    let mut c = Cursor::new(payload);
    let frame = match c.byte()? {
        0 => FleetFrame::Hello {
            worker: c.varint()?,
            pid: c.varint()?,
            version: c.varint()?,
            config_fp: c.varint()?,
            driver: c.string()?,
        },
        1 => {
            let shard = c.varint()?;
            let attempt = c.varint()? as u32;
            let record = read_frontier_record(&mut c)?;
            FleetFrame::Grant { shard, attempt, record }
        }
        2 => FleetFrame::Steal { max: c.varint()? },
        3 => {
            let n = c.varint()? as usize;
            let mut shards = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                shards.push(c.varint()?);
            }
            FleetFrame::Yielded { shards }
        }
        4 => {
            let insns = c.varint()?;
            let quanta = c.varint()?;
            let active = match c.byte()? {
                0 => None,
                _ => Some(c.varint()?),
            };
            FleetFrame::Heartbeat {
                insns,
                quanta,
                active,
                queued: c.varint()?,
                done: c.varint()?,
                new_blocks: c.varint()?,
            }
        }
        5 => {
            let shard = c.varint()?;
            let attempt = c.varint()? as u32;
            let stats_json = c.bytes()?;
            let bugs_json = c.bytes()?;
            let coverage = read_coverage(&mut c)?;
            FleetFrame::ShardDone { shard, attempt, stats_json, bugs_json, coverage }
        }
        6 => FleetFrame::ShardFailed {
            shard: c.varint()?,
            attempt: c.varint()? as u32,
            why: c.string()?,
        },
        7 => FleetFrame::Shutdown,
        t => return c.err(format!("unknown fleet frame tag {t}")),
    };
    if !c.done() {
        return c.err("trailing bytes in fleet frame payload");
    }
    Ok(frame)
}

/// Encodes one framed protocol message: varint payload length, payload,
/// FNV-1a checksum of the payload (8 bytes, little-endian).
pub fn encode_frame(f: &FleetFrame) -> Vec<u8> {
    let payload = encode_payload(f);
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_varint(&mut out, payload.len() as u64);
    let sum = fnv1a64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes a frame from a complete `length‖payload‖checksum` byte string
/// (testing and buffer-replay convenience; streams use [`read_frame`]).
pub fn decode_frame(data: &[u8]) -> Result<FleetFrame, DecodeError> {
    let mut c = Cursor::new(data);
    let len = c.varint()? as usize;
    let payload = c.take(len)?.to_vec();
    let stored = c.u64_le()?;
    if fnv1a64(&payload) != stored {
        return Err(DecodeError { offset: c.pos, message: "fleet frame checksum mismatch".into() });
    }
    if !c.done() {
        return Err(DecodeError { offset: c.pos, message: "trailing bytes after frame".into() });
    }
    decode_payload(&payload)
}

/// Reads one frame from a blocking byte stream.
///
/// - `Ok(Some(frame))` — a complete, checksum-valid frame;
/// - `Ok(None)` — clean end of stream (EOF exactly on a frame boundary);
/// - `Err(..)` — a torn tail (EOF mid-frame), a checksum mismatch, or a
///   malformed payload. The peer is dead or corrupt either way; the caller
///   treats all three identically (worker lost → lease reassignment).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<FleetFrame>> {
    // Varint length, byte at a time; EOF on the *first* byte is clean.
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        match r.read(&mut b) {
            Ok(0) if shift == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "torn fleet frame (EOF in length)",
                ))
            }
            Ok(_) => {
                if shift >= 64 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "fleet frame length varint overflows",
                    ));
                }
                len |= u64::from(b[0] & 0x7f) << shift;
                if b[0] & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if len > (1 << 30) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("fleet frame length {len} is implausible"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    if fnv1a64(&payload) != u64::from_le_bytes(sum) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "fleet frame checksum mismatch",
        ));
    }
    decode_payload(&payload)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// A shard that exhausted its lease retries, preserved for offline triage
/// instead of silently dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Shard id within the campaign.
    pub shard: u64,
    /// Driver under test.
    pub driver: String,
    /// Configuration fingerprint (replaying the prefix needs the flags).
    pub config_fp: u64,
    /// Lease attempts consumed before quarantine.
    pub attempts: u32,
    /// Why the final attempt died (watchdog verdict or worker report).
    pub last_error: String,
    /// The decision prefix itself — everything needed to reproduce the
    /// pathological subtree in isolation.
    pub record: FrontierRecord,
}

/// Encodes a quarantine record file (magic + version + body + FNV-1a).
pub fn encode_quarantine(q: &QuarantineRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&QUARANTINE_MAGIC);
    put_varint(&mut out, FLEET_VERSION);
    put_varint(&mut out, q.shard);
    put_str(&mut out, &q.driver);
    put_varint(&mut out, q.config_fp);
    put_varint(&mut out, q.attempts as u64);
    put_str(&mut out, &q.last_error);
    put_frontier_record(&mut out, &q.record);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and fully validates a quarantine record file.
pub fn decode_quarantine(data: &[u8]) -> Result<QuarantineRecord, DecodeError> {
    if data.len() < 12 {
        return Err(DecodeError { offset: 0, message: "quarantine record too short".into() });
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err(DecodeError {
            offset: body.len(),
            message: "quarantine checksum mismatch (torn or corrupt file)".into(),
        });
    }
    let mut c = Cursor::new(body);
    if c.take(4)? != QUARANTINE_MAGIC {
        return c.err("bad magic (not a DDTQ quarantine record)");
    }
    let version = c.varint()?;
    if version != FLEET_VERSION {
        return c.err(format!("unsupported quarantine version {version}"));
    }
    let shard = c.varint()?;
    let driver = c.string()?;
    let config_fp = c.varint()?;
    let attempts = c.varint()? as u32;
    let last_error = c.string()?;
    let record = read_frontier_record(&mut c)?;
    if !c.done() {
        return c.err("trailing bytes after quarantine body");
    }
    Ok(QuarantineRecord { shard, driver, config_fp, attempts, last_error, record })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{MachineFingerprint, PathPick, SiteKind};

    fn sample_record() -> FrontierRecord {
        FrontierRecord {
            id: 17,
            steps_total: 9000,
            trailing_skips: 2,
            picks: vec![
                PathPick { skips: 4, kind: SiteKind::AllocFail, pick: 1 },
                PathPick { skips: 0, kind: SiteKind::BranchFork, pick: 1 },
            ],
            fp: MachineFingerprint {
                pc: 0x40_0040,
                kernel_calls: 12,
                boundaries: 5,
                workload_pos: 2,
                interrupt_budget: 1,
                frames: 1,
                decisions_fnv: 0xfeed_f00d,
            },
            cov_fresh: 1,
            cov_stamp: 40,
            pending: true,
        }
    }

    fn sample_frames() -> Vec<FleetFrame> {
        vec![
            FleetFrame::Hello {
                worker: 3,
                pid: 4242,
                version: FLEET_VERSION,
                config_fp: 0xabcd,
                driver: "pcnet".into(),
            },
            FleetFrame::Grant { shard: 7, attempt: 2, record: sample_record() },
            FleetFrame::Steal { max: 3 },
            FleetFrame::Yielded { shards: vec![9, 11] },
            FleetFrame::Heartbeat {
                insns: 123_456,
                quanta: 88,
                active: Some(7),
                queued: 2,
                done: 5,
                new_blocks: 3,
            },
            FleetFrame::Heartbeat {
                insns: 1,
                quanta: 1,
                active: None,
                queued: 0,
                done: 0,
                new_blocks: 0,
            },
            FleetFrame::ShardDone {
                shard: 7,
                attempt: 2,
                stats_json: br#"{"paths_started":4}"#.to_vec(),
                bugs_json: b"[]".to_vec(),
                coverage: CoverageRecord {
                    hits: vec![(0x40_0000, 9)],
                    covered: vec![0x40_0000],
                    timeline: vec![],
                },
            },
            FleetFrame::ShardFailed { shard: 8, attempt: 1, why: "fingerprint mismatch".into() },
            FleetFrame::Shutdown,
        ]
    }

    #[test]
    fn frames_roundtrip() {
        for f in sample_frames() {
            let bytes = encode_frame(&f);
            assert_eq!(decode_frame(&bytes).unwrap(), f, "frame {f:?}");
        }
    }

    #[test]
    fn stream_reads_back_to_back_frames() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut r = std::io::Cursor::new(stream);
        let mut back = Vec::new();
        while let Some(f) = read_frame(&mut r).unwrap() {
            back.push(f);
        }
        assert_eq!(back, frames);
    }

    #[test]
    fn torn_and_corrupt_streams_error_cleanly() {
        let bytes = encode_frame(&FleetFrame::Grant {
            shard: 1,
            attempt: 1,
            record: sample_record(),
        });
        // Truncation at every interior offset is a hard error, not a parse.
        for cut in 1..bytes.len() {
            let mut r = std::io::Cursor::new(bytes[..cut].to_vec());
            assert!(read_frame(&mut r).is_err(), "cut at {cut} accepted");
        }
        // EOF exactly on the boundary is clean.
        let mut r = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut r).unwrap().is_none());
        // A flipped payload byte trips the checksum.
        let mut flipped = bytes.clone();
        flipped[3] ^= 0x20;
        let mut r = std::io::Cursor::new(flipped);
        assert!(read_frame(&mut r).is_err(), "bit flip accepted");
    }

    #[test]
    fn quarantine_roundtrips_and_rejects_corruption() {
        let q = QuarantineRecord {
            shard: 12,
            driver: "rtl8029".into(),
            config_fp: 0x1234_5678,
            attempts: 3,
            last_error: "lease deadline exceeded (no progress)".into(),
            record: sample_record(),
        };
        let bytes = encode_quarantine(&q);
        assert_eq!(decode_quarantine(&bytes).unwrap(), q);
        for cut in 0..bytes.len() {
            assert!(decode_quarantine(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
        }
        let mut flipped = bytes.clone();
        flipped[6] ^= 0x04;
        assert!(decode_quarantine(&flipped).is_err());
    }
}
