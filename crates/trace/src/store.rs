//! The on-disk trace store.
//!
//! Layout (one directory per store, one subdirectory per triaged bug):
//!
//! ```text
//! <store>/
//!   index.json            — store version + signature list (for listings)
//!   bug-<signature>/
//!     manifest.json       — BugRecord (JSON, human-inspectable)
//!     trace.bin           — binary event log (codec.rs)
//! ```
//!
//! Writes are atomic (temp file + rename) so a crashed run never leaves a
//! half-written manifest behind. Persisting a signature that already exists
//! merges: the occurrence count is bumped and the first-seen artifact is
//! kept (duplicate paths to one bug do not churn the stored trace).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::artifact::{BugRecord, TraceArtifact};
use crate::codec::{decode_events, encode_events};

/// Store format version (the `index.json` schema).
pub const STORE_VERSION: u32 = 1;

/// The `index.json` contents.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StoreIndex {
    /// Store schema version.
    pub version: u32,
    /// Signatures present, sorted.
    pub signatures: Vec<String>,
}

/// A directory of persisted trace artifacts.
#[derive(Clone, Debug)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    /// Opens (creating if needed) a store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<TraceStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(TraceStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn bug_dir(&self, signature: &str) -> PathBuf {
        self.dir.join(format!("bug-{signature}"))
    }

    /// Persists an artifact; returns the bug directory.
    ///
    /// If the signature is already stored, only the occurrence count is
    /// merged (existing + new) — cross-run triage: re-finding a known bug
    /// does not rewrite its trace.
    pub fn persist(&self, artifact: &TraceArtifact) -> io::Result<PathBuf> {
        let sig = &artifact.manifest.signature;
        let dir = self.bug_dir(sig);
        let manifest_path = dir.join("manifest.json");
        if manifest_path.exists() {
            let mut existing = read_manifest(&manifest_path)?;
            existing.occurrences += artifact.manifest.occurrences;
            write_atomic(&manifest_path, &to_json(&existing)?)?;
        } else {
            fs::create_dir_all(&dir)?;
            write_atomic(&dir.join("trace.bin"), &encode_events(&artifact.events))?;
            write_atomic(&manifest_path, &to_json(&artifact.manifest)?)?;
        }
        self.rebuild_index()?;
        Ok(dir)
    }

    /// Loads one artifact by signature.
    pub fn load(&self, signature: &str) -> io::Result<TraceArtifact> {
        load_artifact_dir(&self.bug_dir(signature))
    }

    /// All manifests in the store, sorted by signature.
    pub fn list(&self) -> io::Result<Vec<BugRecord>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let is_bug = entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("bug-"));
            if is_bug && path.is_dir() {
                out.push(read_manifest(&path.join("manifest.json"))?);
            }
        }
        out.sort_by(|a, b| a.signature.cmp(&b.signature));
        Ok(out)
    }

    fn rebuild_index(&self) -> io::Result<()> {
        let signatures = self.list()?.into_iter().map(|r| r.signature).collect();
        let index = StoreIndex { version: STORE_VERSION, signatures };
        write_atomic(&self.dir.join("index.json"), &to_json(&index)?)
    }

    /// Reads the index (empty if none was written yet).
    pub fn index(&self) -> io::Result<StoreIndex> {
        let path = self.dir.join("index.json");
        if !path.exists() {
            return Ok(StoreIndex { version: STORE_VERSION, signatures: Vec::new() });
        }
        let bytes = fs::read(&path)?;
        serde_json::from_slice(&bytes).map_err(invalid_data)
    }
}

/// Loads an artifact from a user-supplied path: a bug directory, its
/// `manifest.json`, or its `trace.bin` (the `ddt replay --trace` argument
/// accepts any of the three).
pub fn load_artifact(path: impl AsRef<Path>) -> io::Result<TraceArtifact> {
    let path = path.as_ref();
    if path.is_dir() {
        return load_artifact_dir(path);
    }
    match path.parent() {
        Some(dir) => load_artifact_dir(dir),
        None => Err(invalid_data(format!("{} is not a trace artifact", path.display()))),
    }
}

fn load_artifact_dir(dir: &Path) -> io::Result<TraceArtifact> {
    let manifest = read_manifest(&dir.join("manifest.json"))?;
    let bytes = fs::read(dir.join("trace.bin"))?;
    let events = decode_events(&bytes).map_err(invalid_data)?;
    if events.len() != manifest.event_count {
        return Err(invalid_data(format!(
            "manifest promises {} events, trace.bin holds {}",
            manifest.event_count,
            events.len()
        )));
    }
    Ok(TraceArtifact { manifest, events })
}

fn read_manifest(path: &Path) -> io::Result<BugRecord> {
    let bytes = fs::read(path)?;
    serde_json::from_slice(&bytes).map_err(invalid_data)
}

fn to_json<T: Serialize>(v: &T) -> io::Result<Vec<u8>> {
    serde_json::to_vec_pretty(v).map_err(invalid_data)
}

fn invalid_data(e: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Writes `bytes` to `path` atomically (temp file in the same directory,
/// then rename).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::MANIFEST_VERSION;
    use crate::bug::{BugClass, BugOrigin};
    use crate::TraceEvent;
    use ddt_expr::Assignment;

    fn tmp_store(tag: &str) -> TraceStore {
        let dir = std::env::temp_dir()
            .join(format!("ddt-trace-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TraceStore::open(dir).unwrap()
    }

    fn artifact(sig: &str) -> TraceArtifact {
        let events = vec![
            TraceEvent::EntryInvoke { name: "Initialize".into(), addr: 0x40_0000 },
            TraceEvent::Exec { pc: 0x40_0000 },
        ];
        TraceArtifact {
            manifest: BugRecord {
                version: MANIFEST_VERSION,
                signature: sig.into(),
                driver: "rtl8029".into(),
                class: BugClass::SegFault,
                origin: BugOrigin::Symbolic,
                description: "wild store".into(),
                pc: 0x40_0010,
                entry: "Initialize".into(),
                interrupted_entry: None,
                checker: "viol".into(),
                key: "viol:0x400010:write".into(),
                occurrences: 1,
                stack: vec!["Initialize".into()],
                inputs: Assignment::new(),
                decisions: vec![],
                minimized_decisions: None,
                provenance: vec![],
                event_count: events.len(),
            },
            events,
        }
    }

    #[test]
    fn persist_load_roundtrip() {
        let store = tmp_store("roundtrip");
        let a = artifact("aaaa000000000001");
        let dir = store.persist(&a).unwrap();
        assert!(dir.join("manifest.json").exists());
        assert!(dir.join("trace.bin").exists());
        let back = store.load("aaaa000000000001").unwrap();
        assert_eq!(back.manifest.signature, a.manifest.signature);
        assert_eq!(back.events, a.events);
        // The flexible loader accepts the dir, the manifest, and the bin.
        assert_eq!(load_artifact(&dir).unwrap().events, a.events);
        assert_eq!(load_artifact(dir.join("manifest.json")).unwrap().events, a.events);
        assert_eq!(load_artifact(dir.join("trace.bin")).unwrap().events, a.events);
    }

    #[test]
    fn duplicate_signature_merges_occurrences() {
        let store = tmp_store("dedup");
        let mut a = artifact("bbbb000000000002");
        store.persist(&a).unwrap();
        a.manifest.occurrences = 4;
        store.persist(&a).unwrap();
        let records = store.list().unwrap();
        assert_eq!(records.len(), 1, "one signature, one record");
        assert_eq!(records[0].occurrences, 5);
    }

    #[test]
    fn index_tracks_signatures() {
        let store = tmp_store("index");
        store.persist(&artifact("cccc000000000003")).unwrap();
        store.persist(&artifact("dddd000000000004")).unwrap();
        let idx = store.index().unwrap();
        assert_eq!(idx.version, STORE_VERSION);
        assert_eq!(idx.signatures, vec!["cccc000000000003", "dddd000000000004"]);
    }

    #[test]
    fn corrupt_trace_is_rejected() {
        let store = tmp_store("corrupt");
        let a = artifact("eeee000000000005");
        let dir = store.persist(&a).unwrap();
        fs::write(dir.join("trace.bin"), b"garbage").unwrap();
        assert!(store.load("eeee000000000005").is_err());
    }
}
