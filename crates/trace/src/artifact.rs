//! The per-bug trace artifact: manifest + event log.
//!
//! One artifact is everything a developer needs to understand and reproduce
//! one bug without re-running exploration (§3.5): the JSON manifest carries
//! the classification, signature, solved inputs, decision schedule, and
//! provenance chains; the binary event log carries the full instruction /
//! memory-access / fork-marker trace.

use ddt_expr::Assignment;
use serde::{Deserialize, Serialize};

use crate::bug::{BugClass, Decision};
use crate::provenance::ProvenanceChain;
use crate::TraceEvent;

/// Manifest format version, bumped together with any schema change.
pub const MANIFEST_VERSION: u32 = 1;

/// The JSON manifest of one stored bug (`manifest.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BugRecord {
    /// Manifest schema version.
    pub version: u32,
    /// Stable trace signature (triage identity; also the directory name).
    pub signature: String,
    /// Driver under test.
    pub driver: String,
    /// Classification (Table 2 "Bug Type").
    pub class: BugClass,
    /// One-line description.
    pub description: String,
    /// Driver instruction the failure is attributed to.
    pub pc: u32,
    /// The entry point whose invocation exposed the bug.
    pub entry: String,
    /// If the bug fired inside an injected interrupt handler: the entry
    /// point that was interrupted.
    pub interrupted_entry: Option<String>,
    /// The checker family that fired ("viol", "fault", "lockorder", ...).
    pub checker: String,
    /// Exploration-side dedup key (site-precise, kept for diagnostics).
    pub key: String,
    /// How many states/paths/runs reached this signature.
    pub occurrences: u64,
    /// Call-ish stack at the failure (outermost first).
    pub stack: Vec<String>,
    /// Solved concrete inputs that drive the driver down the failing path.
    pub inputs: Assignment,
    /// Scheduling decisions to re-apply during replay.
    pub decisions: Vec<Decision>,
    /// Minimized decision schedule, when the minimizer ran: the subset of
    /// `decisions` still sufficient to reproduce the verdict.
    pub minimized_decisions: Option<Vec<Decision>>,
    /// Provenance chain for every symbol the failing condition depended on.
    pub provenance: Vec<ProvenanceChain>,
    /// Number of events in the companion `trace.bin`.
    pub event_count: usize,
}

impl BugRecord {
    /// The decisions replay should apply: the minimized schedule when
    /// available, the full schedule otherwise.
    pub fn replay_decisions(&self) -> &[Decision] {
        self.minimized_decisions.as_deref().unwrap_or(&self.decisions)
    }

    /// One summary line for listings.
    pub fn summary_line(&self) -> String {
        format!(
            "{}  {:<10} {:<18} x{:<3} {}",
            self.signature, self.driver, self.class.to_string(), self.occurrences,
            self.description
        )
    }
}

/// A complete stored bug: manifest plus the decoded event log.
#[derive(Clone, Debug)]
pub struct TraceArtifact {
    /// The manifest.
    pub manifest: BugRecord,
    /// The full event log, in execution order.
    pub events: Vec<TraceEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BugRecord {
        BugRecord {
            version: MANIFEST_VERSION,
            signature: "00deadbeef00cafe".into(),
            driver: "rtl8029".into(),
            class: BugClass::SegFault,
            description: "wild store".into(),
            pc: 0x40_0010,
            entry: "Initialize".into(),
            interrupted_entry: None,
            checker: "viol".into(),
            key: "viol:0x400010:write".into(),
            occurrences: 3,
            stack: vec!["Initialize".into()],
            inputs: Assignment::new(),
            decisions: vec![Decision::InjectInterrupt { boundary: 2 }],
            minimized_decisions: None,
            provenance: vec![],
            event_count: 17,
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let r = record();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: BugRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.signature, r.signature);
        assert_eq!(back.class, r.class);
        assert_eq!(back.occurrences, 3);
        assert_eq!(back.decisions, r.decisions);
    }

    #[test]
    fn replay_prefers_minimized_decisions() {
        let mut r = record();
        assert_eq!(r.replay_decisions(), &r.decisions[..]);
        r.minimized_decisions = Some(vec![]);
        assert!(r.replay_decisions().is_empty());
    }
}
