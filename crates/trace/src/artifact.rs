//! The per-bug trace artifact: manifest + event log.
//!
//! One artifact is everything a developer needs to understand and reproduce
//! one bug without re-running exploration (§3.5): the JSON manifest carries
//! the classification, signature, solved inputs, decision schedule, and
//! provenance chains; the binary event log carries the full instruction /
//! memory-access / fork-marker trace.

use ddt_expr::Assignment;
use serde::Serialize;

use crate::bug::{BugClass, BugOrigin, Decision};
use crate::provenance::ProvenanceChain;
use crate::TraceEvent;

/// Manifest format version, bumped together with any schema change.
/// Version history: 1 = initial; 2 = added `origin`.
pub const MANIFEST_VERSION: u32 = 2;

/// The JSON manifest of one stored bug (`manifest.json`).
///
/// `Deserialize` is hand-written (the vendored serde derive errors on
/// missing fields): version-1 manifests lack `origin` and read as
/// [`BugOrigin::Symbolic`].
#[derive(Clone, Debug, Serialize)]
pub struct BugRecord {
    /// Manifest schema version.
    pub version: u32,
    /// Stable trace signature (triage identity; also the directory name).
    pub signature: String,
    /// Driver under test.
    pub driver: String,
    /// Classification (Table 2 "Bug Type").
    pub class: BugClass,
    /// Which execution mode first found the bug (v2+; older manifests read
    /// as symbolic).
    pub origin: BugOrigin,
    /// One-line description.
    pub description: String,
    /// Driver instruction the failure is attributed to.
    pub pc: u32,
    /// The entry point whose invocation exposed the bug.
    pub entry: String,
    /// If the bug fired inside an injected interrupt handler: the entry
    /// point that was interrupted.
    pub interrupted_entry: Option<String>,
    /// The checker family that fired ("viol", "fault", "lockorder", ...).
    pub checker: String,
    /// Exploration-side dedup key (site-precise, kept for diagnostics).
    pub key: String,
    /// How many states/paths/runs reached this signature.
    pub occurrences: u64,
    /// Call-ish stack at the failure (outermost first).
    pub stack: Vec<String>,
    /// Solved concrete inputs that drive the driver down the failing path.
    pub inputs: Assignment,
    /// Scheduling decisions to re-apply during replay.
    pub decisions: Vec<Decision>,
    /// Minimized decision schedule, when the minimizer ran: the subset of
    /// `decisions` still sufficient to reproduce the verdict.
    pub minimized_decisions: Option<Vec<Decision>>,
    /// Provenance chain for every symbol the failing condition depended on.
    pub provenance: Vec<ProvenanceChain>,
    /// Number of events in the companion `trace.bin`.
    pub event_count: usize,
}

impl serde::Deserialize for BugRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v.as_map().ok_or_else(|| serde::DeError::expected("map for BugRecord"))?;
        fn req<T: serde::Deserialize>(
            m: &[(String, serde::Value)],
            key: &str,
        ) -> Result<T, serde::DeError> {
            serde::Deserialize::from_value(serde::map_get(m, key)?)
        }
        Ok(BugRecord {
            version: req(m, "version")?,
            signature: req(m, "signature")?,
            driver: req(m, "driver")?,
            class: req(m, "class")?,
            // The one versioned field: absent in v1 manifests.
            origin: match serde::map_get(m, "origin") {
                Ok(v) => serde::Deserialize::from_value(v)?,
                Err(_) => BugOrigin::Symbolic,
            },
            description: req(m, "description")?,
            pc: req(m, "pc")?,
            entry: req(m, "entry")?,
            interrupted_entry: req(m, "interrupted_entry")?,
            checker: req(m, "checker")?,
            key: req(m, "key")?,
            occurrences: req(m, "occurrences")?,
            stack: req(m, "stack")?,
            inputs: req(m, "inputs")?,
            decisions: req(m, "decisions")?,
            minimized_decisions: req(m, "minimized_decisions")?,
            provenance: req(m, "provenance")?,
            event_count: req(m, "event_count")?,
        })
    }
}

impl BugRecord {
    /// The decisions replay should apply: the minimized schedule when
    /// available, the full schedule otherwise.
    pub fn replay_decisions(&self) -> &[Decision] {
        self.minimized_decisions.as_deref().unwrap_or(&self.decisions)
    }

    /// One summary line for listings.
    pub fn summary_line(&self) -> String {
        format!(
            "{}  {:<10} {:<18} {:<9} x{:<3} {}",
            self.signature,
            self.driver,
            self.class.to_string(),
            self.origin.to_string(),
            self.occurrences,
            self.description
        )
    }
}

/// A complete stored bug: manifest plus the decoded event log.
#[derive(Clone, Debug)]
pub struct TraceArtifact {
    /// The manifest.
    pub manifest: BugRecord,
    /// The full event log, in execution order.
    pub events: Vec<TraceEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BugRecord {
        BugRecord {
            version: MANIFEST_VERSION,
            signature: "00deadbeef00cafe".into(),
            driver: "rtl8029".into(),
            class: BugClass::SegFault,
            origin: BugOrigin::Symbolic,
            description: "wild store".into(),
            pc: 0x40_0010,
            entry: "Initialize".into(),
            interrupted_entry: None,
            checker: "viol".into(),
            key: "viol:0x400010:write".into(),
            occurrences: 3,
            stack: vec!["Initialize".into()],
            inputs: Assignment::new(),
            decisions: vec![Decision::InjectInterrupt { boundary: 2 }],
            minimized_decisions: None,
            provenance: vec![],
            event_count: 17,
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let mut r = record();
        r.origin = BugOrigin::Escalated;
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: BugRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.signature, r.signature);
        assert_eq!(back.class, r.class);
        assert_eq!(back.origin, BugOrigin::Escalated);
        assert_eq!(back.occurrences, 3);
        assert_eq!(back.decisions, r.decisions);
    }

    #[test]
    fn version1_manifest_without_origin_reads_as_symbolic() {
        let r = record();
        let json = serde_json::to_string_pretty(&r).unwrap();
        // Strip the origin key to forge a pre-v2 manifest.
        let legacy: String = json
            .lines()
            .filter(|l| !l.contains("\"origin\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(legacy, json, "forgery actually removed the field");
        let back: BugRecord = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.origin, BugOrigin::Symbolic);
        assert_eq!(back.signature, r.signature);
    }

    #[test]
    fn summary_line_carries_the_origin() {
        let mut r = record();
        r.origin = BugOrigin::Concrete;
        assert!(r.summary_line().contains("concrete"));
    }

    #[test]
    fn replay_prefers_minimized_decisions() {
        let mut r = record();
        assert_eq!(r.replay_decisions(), &r.decisions[..]);
        r.minimized_decisions = Some(vec![]);
        assert!(r.replay_decisions().is_empty());
    }
}
