//! Stable trace signatures for bug triage.
//!
//! A signature identifies *the bug*, not *the path*: two states that reach
//! the same defect along different forked paths (or in different runs) must
//! produce the same signature, while distinct defects must not collide in
//! practice. The ingredients are exactly the path-invariant parts of a bug:
//!
//! - the driver program counter the failure is attributed to,
//! - the call-ish stack (entry point and interrupt/timer frames active at
//!   the failure),
//! - the checker that fired (the `viol:` / `fault:` / `lockorder:` ...
//!   family prefix of the dedup key),
//! - the sorted provenance roots of the symbols the failing condition
//!   depended on (which hardware registers / registry parameters / entry
//!   arguments fed it).
//!
//! Solved input values, event counts, and decision schedules are all
//! path-dependent and deliberately excluded.

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The checker family of a dedup key: the prefix before the first `:`.
pub fn checker_id(key: &str) -> &str {
    key.split(':').next().unwrap_or(key)
}

/// Computes the 16-hex-digit trace signature.
///
/// `roots` is sorted internally, so callers may pass provenance roots in
/// any order (path enumeration order differs between duplicate paths).
pub fn signature(pc: u32, stack: &[String], checker: &str, roots: &[String]) -> String {
    let mut sorted: Vec<&str> = roots.iter().map(String::as_str).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&pc.to_le_bytes());
    for frame in stack {
        bytes.extend_from_slice(frame.as_bytes());
        bytes.push(0);
    }
    bytes.push(1);
    bytes.extend_from_slice(checker.as_bytes());
    bytes.push(1);
    for root in sorted {
        bytes.extend_from_slice(root.as_bytes());
        bytes.push(0);
    }
    format!("{:016x}", fnv1a64(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_ignores_root_order_and_duplicates() {
        let a = signature(
            0x40_0010,
            &["Initialize".into()],
            "viol",
            &["hw:0x8000".into(), "reg:MaxList".into()],
        );
        let b = signature(
            0x40_0010,
            &["Initialize".into()],
            "viol",
            &["reg:MaxList".into(), "hw:0x8000".into(), "hw:0x8000".into()],
        );
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn signature_distinguishes_every_ingredient() {
        let base = signature(0x10, &["Initialize".into()], "viol", &["hw:1".into()]);
        assert_ne!(base, signature(0x14, &["Initialize".into()], "viol", &["hw:1".into()]));
        assert_ne!(base, signature(0x10, &["HandleInterrupt".into()], "viol", &["hw:1".into()]));
        assert_ne!(base, signature(0x10, &["Initialize".into()], "fault", &["hw:1".into()]));
        assert_ne!(base, signature(0x10, &["Initialize".into()], "viol", &["hw:2".into()]));
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        // ["ab"] + checker "c" must differ from ["a"] + checker "bc" etc.
        let a = signature(0, &["ab".into()], "c", &[]);
        let b = signature(0, &["a".into(), "b".into()], "c", &[]);
        let c = signature(0, &["a".into()], "bc", &[]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn checker_id_strips_site_suffix() {
        assert_eq!(checker_id("viol:0x400010:read"), "viol");
        assert_eq!(checker_id("lockorder:a<b"), "lockorder");
        assert_eq!(checker_id("bare"), "bare");
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Standard FNV-1a test vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
