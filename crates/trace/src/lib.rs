//! Persistent trace store for DDT bug artifacts (§3.5, §3.6).
//!
//! DDT's headline output is a *replayable execution trace per bug*: "DDT
//! takes as input a binary device driver and outputs a report of found
//! bugs, along with execution traces for each bug." This crate makes those
//! traces durable and triageable:
//!
//! - [`codec`]: a versioned, compact binary encoding of
//!   [`TraceEvent`] logs with an interned expression DAG pool,
//! - [`artifact`]: the per-bug artifact — JSON manifest
//!   ([`BugRecord`]) plus the binary event log,
//! - [`provenance`]: chains explaining which raw input (hardware
//!   register, I/O port, registry parameter, entry argument) each symbolic
//!   value at the bug site came from, and through which expression nodes
//!   (§3.6),
//! - [`signature`]: the stable trace signature (crash pc +
//!   call-ish stack + checker id + provenance roots) that identifies a bug
//!   across states and runs,
//! - [`store`]: the on-disk store (one directory per signature,
//!   atomic writes, occurrence merging),
//! - [`minimize`]: a greedy decision-schedule minimizer,
//! - [`triage`]: the deduplicated inventory `ddt triage` renders.
//!
//! [`BugClass`] and [`Decision`] live here (not in `ddt-core`) so that
//! stored artifacts are self-describing; `ddt-core` re-exports them.

mod artifact;
mod bug;
mod campaign;
mod codec;
mod fleet;
mod minimize;
mod provenance;
mod signature;
mod store;
mod triage;

pub use artifact::{BugRecord, TraceArtifact, MANIFEST_VERSION};
pub use bug::{BugClass, BugOrigin, Decision, LifecycleEvent};
pub use campaign::{
    decode_checkpoint, decode_journal, encode_checkpoint, encode_journal_header,
    encode_journal_record, CheckpointFile, CoverageRecord, FrontierRecord, JournalRecord,
    JournalReplay, MachineFingerprint, PathPick, PathStatus, SiteKind, CAMPAIGN_VERSION,
    CHECKPOINT_MAGIC, JOURNAL_MAGIC,
};
pub use codec::{decode_events, encode_events, DecodeError, TRACE_MAGIC, TRACE_VERSION};
pub use fleet::{
    decode_frame, decode_quarantine, encode_frame, encode_quarantine, read_frame, FleetFrame,
    QuarantineRecord, FLEET_VERSION, QUARANTINE_MAGIC,
};
pub use ddt_symvm::{SymOrigin, TraceEvent};
pub use minimize::{minimize_decisions, MinimizeResult};
pub use provenance::{provenance_chains, ProvenanceChain};
pub use signature::{checker_id, fnv1a64, signature};
pub use store::{load_artifact, StoreIndex, TraceStore, STORE_VERSION};
pub use triage::{triage, TriageSummary};

#[cfg(test)]
mod prop_tests {
    //! Round-trip property tests (satellite: "serialize→deserialize of
    //! traces (proptest over event sequences) is lossless").

    use ddt_expr::{Expr, SymId};
    use proptest::prelude::*;

    use crate::codec::{decode_events, encode_events};
    use crate::{SymOrigin, TraceEvent};

    /// Deterministically builds an expression from a seed, exercising every
    /// node kind the codec must encode (including shapes the smart
    /// constructors would never produce on their own — the raw decoder must
    /// still reproduce whatever was stored).
    fn arb_expr(seed: u64) -> Expr {
        let x = Expr::sym(SymId((seed % 5) as u32), 32);
        let y = Expr::sym(SymId(7), 32);
        let k = Expr::constant(seed >> 3, 32);
        match seed % 11 {
            0 => k,
            1 => x.clone(),
            2 => x.not(),
            3 => x.neg(),
            4 => x.add(&k).mul(&y),
            5 => x.udiv(&k.or(&Expr::constant(1, 32))).xor(&y),
            6 => Expr::ite(&x.ult(&k), &x, &y),
            7 => x.zext(64).extract(47, 16),
            8 => x.sext(48).extract(39, 8),
            9 => x.extract(15, 0).concat(&y.extract(15, 0)),
            _ => x.slt(&y).eq(&k.ne(&Expr::constant(0, 32))),
        }
    }

    fn arb_origin(seed: u64) -> SymOrigin {
        match seed % 6 {
            0 => SymOrigin::HardwareRead { addr: (seed >> 3) as u32 },
            1 => SymOrigin::PortRead { port: (seed >> 3) as u32 & 0xffff },
            2 => SymOrigin::EntryArg { entry: format!("Entry{}", seed % 4), index: (seed % 3) as usize },
            3 => SymOrigin::Annotation { api: format!("NdisApi{}", seed % 7) },
            4 => SymOrigin::Registry { name: format!("Param{}", seed % 9) },
            _ => SymOrigin::Other,
        }
    }

    /// Deterministically builds one event from a seed, covering all twelve
    /// variants.
    fn arb_event(seed: u64) -> TraceEvent {
        let pc = (seed >> 4) as u32;
        match seed % 12 {
            0 => TraceEvent::Exec { pc },
            1 => TraceEvent::MemRead {
                pc,
                addr: (seed >> 9) as u32,
                size: 1 << (seed % 4),
                value: seed.is_multiple_of(2).then_some(seed >> 2),
            },
            2 => TraceEvent::MemWrite {
                pc,
                addr: (seed >> 9) as u32,
                size: 1 << (seed % 4),
                value: seed.is_multiple_of(3).then_some(!seed),
            },
            3 => TraceEvent::Branch {
                pc,
                taken: seed.is_multiple_of(2),
                forked: seed.is_multiple_of(3),
                constraint: arb_expr(seed >> 5),
            },
            4 => TraceEvent::SymCreate {
                id: SymId((seed % 64) as u32),
                label: format!("label-{}", seed % 17),
                origin: arb_origin(seed >> 6),
                width: [1u32, 8, 16, 32, 64][(seed % 5) as usize],
            },
            5 => TraceEvent::Concretize { pc, expr: arb_expr(seed >> 5), value: seed },
            6 => TraceEvent::KernelCall {
                export_id: (seed % 40) as u16,
                name: format!("Export{}", seed % 40),
            },
            7 => TraceEvent::KernelReturn { export_id: (seed % 40) as u16, ret: seed as u32 },
            8 => TraceEvent::EntryInvoke { name: format!("Entry{}", seed % 6), addr: pc },
            9 => TraceEvent::Interrupt { line: (seed % 16) as u8, at_pc: pc },
            10 => TraceEvent::HardwareRead { addr: (seed >> 9) as u32, id: SymId((seed % 64) as u32) },
            _ => TraceEvent::HardwareWrite {
                addr: (seed >> 9) as u32,
                value: (seed % 2 == 1).then_some(seed.rotate_left(17)),
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Binary encode → decode is the identity on arbitrary event logs.
        #[test]
        fn binary_roundtrip_is_lossless(seeds in prop::collection::vec(any::<u64>(), 0..80)) {
            let events: Vec<TraceEvent> = seeds.iter().map(|&s| arb_event(s)).collect();
            let bytes = encode_events(&events);
            let back = decode_events(&bytes).unwrap();
            prop_assert_eq!(back, events);
        }

        /// A second encode of the decoded log is byte-identical — the codec
        /// is a canonical form, so stored artifacts can be re-written
        /// without churn.
        #[test]
        fn reencoding_is_stable(seeds in prop::collection::vec(any::<u64>(), 0..40)) {
            let events: Vec<TraceEvent> = seeds.iter().map(|&s| arb_event(s)).collect();
            let bytes = encode_events(&events);
            let reencoded = encode_events(&decode_events(&bytes).unwrap());
            prop_assert_eq!(reencoded, bytes);
        }

        /// Truncating an encoded log anywhere inside the payload never
        /// panics and (except at event-count boundaries that happen to
        /// parse) fails cleanly.
        #[test]
        fn truncation_never_panics(seeds in prop::collection::vec(any::<u64>(), 1..20), cut in any::<usize>()) {
            let events: Vec<TraceEvent> = seeds.iter().map(|&s| arb_event(s)).collect();
            let bytes = encode_events(&events);
            let cut = cut % bytes.len();
            let _ = decode_events(&bytes[..cut]); // Must not panic.
        }
    }
}

#[cfg(test)]
mod campaign_prop_tests {
    //! Round-trip property tests for the campaign (checkpoint + journal)
    //! codec: lossless decode, canonical re-encode, torn-tail detection
    //! with complete-prefix recovery.

    use proptest::prelude::*;

    use crate::campaign::{
        decode_checkpoint, decode_journal, encode_checkpoint, encode_journal_header,
        encode_journal_record, CheckpointFile, CoverageRecord, FrontierRecord, JournalRecord,
        MachineFingerprint, PathPick, PathStatus, SiteKind,
    };

    fn arb_site_kind(seed: u64) -> SiteKind {
        SiteKind::from_u8((seed % 6) as u8).expect("kinds 0..6 exist")
    }

    fn arb_pick(seed: u64) -> PathPick {
        PathPick {
            skips: (seed >> 8) % 1000,
            kind: arb_site_kind(seed),
            pick: 1 + (seed % 3) as u32,
        }
    }

    fn arb_frontier_record(seed: u64) -> FrontierRecord {
        FrontierRecord {
            id: seed % 4096,
            steps_total: seed.rotate_left(13) % 1_000_000,
            trailing_skips: seed % 77,
            picks: (0..(seed % 6)).map(|i| arb_pick(seed.wrapping_mul(31).wrapping_add(i))).collect(),
            fp: MachineFingerprint {
                pc: (seed >> 3) as u32,
                kernel_calls: seed % 999,
                boundaries: seed % 333,
                workload_pos: seed % 11,
                interrupt_budget: (seed % 3) as u32,
                frames: (seed % 5) as u32,
                decisions_fnv: seed.rotate_right(29),
            },
            cov_fresh: seed % 17,
            cov_stamp: seed % 5_000,
            pending: seed % 4 == 0,
        }
    }

    fn arb_checkpoint(seed: u64, frontier_seeds: &[u64]) -> CheckpointFile {
        let mut hits: Vec<(u32, u64)> =
            (0..(seed % 9)).map(|i| ((seed >> 4) as u32 ^ (i as u32) << 8, 1 + seed % 50)).collect();
        hits.sort_unstable();
        hits.dedup_by_key(|h| h.0);
        let covered: Vec<u32> = hits.iter().map(|h| h.0).collect();
        CheckpointFile {
            seq: seed % 100,
            driver: format!("driver-{}", seed % 4),
            config_fp: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            wall_ms: seed % 1_000_000,
            insns: seed.rotate_left(7),
            next_id: seed % 10_000,
            finished: seed.is_multiple_of(5),
            interrupted: seed.is_multiple_of(7),
            stats_json: format!("{{\"paths_started\":{}}}", seed % 100).into_bytes(),
            bugs_json: if seed.is_multiple_of(2) {
                b"[]".to_vec()
            } else {
                format!("[{{\"key\":\"k{}\"}}]", seed % 9).into_bytes()
            },
            coverage: CoverageRecord {
                hits,
                covered,
                timeline: (0..(seed % 5)).map(|i| (i * 100, i + 1)).collect(),
            },
            frontier: frontier_seeds.iter().map(|&s| arb_frontier_record(s)).collect(),
            prune_seen: (0..(seed % 6))
                .map(|i| (seed.rotate_left(i as u32) ^ i, seed % 900))
                .collect(),
        }
    }

    fn arb_journal_record(seed: u64) -> JournalRecord {
        match seed % 6 {
            0 => JournalRecord::Started {
                driver: format!("drv{}", seed % 5),
                config_fp: seed.rotate_left(11),
            },
            1 => JournalRecord::PathDone {
                machine: seed % 8192,
                status: PathStatus::Completed,
                steps: seed % 100_000,
                new_bugs: (0..(seed % 4)).map(|i| format!("bug-{}-{}", seed % 13, i)).collect(),
            },
            2 => JournalRecord::Forked {
                parent: seed % 8192,
                child: (seed >> 5) % 8192,
                kind: arb_site_kind(seed >> 2),
            },
            3 => JournalRecord::Checkpoint { seq: seed % 64, frontier: seed % 512 },
            4 => JournalRecord::Interrupted,
            _ => JournalRecord::Finished { distinct_bugs: seed % 40 },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Checkpoint encode → decode is the identity, and re-encoding the
        /// decoded value is byte-identical (the format is canonical).
        #[test]
        fn checkpoint_roundtrip_lossless_and_canonical(
            seed in any::<u64>(),
            frontier_seeds in prop::collection::vec(any::<u64>(), 0..12),
        ) {
            let ck = arb_checkpoint(seed, &frontier_seeds);
            let bytes = encode_checkpoint(&ck);
            let back = decode_checkpoint(&bytes).unwrap();
            prop_assert_eq!(&back, &ck);
            prop_assert_eq!(encode_checkpoint(&back), bytes);
        }

        /// Any strict truncation of a checkpoint is rejected — the
        /// whole-file checksum makes torn checkpoint writes detectable.
        #[test]
        fn checkpoint_truncation_is_detected(
            seed in any::<u64>(),
            frontier_seeds in prop::collection::vec(any::<u64>(), 0..6),
            cut in any::<usize>(),
        ) {
            let bytes = encode_checkpoint(&arb_checkpoint(seed, &frontier_seeds));
            let cut = cut % bytes.len();
            prop_assert!(decode_checkpoint(&bytes[..cut]).is_err());
        }

        /// Journal encode → decode is the identity on arbitrary record
        /// sequences, and the replay is reported clean.
        #[test]
        fn journal_roundtrip_is_lossless(seeds in prop::collection::vec(any::<u64>(), 0..60)) {
            let records: Vec<JournalRecord> = seeds.iter().map(|&s| arb_journal_record(s)).collect();
            let mut bytes = encode_journal_header();
            for r in &records {
                bytes.extend_from_slice(&encode_journal_record(r));
            }
            let replay = decode_journal(&bytes).unwrap();
            prop_assert!(replay.clean);
            prop_assert_eq!(replay.records, records);
        }

        /// Truncating a journal inside its record stream never panics,
        /// never loses a complete record, and is flagged unclean whenever
        /// bytes were actually torn off a record.
        #[test]
        fn journal_torn_tail_recovers_complete_prefix(
            seeds in prop::collection::vec(any::<u64>(), 1..30),
            cut in any::<usize>(),
        ) {
            let records: Vec<JournalRecord> = seeds.iter().map(|&s| arb_journal_record(s)).collect();
            let header = encode_journal_header();
            let mut bytes = header.clone();
            // Remember where each record's frame ends so we know how many
            // complete records a cut point preserves.
            let mut ends = Vec::with_capacity(records.len());
            for r in &records {
                bytes.extend_from_slice(&encode_journal_record(r));
                ends.push(bytes.len());
            }
            let cut = header.len() + cut % (bytes.len() - header.len());
            let complete = ends.iter().take_while(|&&e| e <= cut).count();
            let replay = decode_journal(&bytes[..cut]).unwrap();
            prop_assert_eq!(replay.records.len(), complete);
            prop_assert_eq!(&replay.records[..], &records[..complete]);
            // Clean iff the cut lands exactly on a frame boundary (or keeps
            // only the header) — anything else tore a record.
            let on_boundary = cut == header.len() || (complete > 0 && cut == ends[complete - 1]);
            prop_assert_eq!(replay.clean, on_boundary);
        }
    }
}
