//! On-disk formats for durable exploration campaigns.
//!
//! Long campaigns (coverage grows over hours — Figures 2 and 3) must
//! survive their process dying. Two artifact kinds make that possible,
//! both versioned binary formats beside the `DDTT` trace codec:
//!
//! - the **write-ahead journal** (`DDTJ`): an append-only log with one
//!   framed record per completed path (terminal status, new bug keys) and
//!   per fork decision. Each record carries its own FNV-1a checksum, so a
//!   torn tail — the normal result of `SIGKILL` mid-append — is detected
//!   and recovery keeps every complete prefix record;
//! - the **frontier checkpoint** (`DDTC`): a self-contained snapshot of
//!   the campaign — consumed budgets, aggregate statistics, the bug map,
//!   coverage, and each pending `Machine` serialized as its
//!   decision-schedule prefix (a compressed log of fork-site picks) plus a
//!   fingerprint to validate the reconstruction. Whole-file checksum;
//!   writers publish via temp-file + `fsync` + atomic rename.
//!
//! A checkpoint is tiny compared to the states it describes because every
//! `Machine` is reproducible by re-executing from the root and steering
//! each nondeterministic fork site with the recorded pick — the same
//! determinism the replay layer already relies on.
//!
//! Aggregates that already have a stable serde representation in
//! `ddt-core` (the stats and bug structures) travel as embedded JSON
//! byte-sections; this module treats them as opaque payloads, which also
//! keeps re-encoding byte-canonical.

use crate::codec::DecodeError;
use crate::signature::fnv1a64;

/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"DDTC";
/// Magic prefix of a journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"DDTJ";
/// Current campaign format version (shared by both artifacts).
///
/// v2: frontier records carry the search metadata (`cov_fresh`,
/// `cov_stamp`) guided strategies rank by, and checkpoints carry the
/// structural-fingerprint prune set.
///
/// v3: frontier records carry the deferred-obligation flag (`pending`).
/// Lazy batched feasibility stages branch-fork children whose verdict the
/// solver has not yet confirmed; a checkpoint written between fork and
/// flush must preserve that obligation so the resumed run settles it before
/// selection, exactly where the uninterrupted run would have.
pub const CAMPAIGN_VERSION: u64 = 3;

/// The kinds of nondeterministic fork sites the exploration visits, in the
/// vocabulary of the choice log. Every site is machine-local (its firing
/// condition never depends on worklist capacity or scheduling), which is
/// what makes a recorded pick sequence replayable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SiteKind {
    /// Multi-way address resolution parked alternatives on the state.
    PendingFork = 0,
    /// The interpreter forked at a symbolic branch or division.
    BranchFork = 1,
    /// The failed-allocation alternative of an acquisition call.
    AllocFail = 2,
    /// A systematic fault-plan injection alternative.
    FaultInject = 3,
    /// Concretization backtracking re-issues a kernel call.
    Backtrack = 4,
    /// A symbolic interrupt fires at this kernel/driver boundary.
    Interrupt = 5,
    /// A device-lifecycle event (removal/power) fires at this boundary.
    Lifecycle = 6,
}

impl SiteKind {
    /// Decodes a site kind from its wire byte.
    pub fn from_u8(b: u8) -> Option<SiteKind> {
        Some(match b {
            0 => SiteKind::PendingFork,
            1 => SiteKind::BranchFork,
            2 => SiteKind::AllocFail,
            3 => SiteKind::FaultInject,
            4 => SiteKind::Backtrack,
            5 => SiteKind::Interrupt,
            6 => SiteKind::Lifecycle,
            _ => return None,
        })
    }
}

/// One materialized entry of a machine's choice log: after `skips` sites at
/// which the ancestor stayed on the parent side, a site of kind `kind`
/// fired and the machine's ancestor took child alternative `pick`
/// (1-based; pick 0 — staying parent — is what the skip run-lengths
/// compress away).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathPick {
    /// Fork sites skipped (parent side taken) before this pick.
    pub skips: u64,
    /// The kind of site at which the child was taken.
    pub kind: SiteKind,
    /// Which alternative was taken (1-based).
    pub pick: u32,
}

/// Validation fingerprint of a reconstructed machine. Replaying a frontier
/// record must land exactly here; any mismatch marks the record as failed
/// (counted in run health) instead of silently exploring a wrong state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MachineFingerprint {
    /// Program counter.
    pub pc: u32,
    /// Kernel calls made on the path.
    pub kernel_calls: u64,
    /// Kernel/driver boundary crossings on the path.
    pub boundaries: u64,
    /// Next workload operation index.
    pub workload_pos: u64,
    /// Remaining symbolic-interrupt injections.
    pub interrupt_budget: u32,
    /// Invocation stack depth.
    pub frames: u32,
    /// FNV-1a over the JSON of the decision schedule.
    pub decisions_fnv: u64,
}

/// One pending machine, serialized as its decision-schedule prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierRecord {
    /// Machine id (diagnostics; reassigned stably on resume).
    pub id: u64,
    /// Steps executed by the exploration loop on this machine so far — the
    /// replay stop point.
    pub steps_total: u64,
    /// Fork sites skipped since the last materialized pick.
    pub trailing_skips: u64,
    /// The materialized picks, root-most first.
    pub picks: Vec<PathPick>,
    /// Validation fingerprint.
    pub fp: MachineFingerprint,
    /// New blocks the machine's minting quantum opened (search metadata;
    /// guided strategies rank by it, replay cannot re-derive it).
    pub cov_fresh: u64,
    /// Quantum ordinal that stamped `cov_fresh`.
    pub cov_stamp: u64,
    /// True when the machine's branch-feasibility verdict is still deferred
    /// (lazy batching forked it optimistically and no flush has run since);
    /// the resumed exploration must settle it before first selection.
    pub pending: bool,
}

/// Serialized coverage state (hit counts drive the exploration heuristic,
/// so they are part of what makes a resumed serial run bit-deterministic).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CoverageRecord {
    /// Per-block hit counters, sorted by block pc.
    pub hits: Vec<(u32, u64)>,
    /// Covered block pcs, sorted.
    pub covered: Vec<u32>,
    /// Coverage timeline: (campaign milliseconds, covered blocks).
    pub timeline: Vec<(u64, u64)>,
}

/// A complete frontier checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointFile {
    /// Monotonic checkpoint sequence number within the campaign.
    pub seq: u64,
    /// Driver under test (resume refuses a mismatched target).
    pub driver: String,
    /// Fingerprint of the exploration configuration (resume refuses a
    /// mismatched configuration — it would not replay).
    pub config_fp: u64,
    /// Wall-clock milliseconds consumed so far (the resumed run continues
    /// this clock instead of restarting the budget).
    pub wall_ms: u64,
    /// Instructions consumed so far (same continuation contract).
    pub insns: u64,
    /// Next machine id to allocate.
    pub next_id: u64,
    /// The campaign ran to completion; the frontier is empty and resume is
    /// a no-op that re-renders the stored report.
    pub finished: bool,
    /// The campaign was interrupted gracefully (SIGINT) rather than killed.
    pub interrupted: bool,
    /// `ExploreStats` as JSON (opaque here; owned by `ddt-core`).
    pub stats_json: Vec<u8>,
    /// The keyed bug map as a JSON list (opaque here; owned by `ddt-core`).
    pub bugs_json: Vec<u8>,
    /// Coverage state.
    pub coverage: CoverageRecord,
    /// Every pending machine as its decision-schedule prefix.
    pub frontier: Vec<FrontierRecord>,
    /// Structural-fingerprint prune set: (fingerprint hash, covered-block
    /// count at last sighting), sorted. Empty when pruning is off.
    pub prune_seen: Vec<(u64, u64)>,
}

/// Terminal status of one explored path, as journaled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PathStatus {
    /// Workload exhausted; the path ran to completion.
    Completed = 0,
    /// Ended by a fault or crash (a bug report).
    Faulted = 1,
    /// Killed as infeasible.
    Infeasible = 2,
    /// Killed by the per-invocation budget.
    BudgetKilled = 3,
    /// The quantum panicked; the state was discarded (run health incident).
    Panicked = 4,
    /// Killed by the whole-path step budget (a potential driver hang).
    StepBudgetExceeded = 5,
}

impl PathStatus {
    fn from_u8(b: u8) -> Option<PathStatus> {
        Some(match b {
            0 => PathStatus::Completed,
            1 => PathStatus::Faulted,
            2 => PathStatus::Infeasible,
            3 => PathStatus::BudgetKilled,
            4 => PathStatus::Panicked,
            5 => PathStatus::StepBudgetExceeded,
            _ => return None,
        })
    }
}

/// One write-ahead journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// Campaign start marker.
    Started {
        /// Driver under test.
        driver: String,
        /// Configuration fingerprint.
        config_fp: u64,
    },
    /// One path reached a terminal status.
    PathDone {
        /// Machine id.
        machine: u64,
        /// How the path ended.
        status: PathStatus,
        /// Exploration steps the machine had executed.
        steps: u64,
        /// Bug keys first recorded on this path's final quantum.
        new_bugs: Vec<String>,
    },
    /// One fork decision created a child state.
    Forked {
        /// Parent machine id.
        parent: u64,
        /// Child machine id.
        child: u64,
        /// The site kind that forked.
        kind: SiteKind,
    },
    /// A frontier checkpoint was published.
    Checkpoint {
        /// Its sequence number.
        seq: u64,
        /// Pending machines it captured.
        frontier: u64,
    },
    /// The campaign was interrupted gracefully.
    Interrupted,
    /// The campaign ran to completion.
    Finished {
        /// Distinct bug keys at completion.
        distinct_bugs: u64,
    },
}

// ---------------------------------------------------------------------------
// Primitive wire helpers (LEB128 varints, as in the `DDTT` codec). Shared
// with the fleet protocol (`fleet.rs`), which frames its messages the same
// way the journal frames its records.

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    pub(crate) fn err<T>(&self, message: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError { offset: self.pos, message: message.into() })
    }

    pub(crate) fn byte(&mut self) -> Result<u8, DecodeError> {
        match self.data.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.err("unexpected end of input"),
        }
    }

    pub(crate) fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return self.err("varint overflows 64 bits");
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.data.len() - self.pos < n {
            return self.err(format!("need {n} bytes, have {}", self.data.len() - self.pos));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.varint()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    pub(crate) fn string(&mut self) -> Result<String, DecodeError> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| DecodeError {
            offset: self.pos,
            message: "invalid utf-8 in string".into(),
        })
    }

    pub(crate) fn u64_le(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

// ---------------------------------------------------------------------------
// Shared sub-codecs: frontier records and coverage travel both inside
// checkpoints and inside fleet protocol frames.

/// Encodes one frontier record (choice-log prefix + fingerprint).
pub(crate) fn put_frontier_record(out: &mut Vec<u8>, rec: &FrontierRecord) {
    put_varint(out, rec.id);
    put_varint(out, rec.steps_total);
    put_varint(out, rec.trailing_skips);
    put_varint(out, rec.picks.len() as u64);
    for p in &rec.picks {
        put_varint(out, p.skips);
        out.push(p.kind as u8);
        put_varint(out, p.pick as u64);
    }
    put_varint(out, rec.fp.pc as u64);
    put_varint(out, rec.fp.kernel_calls);
    put_varint(out, rec.fp.boundaries);
    put_varint(out, rec.fp.workload_pos);
    put_varint(out, rec.fp.interrupt_budget as u64);
    put_varint(out, rec.fp.frames as u64);
    out.extend_from_slice(&rec.fp.decisions_fnv.to_le_bytes());
    put_varint(out, rec.cov_fresh);
    put_varint(out, rec.cov_stamp);
    out.push(rec.pending as u8);
}

/// Decodes one frontier record.
pub(crate) fn read_frontier_record(c: &mut Cursor<'_>) -> Result<FrontierRecord, DecodeError> {
    let id = c.varint()?;
    let steps_total = c.varint()?;
    let trailing_skips = c.varint()?;
    let npicks = c.varint()? as usize;
    let mut picks = Vec::with_capacity(npicks.min(1 << 16));
    for _ in 0..npicks {
        let skips = c.varint()?;
        let kb = c.byte()?;
        let Some(kind) = SiteKind::from_u8(kb) else {
            return c.err(format!("unknown site kind {kb}"));
        };
        let pick = c.varint()? as u32;
        picks.push(PathPick { skips, kind, pick });
    }
    let fp = MachineFingerprint {
        pc: c.varint()? as u32,
        kernel_calls: c.varint()?,
        boundaries: c.varint()?,
        workload_pos: c.varint()?,
        interrupt_budget: c.varint()? as u32,
        frames: c.varint()? as u32,
        decisions_fnv: c.u64_le()?,
    };
    let cov_fresh = c.varint()?;
    let cov_stamp = c.varint()?;
    let pending = match c.byte()? {
        0 => false,
        1 => true,
        b => return c.err(format!("bad pending flag {b}")),
    };
    Ok(FrontierRecord { id, steps_total, trailing_skips, picks, fp, cov_fresh, cov_stamp, pending })
}

/// Encodes a coverage record (hits + covered set + timeline).
pub(crate) fn put_coverage(out: &mut Vec<u8>, cov: &CoverageRecord) {
    put_varint(out, cov.hits.len() as u64);
    for &(pc, n) in &cov.hits {
        put_varint(out, pc as u64);
        put_varint(out, n);
    }
    put_varint(out, cov.covered.len() as u64);
    for &pc in &cov.covered {
        put_varint(out, pc as u64);
    }
    put_varint(out, cov.timeline.len() as u64);
    for &(ms, blocks) in &cov.timeline {
        put_varint(out, ms);
        put_varint(out, blocks);
    }
}

/// Decodes a coverage record.
pub(crate) fn read_coverage(c: &mut Cursor<'_>) -> Result<CoverageRecord, DecodeError> {
    let nhits = c.varint()? as usize;
    let mut hits = Vec::with_capacity(nhits.min(1 << 16));
    for _ in 0..nhits {
        let pc = c.varint()? as u32;
        let n = c.varint()?;
        hits.push((pc, n));
    }
    let ncov = c.varint()? as usize;
    let mut covered = Vec::with_capacity(ncov.min(1 << 16));
    for _ in 0..ncov {
        covered.push(c.varint()? as u32);
    }
    let ntl = c.varint()? as usize;
    let mut timeline = Vec::with_capacity(ntl.min(1 << 16));
    for _ in 0..ntl {
        let ms = c.varint()?;
        let blocks = c.varint()?;
        timeline.push((ms, blocks));
    }
    Ok(CoverageRecord { hits, covered, timeline })
}

// ---------------------------------------------------------------------------
// Checkpoint encoding.

/// Encodes a checkpoint file (magic + version + body + whole-file FNV-1a).
pub fn encode_checkpoint(ck: &CheckpointFile) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    put_varint(&mut out, CAMPAIGN_VERSION);
    put_varint(&mut out, ck.seq);
    put_str(&mut out, &ck.driver);
    put_varint(&mut out, ck.config_fp);
    put_varint(&mut out, ck.wall_ms);
    put_varint(&mut out, ck.insns);
    put_varint(&mut out, ck.next_id);
    out.push(u8::from(ck.finished) | (u8::from(ck.interrupted) << 1));
    put_bytes(&mut out, &ck.stats_json);
    put_bytes(&mut out, &ck.bugs_json);
    put_coverage(&mut out, &ck.coverage);
    put_varint(&mut out, ck.frontier.len() as u64);
    for rec in &ck.frontier {
        put_frontier_record(&mut out, rec);
    }
    put_varint(&mut out, ck.prune_seen.len() as u64);
    for &(h, n) in &ck.prune_seen {
        out.extend_from_slice(&h.to_le_bytes());
        put_varint(&mut out, n);
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and fully validates a checkpoint file (magic, version, checksum,
/// no trailing bytes).
pub fn decode_checkpoint(data: &[u8]) -> Result<CheckpointFile, DecodeError> {
    if data.len() < 12 {
        return Err(DecodeError { offset: 0, message: "checkpoint too short".into() });
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err(DecodeError {
            offset: body.len(),
            message: "checkpoint checksum mismatch (torn or corrupt file)".into(),
        });
    }
    let mut c = Cursor::new(body);
    if c.take(4)? != CHECKPOINT_MAGIC {
        return c.err("bad magic (not a DDTC checkpoint)");
    }
    let version = c.varint()?;
    if version != CAMPAIGN_VERSION {
        return c.err(format!("unsupported checkpoint version {version}"));
    }
    let seq = c.varint()?;
    let driver = c.string()?;
    let config_fp = c.varint()?;
    let wall_ms = c.varint()?;
    let insns = c.varint()?;
    let next_id = c.varint()?;
    let flags = c.byte()?;
    let stats_json = c.bytes()?;
    let bugs_json = c.bytes()?;
    let coverage = read_coverage(&mut c)?;
    let nfront = c.varint()? as usize;
    let mut frontier = Vec::with_capacity(nfront.min(1 << 16));
    for _ in 0..nfront {
        frontier.push(read_frontier_record(&mut c)?);
    }
    let nseen = c.varint()? as usize;
    let mut prune_seen = Vec::with_capacity(nseen.min(1 << 16));
    for _ in 0..nseen {
        let h = c.u64_le()?;
        let n = c.varint()?;
        prune_seen.push((h, n));
    }
    if !c.done() {
        return c.err("trailing bytes after checkpoint body");
    }
    Ok(CheckpointFile {
        seq,
        driver,
        config_fp,
        wall_ms,
        insns,
        next_id,
        finished: flags & 1 != 0,
        interrupted: flags & 2 != 0,
        stats_json,
        bugs_json,
        coverage,
        frontier,
        prune_seen,
    })
}

// ---------------------------------------------------------------------------
// Journal encoding.

/// Encodes the journal file header (written once, at campaign start).
pub fn encode_journal_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&JOURNAL_MAGIC);
    put_varint(&mut out, CAMPAIGN_VERSION);
    out
}

fn encode_record_payload(rec: &JournalRecord) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    match rec {
        JournalRecord::Started { driver, config_fp } => {
            p.push(0);
            put_str(&mut p, driver);
            put_varint(&mut p, *config_fp);
        }
        JournalRecord::PathDone { machine, status, steps, new_bugs } => {
            p.push(1);
            put_varint(&mut p, *machine);
            p.push(*status as u8);
            put_varint(&mut p, *steps);
            put_varint(&mut p, new_bugs.len() as u64);
            for k in new_bugs {
                put_str(&mut p, k);
            }
        }
        JournalRecord::Forked { parent, child, kind } => {
            p.push(2);
            put_varint(&mut p, *parent);
            put_varint(&mut p, *child);
            p.push(*kind as u8);
        }
        JournalRecord::Checkpoint { seq, frontier } => {
            p.push(3);
            put_varint(&mut p, *seq);
            put_varint(&mut p, *frontier);
        }
        JournalRecord::Interrupted => p.push(4),
        JournalRecord::Finished { distinct_bugs } => {
            p.push(5);
            put_varint(&mut p, *distinct_bugs);
        }
    }
    p
}

/// Encodes one framed journal record: varint payload length, payload,
/// FNV-1a checksum of the payload (8 bytes, little-endian).
pub fn encode_journal_record(rec: &JournalRecord) -> Vec<u8> {
    let payload = encode_record_payload(rec);
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_varint(&mut out, payload.len() as u64);
    let sum = fnv1a64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn decode_record_payload(payload: &[u8]) -> Result<JournalRecord, DecodeError> {
    let mut c = Cursor::new(payload);
    let rec = match c.byte()? {
        0 => JournalRecord::Started { driver: c.string()?, config_fp: c.varint()? },
        1 => {
            let machine = c.varint()?;
            let sb = c.byte()?;
            let Some(status) = PathStatus::from_u8(sb) else {
                return c.err(format!("unknown path status {sb}"));
            };
            let steps = c.varint()?;
            let n = c.varint()? as usize;
            let mut new_bugs = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                new_bugs.push(c.string()?);
            }
            JournalRecord::PathDone { machine, status, steps, new_bugs }
        }
        2 => {
            let parent = c.varint()?;
            let child = c.varint()?;
            let kb = c.byte()?;
            let Some(kind) = SiteKind::from_u8(kb) else {
                return c.err(format!("unknown site kind {kb}"));
            };
            JournalRecord::Forked { parent, child, kind }
        }
        3 => JournalRecord::Checkpoint { seq: c.varint()?, frontier: c.varint()? },
        4 => JournalRecord::Interrupted,
        5 => JournalRecord::Finished { distinct_bugs: c.varint()? },
        t => return c.err(format!("unknown journal record tag {t}")),
    };
    if !c.done() {
        return c.err("trailing bytes in journal record payload");
    }
    Ok(rec)
}

/// Result of reading back a journal file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalReplay {
    /// Every complete, checksum-valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// False when the file ends in a torn or corrupt tail (recovery kept
    /// the complete prefix; the tail bytes were discarded).
    pub clean: bool,
}

/// Decodes a journal file. A bad header is an error; a torn or corrupt
/// tail is *not* — recovery keeps every complete prefix record and reports
/// `clean: false`.
pub fn decode_journal(data: &[u8]) -> Result<JournalReplay, DecodeError> {
    let mut c = Cursor::new(data);
    if c.take(4).map_err(|_| DecodeError {
        offset: 0,
        message: "journal too short for header".into(),
    })? != JOURNAL_MAGIC
    {
        return Err(DecodeError { offset: 0, message: "bad magic (not a DDTJ journal)".into() });
    }
    let version = c.varint()?;
    if version != CAMPAIGN_VERSION {
        return Err(DecodeError {
            offset: c.pos,
            message: format!("unsupported journal version {version}"),
        });
    }
    let mut records = Vec::new();
    loop {
        if c.done() {
            return Ok(JournalReplay { records, clean: true });
        }
        let frame_start = c.pos;
        let torn = |records: Vec<JournalRecord>| Ok(JournalReplay { records, clean: false });
        let Ok(len) = c.varint() else { return torn(records) };
        let Ok(payload) = c.take(len as usize) else { return torn(records) };
        let Ok(stored) = c.u64_le() else { return torn(records) };
        if fnv1a64(payload) != stored {
            return torn(records);
        }
        match decode_record_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                return Err(DecodeError {
                    offset: frame_start + e.offset,
                    message: format!("corrupt journal record: {}", e.message),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> CheckpointFile {
        CheckpointFile {
            seq: 7,
            driver: "rtl8029".into(),
            config_fp: 0xdead_beef_1234,
            wall_ms: 1500,
            insns: 123_456,
            next_id: 99,
            finished: false,
            interrupted: true,
            stats_json: br#"{"paths_started":12}"#.to_vec(),
            bugs_json: b"[]".to_vec(),
            coverage: CoverageRecord {
                hits: vec![(0x40_0000, 3), (0x40_0010, 1)],
                covered: vec![0x40_0000, 0x40_0010],
                timeline: vec![(10, 1), (20, 2)],
            },
            frontier: vec![FrontierRecord {
                id: 5,
                steps_total: 4096,
                trailing_skips: 3,
                picks: vec![
                    PathPick { skips: 2, kind: SiteKind::BranchFork, pick: 1 },
                    PathPick { skips: 0, kind: SiteKind::Interrupt, pick: 1 },
                    PathPick { skips: 17, kind: SiteKind::PendingFork, pick: 2 },
                ],
                fp: MachineFingerprint {
                    pc: 0x40_0020,
                    kernel_calls: 31,
                    boundaries: 8,
                    workload_pos: 3,
                    interrupt_budget: 0,
                    frames: 1,
                    decisions_fnv: 0x1122_3344_5566_7788,
                },
                cov_fresh: 2,
                cov_stamp: 17,
                pending: true,
            }],
            prune_seen: vec![(0xaaaa_bbbb, 12), (0xcccc_dddd, 13)],
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let ck = sample_checkpoint();
        let bytes = encode_checkpoint(&ck);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(encode_checkpoint(&back), bytes, "re-encode is canonical");
    }

    #[test]
    fn checkpoint_detects_corruption_and_truncation() {
        let bytes = encode_checkpoint(&sample_checkpoint());
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
        }
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x40;
        assert!(decode_checkpoint(&flipped).is_err(), "bit flip accepted");
    }

    #[test]
    fn journal_roundtrips_and_recovers_torn_tail() {
        let records = vec![
            JournalRecord::Started { driver: "pcnet".into(), config_fp: 42 },
            JournalRecord::Forked { parent: 1, child: 2, kind: SiteKind::AllocFail },
            JournalRecord::PathDone {
                machine: 2,
                status: PathStatus::Faulted,
                steps: 300,
                new_bugs: vec!["leak:pool".into(), "segv:7".into()],
            },
            JournalRecord::Checkpoint { seq: 1, frontier: 4 },
            JournalRecord::Interrupted,
            JournalRecord::Finished { distinct_bugs: 2 },
        ];
        let mut bytes = encode_journal_header();
        for r in &records {
            bytes.extend_from_slice(&encode_journal_record(r));
        }
        let replay = decode_journal(&bytes).unwrap();
        assert!(replay.clean);
        assert_eq!(replay.records, records);
        // A torn tail (partial final record) keeps the complete prefix.
        let torn = &bytes[..bytes.len() - 3];
        let replay = decode_journal(torn).unwrap();
        assert!(!replay.clean);
        assert_eq!(replay.records, records[..records.len() - 1]);
    }

    #[test]
    fn journal_bad_header_is_an_error() {
        assert!(decode_journal(b"").is_err());
        assert!(decode_journal(b"NOPE\x01").is_err());
    }
}
