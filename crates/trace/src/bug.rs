//! Bug classification and replay decisions.
//!
//! These two types are shared between the exploration side (`ddt-core`
//! records them as bugs are found) and the persistence side (this crate
//! stores them in trace artifacts). They live here so that trace artifacts
//! are self-describing without depending on the exerciser; `ddt-core`
//! re-exports both under their historical paths.

use ddt_kernel::FaultFamily;
use serde::{Deserialize, Serialize};

/// Bug classification, following the "Bug Type" column of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BugClass {
    /// A non-memory resource was not released (config handles, packets...).
    ResourceLeak,
    /// Pool memory was not freed.
    MemoryLeak,
    /// A write/read past the bounds of an owned buffer.
    MemoryCorruption,
    /// A crash from a bad pointer (NULL deref, wild jump, unexpected OID).
    SegFault,
    /// A crash or corruption that needs a particular interrupt timing.
    RaceCondition,
    /// The kernel bug-checked (API misuse: wrong IRQL, bad handles...).
    KernelCrash,
    /// The kernel would hang (deadlock, lock held at return, non-LIFO).
    KernelHang,
    /// The driver reported success despite a failed mandatory acquisition
    /// (an injected kernel-API fault whose status it never checked).
    UncheckedFailure,
    /// The driver mishandled a device-lifecycle event: it touched hardware
    /// after a surprise removal, or re-entered D0 without reprogramming
    /// the device.
    LifecycleViolation,
}

impl std::fmt::Display for BugClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BugClass::ResourceLeak => "Resource leak",
            BugClass::MemoryLeak => "Memory leak",
            BugClass::MemoryCorruption => "Memory corruption",
            BugClass::SegFault => "Segmentation fault",
            BugClass::RaceCondition => "Race condition",
            BugClass::KernelCrash => "Kernel crash",
            BugClass::KernelHang => "Kernel hang",
            BugClass::UncheckedFailure => "Unchecked failure",
            BugClass::LifecycleViolation => "Lifecycle violation",
        };
        f.write_str(s)
    }
}

/// Which execution mode first found a bug (hybrid fuzzing provenance).
///
/// Versioned into the manifest as of `MANIFEST_VERSION` 2; manifests
/// written before the field existed deserialize as [`BugOrigin::Symbolic`],
/// which is what they were.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugOrigin {
    /// Found by symbolic exploration.
    #[default]
    Symbolic,
    /// Found by pure concrete fuzzing.
    Concrete,
    /// Found by symbolic exploration escalated from an interesting concrete
    /// fuzz state.
    Escalated,
}

impl std::fmt::Display for BugOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BugOrigin::Symbolic => "symbolic",
            BugOrigin::Concrete => "concrete",
            BugOrigin::Escalated => "escalated",
        })
    }
}

/// A device-lifecycle event DDT can inject at an execution boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LifecycleEvent {
    /// The device vanishes: surprise removal mid-workload.
    SurpriseRemove,
    /// The device powers down to D3 (the PnP handler sees event code 2).
    Suspend,
    /// The device powers back up to D0 (the PnP handler sees event code 3).
    Resume,
}

impl LifecycleEvent {
    /// The event code passed to the driver's PnP-notification callback.
    pub fn code(self) -> u32 {
        match self {
            LifecycleEvent::SurpriseRemove => 1,
            LifecycleEvent::Suspend => 2,
            LifecycleEvent::Resume => 3,
        }
    }

    /// Decodes an event code (the inverse of [`LifecycleEvent::code`]).
    pub fn from_code(code: u32) -> Option<LifecycleEvent> {
        match code {
            1 => Some(LifecycleEvent::SurpriseRemove),
            2 => Some(LifecycleEvent::Suspend),
            3 => Some(LifecycleEvent::Resume),
            _ => None,
        }
    }

    /// The invocation name the executor uses for the handler frame.
    pub fn invocation_name(self) -> &'static str {
        match self {
            LifecycleEvent::SurpriseRemove => "PnpSurpriseRemove",
            LifecycleEvent::Suspend => "PnpSetPowerD3",
            LifecycleEvent::Resume => "PnpSetPowerD0",
        }
    }
}

impl std::fmt::Display for LifecycleEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LifecycleEvent::SurpriseRemove => "surprise removal",
            LifecycleEvent::Suspend => "suspend (D0->D3)",
            LifecycleEvent::Resume => "resume (D3->D0)",
        })
    }
}

/// One scheduling decision DDT made on the buggy path; replay re-applies
/// these deterministically (§3.5).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// A symbolic interrupt was delivered at boundary crossing `boundary`.
    InjectInterrupt {
        /// Boundary-crossing index (counted per path).
        boundary: u64,
    },
    /// Kernel allocation call number `kernel_call` was forced to fail (the
    /// concrete-to-symbolic "NULL alternative" annotation fork).
    ForceAllocFail {
        /// Kernel-call index (counted per path).
        kernel_call: u64,
    },
    /// DDT backtracked a concretization at kernel call `kernel_call` and
    /// re-issued it with a different feasible argument value (§3.2). The
    /// excluded/selected values are captured by the path constraints, so
    /// replay needs no special handling beyond the solved inputs.
    ConcretizationBacktrack {
        /// Kernel-call index (counted per path).
        kernel_call: u64,
    },
    /// Kernel call number `site` had a `kind`-family fault injected: the
    /// call ran its failure path instead of granting the resource.
    InjectFault {
        /// Kernel-call index (counted per path).
        site: u64,
        /// The fault family that failed.
        kind: FaultFamily,
    },
    /// A device-lifecycle event was injected at boundary crossing
    /// `boundary`: the PnP handler ran and the device presence/power state
    /// machine advanced.
    LifecycleEvent {
        /// Boundary-crossing index (counted per path).
        boundary: u64,
        /// Which lifecycle event fired.
        event: LifecycleEvent,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_display_matches_table2_vocabulary() {
        assert_eq!(BugClass::ResourceLeak.to_string(), "Resource leak");
        assert_eq!(BugClass::RaceCondition.to_string(), "Race condition");
        assert_eq!(BugClass::SegFault.to_string(), "Segmentation fault");
    }

    #[test]
    fn decision_roundtrips_through_json() {
        let d = Decision::InjectFault { site: 9, kind: FaultFamily::Registration };
        let s = serde_json::to_string(&d).unwrap();
        let back: Decision = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
        let d = Decision::LifecycleEvent { boundary: 4, event: LifecycleEvent::SurpriseRemove };
        let s = serde_json::to_string(&d).unwrap();
        let back: Decision = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn lifecycle_event_codes_roundtrip() {
        for ev in [LifecycleEvent::SurpriseRemove, LifecycleEvent::Suspend, LifecycleEvent::Resume]
        {
            assert_eq!(LifecycleEvent::from_code(ev.code()), Some(ev));
        }
        assert_eq!(LifecycleEvent::from_code(0), None);
        assert_eq!(LifecycleEvent::from_code(9), None);
    }
}
