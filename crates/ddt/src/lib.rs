//! DDT: testing closed-source binary device drivers — the facade crate.
//!
//! Re-exports the whole system under one roof. A reproduction of
//! *"Testing Closed-Source Binary Device Drivers with DDT"* (Kuznetsov,
//! Chipounov, Candea — USENIX ATC 2010); see the repository README and
//! DESIGN.md for architecture and EXPERIMENTS.md for the paper-vs-measured
//! record.
//!
//! # Quick start
//!
//! ```
//! // Pick a driver binary (here: a bundled synthetic NIC driver) and
//! // let DDT exercise it. No source, no hardware.
//! let spec = ddt::drivers::driver_by_name("pcnet").unwrap();
//! let dut = ddt::DriverUnderTest::from_spec(&spec);
//! let report = ddt::Ddt::default().test(&dut);
//! assert_eq!(report.bugs.len(), 2); // Table 2: both PCNet leaks.
//! ```
//!
//! # Layer map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`expr`], [`solver`] | `ddt-expr`, `ddt-solver` | symbolic expressions + decision procedure |
//! | [`isa`], [`vm`] | `ddt-isa`, `ddt-vm` | DDT-32 ISA, assembler, concrete VM |
//! | [`symvm`] | `ddt-symvm` | symbolic interpreter, COW forking |
//! | [`kernel`] | `ddt-kernel` | the mini-OS with NDIS/WDM-flavored APIs |
//! | [`drivers`] | `ddt-drivers` | the closed-source driver binaries under test |
//! | [`core`] (re-exported at the root) | `ddt-core` | DDT itself |
//! | [`sdv`] | `ddt-sdv` | SDV-lite and Driver-Verifier baselines |

pub use ddt_core::{
    artifact_from_bug, //
    bug_from_artifact,
    decision_streams,
    persist_bugs,
    replay_artifact,
    replay_bug,
    run_hybrid,
    resume_parallel,
    test_parallel,
    Annotations,
    Bug,
    BugClass,
    CampaignError,
    CheckpointPolicy,
    Ddt,
    DdtConfig,
    DriverUnderTest,
    ExploreStats,
    FaultFamily,
    FaultInjector,
    FaultPlan,
    FleetConfig,
    FuzzConfig,
    WorkerOpts,
    Report,
    ReplayOutcome,
    RunHealth,
    Strategy,
};

/// Symbolic expressions (re-export of `ddt-expr`).
pub mod expr {
    pub use ddt_expr::*;
}

/// Constraint solver (re-export of `ddt-solver`).
pub mod solver {
    pub use ddt_solver::*;
}

/// The DDT-32 ISA, assembler, and binary format (re-export of `ddt-isa`).
pub mod isa {
    pub use ddt_isa::*;
}

/// The concrete virtual machine (re-export of `ddt-vm`).
pub mod vm {
    pub use ddt_vm::*;
}

/// The symbolic execution engine (re-export of `ddt-symvm`).
pub mod symvm {
    pub use ddt_symvm::*;
}

/// The mini-OS kernel (re-export of `ddt-kernel`).
pub mod kernel {
    pub use ddt_kernel::*;
}

/// Bundled driver binaries and workloads (re-export of `ddt-drivers`).
pub mod drivers {
    pub use ddt_drivers::*;
}

/// DDT internals (re-export of `ddt-core`).
pub mod core {
    pub use ddt_core::*;
}

/// Comparison baselines (re-export of `ddt-sdv`).
pub mod sdv {
    pub use ddt_sdv::*;
}

/// Persistent trace store, signatures, provenance, triage (re-export of
/// `ddt-trace`).
pub mod trace {
    pub use ddt_trace::*;
}
