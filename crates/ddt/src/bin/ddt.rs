//! The `ddt` command-line tool.
//!
//! ```text
//! ddt test <driver.dxe | bundled-name> [--audio] [--registry K=V]...
//!          [--no-annotations] [--no-memcheck] [--faults] [--lifecycle]
//!          [--workers N]
//!          [--no-query-cache] [--no-slicing] [--no-incremental]
//!          [--no-batch] [--no-portfolio] [--no-rewrite]
//!          [--json FILE] [--replay] [--health]
//!          [--trace-dir DIR] [--checkpoint-dir DIR] [--checkpoint-every N]
//!          [--resume DIR]
//! ddt fuzz <driver.dxe | bundled-name> [--seed N] [--batches N]
//!          [--batch-size N] [--no-escalate] [--quanta-per-batch N]
//!          [--no-drain] [...shared test flags]
//! ddt serve <driver.dxe | bundled-name> [--workers N] [--lease-timeout MS]
//!          [--max-retries N] [--heartbeat-ms MS] [--status-file FILE]
//!          [--chaos-kill N] [--shard-factor N] [...shared test flags]
//! ddt worker <driver.dxe | bundled-name> --worker-id N [...shared test flags]
//! ddt replay --trace <bug-dir | manifest.json | trace.bin> [--driver PATH]
//! ddt triage <store-dir>
//! ddt asm <source.s> -o <driver.dxe>
//! ddt disas <driver.dxe>
//! ddt info <driver.dxe | bundled-name>
//! ddt export <bundled-name> -o <driver.dxe>
//! ddt list
//! ```
//!
//! `test` is the paper's consumer scenario (§1): point the tool at a binary
//! driver and get a verdict before loading it. With `--trace-dir` every
//! confirmed bug is persisted as a replayable artifact (§3.5); `replay`
//! re-executes such an artifact concretely, and `triage` renders the
//! deduplicated bug inventory of a store.
//!
//! `fuzz` runs the hybrid concolic/fuzzing pipeline (§4.10): deterministic
//! mutational fuzzing on the fast concrete executor, with interesting
//! executions escalated into the symbolic frontier and the frontier drained
//! symbolically at the end. Same report shape and exit codes as `test`;
//! with `--trace-dir`, a pre-existing store seeds the fuzz corpus.
//!
//! `--checkpoint-dir` makes the campaign durable (§4.7): a write-ahead
//! journal plus periodic frontier checkpoints, crash-safe at any instant.
//! `--resume` picks an interrupted campaign back up from that directory
//! and runs it to the same report the uninterrupted run would have
//! produced. With a campaign active, the first SIGINT drains in-flight
//! work and checkpoints before exiting (code 130); a second SIGINT exits
//! immediately.
//!
//! `--lifecycle` turns device-lifecycle events into fault-injectable
//! inputs (§4.11): PnP surprise removal and D0/D3 power transitions are
//! delivered both as workload operations and mid-quantum at exploration
//! boundaries, with checkers for touch-after-remove and
//! resume-without-restore. Like every fingerprinted knob it is shared by
//! `test`, `fuzz`, `serve`, and `worker`.
//!
//! `serve` runs the same campaign as a fault-tolerant **fleet**: the
//! supervisor shards the frontier across `--workers` `ddt worker`
//! subprocesses (spawned from this same binary, speaking length-prefixed
//! frames over stdin/stdout), leases shards with progress deadlines, kills
//! and replaces crashed or hung workers, retries their leases with
//! exponential backoff, and quarantines shards that keep failing. The final
//! report is the same one `ddt test` would have produced. `worker` is the
//! subprocess end of that protocol — not intended for interactive use.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The graceful-interruption flag shared with the explorer. The handler
/// performs one atomic swap (async-signal-safe); everything else — the
/// drain, the final checkpoint, the partial report — happens on the
/// exploration threads when they observe the flag.
static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    #[link_name = "_exit"]
    fn raw_exit(code: i32) -> !;
}

const SIGINT: i32 = 2;

extern "C" fn on_sigint(_sig: i32) {
    if let Some(flag) = STOP.get() {
        if flag.swap(true, Ordering::SeqCst) {
            // Second ^C: the user wants out *now*.
            unsafe { raw_exit(130) }
        }
    }
}

/// Installs the SIGINT handler and returns the stop flag to hand to
/// [`ddt::DdtConfig::stop_flag`].
fn install_sigint_flag() -> Arc<AtomicBool> {
    let flag = STOP.get_or_init(|| Arc::new(AtomicBool::new(false))).clone();
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as *const () as usize);
    }
    flag
}

use ddt::drivers::workload::{lifecycle_workload_for, workload_for};
use ddt::drivers::DriverClass;
use ddt::isa::image::DxeImage;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ddt test <driver.dxe|name> [--audio] [--registry K=V]... \
         [--no-annotations] [--no-memcheck] [--faults] [--lifecycle] [--workers N] \
         [--no-query-cache] [--no-slicing] [--no-incremental] \
         [--no-batch] [--no-portfolio] [--no-rewrite] \
         [--strategy fifo|coverage-new-first|rarest-branch|bug-directed] \
         [--prune] [--no-prune] \
         [--json FILE] [--replay] [--health] \
         [--trace-dir DIR] [--checkpoint-dir DIR] [--checkpoint-every N] \
         [--resume DIR] [--max-path-insns N] [--max-insns N]\n  \
         ddt fuzz <driver.dxe|name> [--seed N] [--batches N] [--batch-size N] \
         [--no-escalate] [--quanta-per-batch N] [--no-drain] [...shared test flags]\n  \
         ddt serve <driver.dxe|name> [--workers N] [--lease-timeout MS] \
         [--max-retries N] [--heartbeat-ms MS] [--status-file FILE] \
         [--chaos-kill N] [--shard-factor N] [...shared test flags]\n  \
         ddt replay --trace <bug-dir|manifest.json|trace.bin> [--driver PATH]\n  \
         ddt triage <store-dir>\n  \
         ddt asm <src.s> -o <out.dxe>\n  ddt disas <driver.dxe>\n  \
         ddt info <driver.dxe|name>\n  ddt export <name> -o <out.dxe>\n  ddt list"
    );
    ExitCode::from(2)
}

/// Builds a [`ddt::DriverUnderTest`] from a bundled name or a `.dxe` path,
/// with the bundled spec's registry/descriptor defaults when available.
/// `lifecycle` selects the lifecycle workload (suspend/resume/surprise
/// removal spliced in before Halt) — required to replay bugs found with
/// `--lifecycle`.
fn load_dut(target: &str, audio: bool, lifecycle: bool) -> Result<ddt::DriverUnderTest, String> {
    let mut dut = if let Some(spec) = ddt::drivers::driver_by_name(target) {
        ddt::DriverUnderTest::from_spec(&spec)
    } else if target == "clean_nic" {
        ddt::DriverUnderTest::from_spec(&ddt::drivers::clean_driver())
    } else {
        let image = load_image(target)?;
        let class = if audio { DriverClass::Audio } else { DriverClass::Net };
        ddt::DriverUnderTest {
            image,
            class,
            registry: Vec::new(),
            descriptor: Default::default(),
            workload: workload_for(class),
        }
    };
    if lifecycle {
        dut.workload = lifecycle_workload_for(dut.class);
    }
    Ok(dut)
}

fn load_image(arg: &str) -> Result<DxeImage, String> {
    if let Some(spec) = ddt::drivers::driver_by_name(arg) {
        return Ok(spec.build().image);
    }
    if arg == "clean_nic" {
        return Ok(ddt::drivers::clean_driver().build().image);
    }
    let bytes = std::fs::read(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
    DxeImage::from_bytes(&bytes).map_err(|e| format!("{arg}: {e}"))
}

/// Builds the driver under test from `args[1]` plus the shared flags
/// (`--audio`, `--registry`). `test`, `serve`, and `worker` all go through
/// here — supervisor and workers must agree on the exact same DUT.
fn parse_target(args: &[String]) -> Result<ddt::DriverUnderTest, String> {
    let Some(target) = args.get(1) else {
        return Err("missing driver target".to_string());
    };
    let image = load_image(target)?;
    // Bundled drivers bring their registry/descriptor defaults.
    let bundled = ddt::drivers::driver_by_name(target);
    let class = if args.iter().any(|a| a == "--audio")
        || bundled.as_ref().is_some_and(|b| b.class == DriverClass::Audio)
    {
        DriverClass::Audio
    } else {
        DriverClass::Net
    };
    let mut registry: Vec<(String, u32)> = bundled
        .as_ref()
        .map(|b| b.registry.iter().map(|&(k, v)| (k.to_string(), v)).collect())
        .unwrap_or_default();
    for kv in flag_values(args, "--registry") {
        match kv.split_once('=') {
            Some((k, v)) => {
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u32::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                match parsed {
                    Ok(n) => registry.push((k.to_string(), n)),
                    Err(_) => return Err(format!("bad --registry value {kv:?}")),
                }
            }
            None => return Err(format!("--registry expects K=V, got {kv:?}")),
        }
    }
    let descriptor = bundled.map(|b| b.descriptor).unwrap_or_default();
    // The lifecycle workload is part of the shared target definition:
    // supervisor and workers must drive the exact same operation sequence.
    let workload = if args.iter().any(|a| a == "--lifecycle") {
        lifecycle_workload_for(class)
    } else {
        workload_for(class)
    };
    Ok(ddt::DriverUnderTest { image, class, registry, descriptor, workload })
}

/// Parses the shared configuration flags. The fleet handshake compares
/// config fingerprints between supervisor and workers, so every
/// fingerprinted knob must be parsed identically by `test`, `serve`, and
/// `worker`.
fn parse_config(args: &[String]) -> Result<ddt::DdtConfig, String> {
    let mut config = ddt::DdtConfig::default();
    if args.iter().any(|a| a == "--no-annotations") {
        config.annotations = ddt::Annotations::disabled();
    }
    if args.iter().any(|a| a == "--no-memcheck") {
        config.check_memory = false;
    }
    if args.iter().any(|a| a == "--faults") {
        config.fault_plan = ddt::FaultPlan::full();
    }
    // `--lifecycle` adds the lifecycle family on top of whatever plan is in
    // force: alone it enables exactly that family, with `--faults` the full
    // plan already contains it.
    if args.iter().any(|a| a == "--lifecycle") && !config.fault_plan.wants(ddt::FaultFamily::Lifecycle)
    {
        config.fault_plan.enabled = true;
        config.fault_plan.families.insert(ddt::FaultFamily::Lifecycle);
    }
    // Escape hatches: disable the shared counterexample cache, verdict
    // slicing, or incremental sessions. The exploration is identical (all
    // three are semantically invisible); only solver time changes. They
    // exist purely for field bisection.
    if args.iter().any(|a| a == "--no-query-cache") {
        config.use_query_cache = false;
    }
    if args.iter().any(|a| a == "--no-slicing") {
        config.use_slicing = false;
    }
    if args.iter().any(|a| a == "--no-incremental") {
        config.use_incremental = false;
    }
    // Same contract for the lazy-feasibility machinery (ISSUE 10):
    // `--no-batch` settles every fork's verdict eagerly at the fork site,
    // `--no-portfolio` pins hard verdict components to the single-lane
    // pipeline, `--no-rewrite` skips algebraic pre-blast simplification.
    // All three are report-invisible.
    if args.iter().any(|a| a == "--no-batch") {
        config.use_batch = false;
    }
    if args.iter().any(|a| a == "--no-portfolio") {
        config.use_portfolio = false;
    }
    if args.iter().any(|a| a == "--no-rewrite") {
        config.use_rewrite = false;
    }
    // Search strategy and fingerprint pruning. Both are fingerprinted, so
    // supervisor and workers agree, and a resume refuses a mismatched
    // strategy. `--no-prune` is the escape hatch that wins over `--prune`.
    if let Some(name) = flag_value(args, "--strategy") {
        match ddt::Strategy::parse(&name) {
            Some(s) => config.strategy = s,
            None => return Err(format!("bad --strategy value {name:?}")),
        }
    }
    if args.iter().any(|a| a == "--prune") {
        config.prune = true;
    }
    if args.iter().any(|a| a == "--no-prune") {
        config.prune = false;
    }
    // The per-path step budget: the hang watchdog for drivers stuck in
    // polling loops (counted as potential hangs in the health report).
    if let Some(n) = flag_value(args, "--max-path-insns") {
        match n.parse() {
            Ok(v) if v > 0 => config.max_path_insns = v,
            _ => return Err(format!("bad --max-path-insns value {n:?}")),
        }
    }
    // The campaign-wide instruction budget. Lifecycle injection multiplies
    // the path count, so exhaustive runs over large drivers need headroom
    // beyond the default; exploration order under an exhausted budget is
    // mode-dependent, so differential comparisons raise this until the
    // campaign completes.
    if let Some(n) = flag_value(args, "--max-insns") {
        match n.parse() {
            Ok(v) if v > 0 => config.max_total_insns = v,
            _ => return Err(format!("bad --max-insns value {n:?}")),
        }
    }
    if let Some(dir) = flag_value(args, "--trace-dir") {
        config.trace_dir = Some(std::path::PathBuf::from(dir));
    }
    Ok(config)
}

/// Projects a `serve` argv onto the argv for its `ddt worker` subprocesses:
/// the target and every shared flag survive; supervisor-only flags are
/// dropped (workers must not persist traces or reports themselves).
fn worker_args_from(args: &[String]) -> Vec<String> {
    const SUPERVISOR_VALUED: &[&str] = &[
        "--workers",
        "--lease-timeout",
        "--max-retries",
        "--status-file",
        "--chaos-kill",
        "--shard-factor",
        "--max-respawns",
        "--json",
        "--trace-dir",
    ];
    const SUPERVISOR_BARE: &[&str] = &["--health", "--replay"];
    let mut out = vec!["worker".to_string()];
    let mut i = 1; // args[0] is "serve"
    while i < args.len() {
        let a = args[i].as_str();
        if SUPERVISOR_VALUED.contains(&a) {
            i += 2;
            continue;
        }
        if SUPERVISOR_BARE.contains(&a) {
            i += 1;
            continue;
        }
        out.push(args[i].clone());
        i += 1;
    }
    out
}

/// Launches `ddt worker` subprocesses for the fleet supervisor: stdin is
/// the control pipe, stdout the frame stream (pumped to the event channel
/// on a thread), and `kill` is a real SIGKILL — the supervisor's recovery
/// path is exercised against actual process death, exactly what the chaos
/// harness relies on.
struct ProcessLauncher {
    exe: std::path::PathBuf,
    worker_args: Vec<String>,
}

struct ProcessHandle {
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
}

impl ddt::core::WorkerHandle for ProcessHandle {
    fn send(&mut self, frame: &ddt::trace::FleetFrame) -> std::io::Result<()> {
        use std::io::Write;
        let closed =
            || std::io::Error::new(std::io::ErrorKind::BrokenPipe, "worker stdin closed");
        let stdin = self.stdin.as_mut().ok_or_else(closed)?;
        stdin.write_all(&ddt::trace::encode_frame(frame))?;
        stdin.flush()
    }
    fn kill(&mut self) {
        self.stdin = None;
        let _ = self.child.kill();
        let _ = self.child.wait(); // Reap immediately: no zombies.
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        ddt::core::WorkerHandle::kill(self);
    }
}

impl ddt::core::WorkerLauncher for ProcessLauncher {
    fn spawn(
        &mut self,
        worker: u64,
        events: std::sync::mpsc::Sender<ddt::core::FleetEvent>,
    ) -> std::io::Result<Box<dyn ddt::core::WorkerHandle>> {
        let mut child = std::process::Command::new(&self.exe)
            .args(&self.worker_args)
            .arg("--worker-id")
            .arg(worker.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("stdout was piped");
        std::thread::spawn(move || ddt::core::pump_frames(worker, stdout, events));
        Ok(Box::new(ProcessHandle { child, stdin }))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else { return usage() };
    match cmd {
        "list" => {
            println!("bundled drivers:");
            for d in ddt::drivers::drivers() {
                println!(
                    "  {:<10} {:?}  vendor {:04x}:{:04x}  ({} seeded bugs)",
                    d.name, d.class, d.descriptor.vendor_id, d.descriptor.device_id,
                    d.expected_bugs
                );
            }
            println!("  {:<10} Net   (correct reference driver)", "clean_nic");
            ExitCode::SUCCESS
        }
        "asm" => {
            let (Some(src), Some(out)) = (args.get(1), flag_value(&args, "-o")) else {
                return usage();
            };
            let text = match std::fs::read_to_string(src) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {src}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match ddt::isa::asm::assemble(&text, &ddt::kernel::export_map()) {
                Ok(a) => {
                    if let Err(e) = std::fs::write(&out, a.image.to_bytes()) {
                        eprintln!("cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!(
                        "assembled {} -> {} ({} bytes, entry {:#x})",
                        src,
                        out,
                        a.image.file_size(),
                        a.image.entry
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{src}:{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "disas" => {
            let Some(path) = args.get(1) else { return usage() };
            match load_image(path) {
                Ok(img) => {
                    println!("; {} — load base {:#x}, entry {:#x}", img.name, img.load_base, img.entry);
                    for (pc, line) in ddt::isa::dis::disassemble(&img.text, img.load_base) {
                        let marker = if pc == img.entry { " <entry>" } else { "" };
                        println!("{pc:#010x}:  {line}{marker}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "info" => {
            let Some(path) = args.get(1) else { return usage() };
            match load_image(path) {
                Ok(img) => {
                    let c = ddt::isa::analysis::census(&img);
                    println!("driver:           {}", c.name);
                    println!("binary file:      {} bytes", c.file_size);
                    println!("code segment:     {} bytes", c.code_size);
                    println!("functions:        {}", c.functions);
                    println!("kernel imports:   {}", c.kernel_functions);
                    println!("basic blocks:     {}", c.basic_blocks);
                    for imp in &img.imports {
                        println!("  import {:<3} {}", imp.export_id, imp.name);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "export" => {
            let (Some(name), Some(out)) = (args.get(1), flag_value(&args, "-o")) else {
                return usage();
            };
            match load_image(name) {
                Ok(img) => {
                    if let Err(e) = std::fs::write(&out, img.to_bytes()) {
                        eprintln!("cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {} ({} bytes)", out, img.file_size());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "test" => {
            let Some(target) = args.get(1) else { return usage() };
            let dut = match parse_target(&args) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut config = match parse_config(&args) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let checkpoint_dir = flag_value(&args, "--checkpoint-dir");
            let resume_dir = flag_value(&args, "--resume");
            if let Some(dir) = &checkpoint_dir {
                let mut policy = ddt::CheckpointPolicy::new(std::path::PathBuf::from(dir));
                if let Some(n) = flag_value(&args, "--checkpoint-every") {
                    match n.parse() {
                        Ok(q) if q > 0 => policy.every_quanta = q,
                        _ => {
                            eprintln!("bad --checkpoint-every value {n:?}");
                            return ExitCode::from(2);
                        }
                    }
                }
                config.checkpoint = Some(policy);
            }
            // Graceful interruption only matters when there is a durable
            // campaign to leave behind.
            let stop_flag = if checkpoint_dir.is_some() || resume_dir.is_some() {
                let flag = install_sigint_flag();
                config.stop_flag = Some(flag.clone());
                Some(flag)
            } else {
                None
            };
            let tool = ddt::Ddt::new(config);
            let started = std::time::Instant::now();
            let workers: Option<usize> =
                flag_value(&args, "--workers").map(|n| n.parse().unwrap_or(1));
            let report = match (&resume_dir, workers) {
                (Some(dir), w) => {
                    let dir = std::path::Path::new(dir);
                    let resumed = match w {
                        Some(n) => ddt::resume_parallel(&tool, &dut, n, dir),
                        None => tool.resume(&dut, dir),
                    };
                    match resumed {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("cannot resume campaign: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                (None, Some(n)) => ddt::test_parallel(&tool, &dut, n),
                (None, None) => tool.test(&dut),
            };
            if let Some(code) = print_report(&args, &dut, &report, started) {
                return code;
            }
            if stop_flag.is_some_and(|f| f.load(Ordering::SeqCst)) {
                let dir = resume_dir.or(checkpoint_dir).unwrap_or_default();
                println!(
                    "interrupted: partial report above; campaign checkpointed — \
                     continue with `ddt test {target} --resume {dir}`"
                );
                return ExitCode::from(130);
            }
            verdict_code(&report)
        }
        "fuzz" => {
            let dut = match parse_target(&args) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let config = match parse_config(&args) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let mut fz = ddt::FuzzConfig::default();
            let numeric = |flag: &str, min: u64| -> Result<Option<u64>, String> {
                match flag_value(&args, flag) {
                    None => Ok(None),
                    Some(v) => {
                        let parsed = if let Some(hex) = v.strip_prefix("0x") {
                            u64::from_str_radix(hex, 16)
                        } else {
                            v.parse()
                        };
                        match parsed {
                            Ok(n) if n >= min => Ok(Some(n)),
                            _ => Err(format!("bad {flag} value {v:?}")),
                        }
                    }
                }
            };
            let parsed = (|| -> Result<(), String> {
                if let Some(n) = numeric("--seed", 0)? {
                    fz.seed = n;
                }
                if let Some(n) = numeric("--batches", 1)? {
                    fz.batches = n;
                }
                if let Some(n) = numeric("--batch-size", 1)? {
                    fz.batch_size = n;
                }
                if let Some(n) = numeric("--quanta-per-batch", 0)? {
                    fz.quanta_per_batch = n;
                }
                Ok(())
            })();
            if let Err(e) = parsed {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
            if args.iter().any(|a| a == "--no-escalate") {
                fz.escalate = false;
            }
            if args.iter().any(|a| a == "--no-drain") {
                fz.drain_frontier = false;
            }
            let tool = ddt::Ddt::new(config);
            let started = std::time::Instant::now();
            let report = ddt::run_hybrid(&tool, &dut, &fz);
            println!(
                "fuzz: {} concrete exec(s), {} insns in {} ms; {} escalation(s), \
                 {} concrete-first block(s), {} concrete-first bug(s)",
                report.stats.fuzz_execs,
                report.stats.fuzz_insns,
                report.stats.fuzz_wall_ms,
                report.stats.escalations,
                report.stats.concrete_blocks,
                report.stats.concrete_bugs,
            );
            if let Some(code) = print_report(&args, &dut, &report, started) {
                return code;
            }
            verdict_code(&report)
        }
        "serve" => {
            let dut = match parse_target(&args) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut config = match parse_config(&args) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let mut fc = ddt::FleetConfig::default();
            let numeric = |flag: &str, min: u64| -> Result<Option<u64>, String> {
                match flag_value(&args, flag) {
                    None => Ok(None),
                    Some(v) => match v.parse::<u64>() {
                        Ok(n) if n >= min => Ok(Some(n)),
                        _ => Err(format!("bad {flag} value {v:?}")),
                    },
                }
            };
            // Checked narrowing: an out-of-range value is a parse error,
            // never an `as`-cast truncation that silently configures
            // something else.
            let narrow_u32 = |flag: &str, n: u64| -> Result<u32, String> {
                u32::try_from(n).map_err(|_| format!("bad {flag} value {n}: out of range"))
            };
            let narrow_usize = |flag: &str, n: u64| -> Result<usize, String> {
                usize::try_from(n).map_err(|_| format!("bad {flag} value {n}: out of range"))
            };
            let parsed = (|| -> Result<(), String> {
                if let Some(n) = numeric("--workers", 1)? {
                    fc.workers = narrow_usize("--workers", n)?;
                }
                if let Some(n) = numeric("--lease-timeout", 1)? {
                    fc.lease_timeout_ms = n;
                }
                if let Some(n) = numeric("--max-retries", 0)? {
                    fc.max_retries = narrow_u32("--max-retries", n)?;
                }
                if let Some(n) = numeric("--heartbeat-ms", 1)? {
                    fc.heartbeat_ms = n;
                }
                if let Some(n) = numeric("--chaos-kill", 0)? {
                    fc.chaos_kills = narrow_u32("--chaos-kill", n)?;
                }
                if let Some(n) = numeric("--shard-factor", 1)? {
                    fc.shard_factor = narrow_usize("--shard-factor", n)?;
                }
                if let Some(n) = numeric("--max-respawns", 0)? {
                    fc.max_respawns = narrow_u32("--max-respawns", n)?;
                }
                Ok(())
            })();
            if let Err(e) = parsed {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
            if let Some(path) = flag_value(&args, "--status-file") {
                fc.status_file = Some(std::path::PathBuf::from(path));
            }
            let exe = match std::env::current_exe() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cannot locate own executable for worker spawn: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut launcher =
                ProcessLauncher { exe, worker_args: worker_args_from(&args) };
            // First ^C drains: the fleet stops granting, reports completed
            // shards; a second ^C exits immediately.
            let stop_flag = install_sigint_flag();
            config.stop_flag = Some(stop_flag.clone());
            let tool = ddt::Ddt::new(config);
            let started = std::time::Instant::now();
            let report = ddt::core::serve(&tool, &dut, &mut launcher, &fc);
            if let Some(code) = print_report(&args, &dut, &report, started) {
                return code;
            }
            if stop_flag.load(Ordering::SeqCst) {
                println!("interrupted: partial report above (completed shards only)");
                return ExitCode::from(130);
            }
            verdict_code(&report)
        }
        "worker" => {
            // The subprocess end of `ddt serve`: frames in on stdin, frames
            // out on stdout, human noise only on stderr.
            let dut = match parse_target(&args) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("ddt worker: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let config = match parse_config(&args) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("ddt worker: {e}");
                    return ExitCode::from(2);
                }
            };
            let env_u64 = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
            let opts = ddt::WorkerOpts {
                worker_id: flag_value(&args, "--worker-id")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                heartbeat_ms: flag_value(&args, "--heartbeat-ms")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                // Fault-injection hooks for exercising the supervisor's
                // recovery paths from the command line.
                die_after_shards: env_u64("DDT_FLEET_TEST_DIE_AFTER"),
                fail_shard: env_u64("DDT_FLEET_TEST_FAIL_SHARD"),
                hang_on_first_shard: env_u64("DDT_FLEET_TEST_HANG").is_some(),
            };
            let tool = ddt::Ddt::new(config);
            match ddt::core::run_worker(&tool, &dut, std::io::stdin(), std::io::stdout(), opts)
            {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("ddt worker: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "replay" => {
            let Some(trace) = flag_value(&args, "--trace") else { return usage() };
            let artifact = match ddt::trace::load_artifact(std::path::Path::new(&trace)) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("cannot load trace {trace}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let m = &artifact.manifest;
            println!(
                "replaying {} [{}] {} (pc {:#x}, {} event(s), {} decision(s))",
                m.signature,
                m.class,
                m.description,
                m.pc,
                artifact.events.len(),
                m.replay_decisions().len(),
            );
            // The artifact names its driver; --driver overrides (e.g. a
            // .dxe file for a non-bundled binary).
            let target = flag_value(&args, "--driver").unwrap_or_else(|| m.driver.clone());
            let audio = args.iter().any(|a| a == "--audio");
            let lifecycle = args.iter().any(|a| a == "--lifecycle");
            let dut = match load_dut(&target, audio, lifecycle) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            match ddt::replay_artifact(&dut, &artifact) {
                ddt::ReplayOutcome::Reproduced { observed } => {
                    println!("reproduced: {observed}");
                    ExitCode::SUCCESS
                }
                ddt::ReplayOutcome::NotReproduced { observed } => {
                    println!("NOT reproduced: {observed}");
                    ExitCode::FAILURE
                }
            }
        }
        "triage" => {
            let Some(dir) = args.get(1) else { return usage() };
            let store = match ddt::trace::TraceStore::open(std::path::Path::new(dir)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot open trace store {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match ddt::trace::triage(&store) {
                Ok(summary) => {
                    print!("{}", summary.render());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("triage failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Prints the human-facing report (summary line, bugs with optional
/// replay, health, `--json` export, trace-store note). Returns an exit code
/// only when an export failed; `None` means keep going to the verdict.
fn print_report(
    args: &[String],
    dut: &ddt::DriverUnderTest,
    report: &ddt::Report,
    started: std::time::Instant,
) -> Option<ExitCode> {
    println!(
        "tested '{}': {} paths, {}/{} blocks ({:.0}%), {:.2?}",
        report.driver,
        report.stats.paths_started,
        report.covered_blocks,
        report.total_blocks,
        100.0 * report.relative_coverage(),
        started.elapsed()
    );
    for bug in &report.bugs {
        println!("  [{}] {}", bug.class, bug.description);
        if args.iter().any(|a| a == "--replay") {
            match ddt::replay_bug(dut, bug) {
                ddt::ReplayOutcome::Reproduced { observed } => {
                    println!("      replayed: {observed}");
                }
                ddt::ReplayOutcome::NotReproduced { observed } => {
                    println!("      REPLAY FAILED: {observed}");
                }
            }
        }
    }
    if args.iter().any(|a| a == "--health") || !report.health.pristine() {
        print!("{}", report.health.render());
    }
    if let Some(path) = flag_value(args, "--json") {
        match serde_json::to_vec_pretty(report) {
            Ok(j) => {
                if let Err(e) = std::fs::write(&path, j) {
                    eprintln!("cannot write {path}: {e}");
                    return Some(ExitCode::FAILURE);
                }
                println!("report written to {path}");
            }
            Err(e) => eprintln!("serialization failed: {e}"),
        }
    }
    if let Some(dir) = flag_value(args, "--trace-dir") {
        println!(
            "trace store: {} artifact(s) persisted to {dir}",
            report.health.traces_persisted
        );
    }
    None
}

fn verdict_code(report: &ddt::Report) -> ExitCode {
    if report.bugs.is_empty() {
        println!("verdict: no defects found");
        ExitCode::SUCCESS
    } else {
        println!("verdict: {} defect(s) — do not load this driver", report.bugs.len());
        ExitCode::FAILURE
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
        }
    }
    out
}
